#!/usr/bin/env python3
"""Shared memory vs a cluster: why ppSCAN's setting wins.

The paper dismisses the distributed structural-clustering algorithms
(PSCAN on MapReduce, SparkSCAN) for "incurring communication overheads".
This example runs the exact BSP simulation on a stand-in graph and shows
where the bytes go — and how partitioning strategy moves them.

Run:  python examples/distributed_comparison.py
"""

from repro import CPU_SERVER, ScanParams, ppscan
from repro.bench.reporting import format_seconds, format_table
from repro.distributed import (
    COMMODITY_CLUSTER,
    cut_arcs,
    distributed_scan,
    PARTITIONERS,
)
from repro.graph.generators import real_world_standin

graph = real_world_standin("twitter", scale=0.3)
params = ScanParams(eps=0.4, mu=5)
print(f"twitter stand-in: |V|={graph.num_vertices:,}, |E|={graph.num_edges:,}")
print()

# 1. Partitioning strategy drives the cut (and therefore the traffic).
rows = []
for name, fn in PARTITIONERS.items():
    owner = fn(graph, 8)
    result, record = distributed_scan(graph, params, workers=8, partitioner=name)
    rows.append(
        [
            name,
            f"{cut_arcs(graph, owner):,}",
            f"{record.total_bytes / 1e6:.2f} MB",
            format_seconds(COMMODITY_CLUSTER.run_seconds(record)),
        ]
    )
print(
    format_table(
        "partitioners at 8 workers",
        ["partitioner", "cut arcs", "bytes shuffled", "simulated job time"],
        rows,
    )
)
print()

# 2. Where the bytes go (block partitioner, 8 workers).
_, record = distributed_scan(graph, params, workers=8)
print("traffic by phase (block, 8 workers):")
for phase, size in record.bytes_by_phase().items():
    print(f"  {phase:<22} {size / 1e3:>10.1f} KB")
print()

# 3. The punchline: shared memory at the same parallelism.
shared = CPU_SERVER.run_seconds(ppscan(graph, params, lanes=8).record, 8)
bsp = COMMODITY_CLUSTER.run_seconds(record)
print(
    f"shared-memory ppSCAN (8 threads, CPU model): {format_seconds(shared)}\n"
    f"BSP job (8 workers, commodity cluster):      {format_seconds(bsp)}\n"
    f"gap: {bsp / shared:.0f}x — the paper's 'communication overheads'."
)
