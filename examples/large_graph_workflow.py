#!/usr/bin/env python3
"""End-to-end workflow on a larger graph: the production path.

A downstream user's pipeline: generate (or load) a large graph, keep its
largest connected component, relabel for locality, cluster with the fast
vectorized exact mode, classify hubs/outliers in parallel, persist the
result, and answer follow-up (ε, µ) questions from a GS*-Index without
reclustering.

Run:  python examples/large_graph_workflow.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    CORE,
    HUB,
    OUTLIER,
    ClusteringResult,
    GSIndex,
    ScanParams,
    classify_peripherals,
    fast_structural_clustering,
)
from repro.graph import graph_stats, largest_connected_component, relabel_by_degree
from repro.graph.generators import planted_partition

# 1. A ~140k-edge graph with 80 planted communities.
graph, _truth = planted_partition(
    80, block_size=100, p_in=0.35, p_out=0.0015, seed=3
)
print(graph_stats("planted-80x100", graph))

# 2. Preprocess: largest component + degree-descending relabeling.
lcc, old_ids = largest_connected_component(graph)
lcc, order = relabel_by_degree(lcc)
print(
    f"preprocessed: |V|={lcc.num_vertices:,}, |E|={lcc.num_edges:,} "
    f"(largest component, hubs first)"
)

# 3. Cluster with the fast vectorized exact mode.
params = ScanParams(eps=0.3, mu=5)
t = time.perf_counter()
result = fast_structural_clustering(lcc, params)
print(
    f"\n{result.summary()}"
    f"\nfast mode wall time: {time.perf_counter() - t:.2f}s "
    f"({result.record.compsim_invocations:,} intersections for "
    f"{lcc.num_edges:,} edges)"
)

# 4. Hub/outlier classification as a parallel phase.
labels, record = classify_peripherals(lcc, result)
print(
    f"cores={int(np.count_nonzero(labels == CORE)):,}, "
    f"hubs={int(np.count_nonzero(labels == HUB)):,}, "
    f"outliers={int(np.count_nonzero(labels == OUTLIER)):,} "
    f"({record.stages[0].num_tasks} classification tasks)"
)

# 5. Persist and reload.
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "clusters.npz"
    result.save(path)
    loaded = ClusteringResult.load(path)
    assert loaded.same_clustering(result)
    print(f"persisted + reloaded: {path.name} ({path.stat().st_size:,} B)")

# 6. Follow-up parameter questions from an index (built once).
t = time.perf_counter()
index = GSIndex(lcc)
build = time.perf_counter() - t
print(f"\nGS*-Index built in {build:.2f}s; parameter exploration:")
for eps in (0.25, 0.35, 0.5):
    for mu in (2, 8):
        t = time.perf_counter()
        q = index.query(ScanParams(eps, mu))
        print(
            f"  eps={eps}, mu={mu}: {q.num_clusters:>4} clusters, "
            f"{q.num_cores:>6,} cores   ({(time.perf_counter()-t)*1e3:.0f} ms)"
        )
