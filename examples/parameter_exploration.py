#!/usr/bin/env python3
"""Interactive parameter exploration — the paper's headline use case.

The abstract promises "interactive result exploration (with a response
time of under a minute) on billion-edge graphs with a wide range of
parameter values".  This example plays an analyst exploring an (ε, µ)
grid over a social-network stand-in: every cell is a full exact ppSCAN
clustering, and the run records show the pruning doing the work — the
CompSim count (and with it the runtime) falls as ε grows.

Run:  python examples/parameter_exploration.py
"""

from repro import ScanParams, ppscan
from repro.bench.reporting import format_table
from repro.graph.generators import real_world_standin

graph = real_world_standin("orkut", scale=0.3)
print(f"orkut stand-in: |V|={graph.num_vertices}, |E|={graph.num_edges}")
print()

eps_values = (0.2, 0.35, 0.5, 0.65, 0.8)
mu_values = (2, 5, 10)

rows = []
results = {}
for mu in mu_values:
    for eps in eps_values:
        result = ppscan(graph, ScanParams(eps=eps, mu=mu))
        results[(eps, mu)] = result
        record = result.record
        rows.append(
            [
                f"{eps}",
                f"{mu}",
                f"{result.num_clusters}",
                f"{result.num_cores}",
                f"{record.compsim_invocations}",
                f"{record.wall_seconds * 1e3:.0f}ms",
            ]
        )

print(
    format_table(
        "parameter grid (each cell is an exact clustering)",
        ["eps", "mu", "clusters", "cores", "CompSims", "wall"],
        rows,
    )
)
print()

# A typical exploration insight: how cluster granularity responds to eps.
mu = 5
print(f"cluster-count profile at mu={mu}:")
for eps in eps_values:
    result = results[(eps, mu)]
    sizes = sorted(
        (len(m) for m in result.clusters().values()), reverse=True
    )[:5]
    print(
        f"  eps={eps}: {result.num_clusters} clusters, "
        f"largest: {sizes if sizes else '-'}"
    )
