#!/usr/bin/env python3
"""Profile a dataset before clustering: pick parameters with evidence.

An analyst facing a new graph wants to know which (ε, µ) ranges are
meaningful *before* running sweeps.  The analysis module answers from the
graph's own structure: the distribution of edge similarities bounds the
useful ε range, and the pruning profile predicts how cheap each ε will
be (the mechanism behind the runtime curves of Figures 2-3 and 7).

Run:  python examples/dataset_profiling.py
"""

from repro import ScanParams
from repro.analysis import (
    core_ratio_curve,
    pruning_profile,
    similarity_histogram,
)
from repro.bench.reporting import format_table
from repro.graph import graph_stats
from repro.graph.generators import real_world_standin

MU = 5

for name in ("orkut", "webbase"):
    graph = real_world_standin(name, scale=0.3)
    stats = graph_stats(name, graph)
    print(f"== {name}: |V|={stats.num_vertices:,}, |E|={stats.num_edges:,}, "
          f"avg d={stats.average_degree:.1f}, max d={stats.max_degree:,}")

    # 1. Where does the similarity mass sit?
    counts, edges_bins = similarity_histogram(graph, bins=10)
    total = counts.sum()
    print("   edge similarity distribution:")
    for i, count in enumerate(counts):
        lo, hi = edges_bins[i], edges_bins[i + 1]
        bar = "#" * int(40 * count / max(total, 1))
        print(f"     sigma in [{lo:.1f}, {hi:.1f}): {count:>7,}  {bar}")

    # 2. How much does predicate pruning resolve for free at each eps?
    rows = []
    for eps in (0.2, 0.4, 0.6, 0.8):
        profile = pruning_profile(graph, ScanParams(eps, MU))
        rows.append(
            [
                f"{eps}",
                f"{profile.arcs_resolved_fraction:.1%}",
                f"{profile.roles_settled_fraction:.1%}",
                f"{profile.unknown:,}",
            ]
        )
    print()
    print(
        format_table(
            f"   predicate pruning at mu={MU}",
            ["eps", "arcs resolved free", "roles settled", "arcs left"],
            rows,
        )
    )

    # 3. The resulting core ratio (the clustering's granularity knob).
    curve = core_ratio_curve(graph, (0.2, 0.4, 0.6, 0.8), MU)
    print("   core fraction by eps: "
          + ", ".join(f"{e}: {f:.1%}" for e, f in curve.items()))
    print()
