#!/usr/bin/env python3
"""Community detection on a planted-partition graph.

The paper motivates structural clustering with applications (advertising,
epidemiology) that need exact communities *and* the hub/outlier split.
This example plants ground-truth communities, sweeps ε to find the best
recovery, and reports the adjusted Rand index plus the hubs ppSCAN
identifies between communities.

Run:  python examples/community_detection.py
"""

import numpy as np

from repro import CORE, HUB, OUTLIER, ScanParams, ppscan
from repro.graph.generators import planted_partition
from repro.quality import adjusted_rand_index, primary_labels

NUM_BLOCKS = 6
BLOCK_SIZE = 40
P_IN, P_OUT = 0.45, 0.01

graph, truth = planted_partition(
    NUM_BLOCKS, BLOCK_SIZE, p_in=P_IN, p_out=P_OUT, seed=11
)
print(
    f"planted-partition graph: |V|={graph.num_vertices}, "
    f"|E|={graph.num_edges}, {NUM_BLOCKS} blocks of {BLOCK_SIZE}"
)
print()

print("eps sweep (mu=4):")
print(f"{'eps':>5}  {'clusters':>8}  {'ARI':>6}  {'clustered':>9}")
best_eps, best_ari = None, -1.0
for eps in (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8):
    result = ppscan(graph, ScanParams(eps=eps, mu=4))
    labels = primary_labels(result)
    clustered = int(np.count_nonzero(labels >= 0))
    # Score recovery on the clustered vertices only (noise excluded
    # inside the index via its sentinel-aware noise handling).
    ari = adjusted_rand_index(
        truth.tolist(), labels.tolist(), noise=-1, noise_policy="exclude"
    )
    print(f"{eps:>5}  {result.num_clusters:>8}  {ari:>6.3f}  {clustered:>9}")
    if ari > best_ari and result.num_clusters >= 2:
        best_eps, best_ari = eps, ari

print()
print(f"best recovery at eps={best_eps} (ARI={best_ari:.3f})")
result = ppscan(graph, ScanParams(eps=best_eps, mu=4))
classified = result.classify(graph)
hubs = np.flatnonzero(classified == HUB)
outliers = np.flatnonzero(classified == OUTLIER)
print(
    f"cores={int(np.count_nonzero(classified == CORE))}, "
    f"hubs={hubs.size}, outliers={outliers.size}"
)
if hubs.size:
    member = result.membership()
    v = int(hubs[0])
    bridged = sorted({c for w in graph.neighbors(v) for c in member[int(w)]})
    print(f"example hub: vertex {v} bridges clusters {bridged}")
