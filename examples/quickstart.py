#!/usr/bin/env python3
"""Quickstart: cluster a small graph with ppSCAN and read the output.

Builds the classic two-triangle-plus-bridge graph, runs ppSCAN, and shows
roles (core / non-core / hub / outlier), clusters, and the run record.

Run:  python examples/quickstart.py
"""

from repro import ScanParams, from_edges, ppscan, role_name

# Two dense triangles {0,1,2} and {3,4,5} joined through vertex 2-3 edge,
# plus a pendant vertex 6 hanging off vertex 5.
graph = from_edges(
    [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5), (5, 6)]
)

params = ScanParams(eps=0.6, mu=2)
result = ppscan(graph, params)

print(result.summary())
print()

print("clusters (cores + attached non-cores):")
for cluster_id, members in result.clusters().items():
    print(f"  cluster {cluster_id}: vertices {members.tolist()}")
print()

print("per-vertex classification:")
for v, role in enumerate(result.classify(graph)):
    print(f"  vertex {v}: {role_name(int(role))}")
print()

record = result.record
print(f"CompSim invocations: {record.compsim_invocations}")
print(f"wall time: {record.wall_seconds * 1e3:.2f} ms across stages:")
for stage in record.stages:
    print(f"  {stage.name:<30} {stage.num_tasks:>3} tasks")
