#!/usr/bin/env python3
"""Dynamic graphs: incremental index maintenance vs. reclustering.

A monitoring scenario: the network changes (edges appear and disappear)
and an analyst wants up-to-date clusters after every batch of updates.
Two strategies are compared on the same update stream:

* recluster from scratch with ppSCAN after each batch;
* maintain a DynamicGSIndex incrementally (O(d(u)+d(v)) repair per
  update) and query it.

Both stay exact at every checkpoint (asserted), and the index's
maintenance counter shows how little work an update really needs.

Run:  python examples/dynamic_updates.py
"""

import time

import numpy as np

from repro import ScanParams, assert_same_clustering, ppscan
from repro.core import DynamicGSIndex
from repro.graph import DynamicGraph
from repro.graph.generators import planted_partition

rng = np.random.default_rng(7)

base, _ = planted_partition(8, 40, p_in=0.4, p_out=0.01, seed=7)
dyn = DynamicGraph.from_csr(base)
params = ScanParams(eps=0.4, mu=3)

t = time.perf_counter()
index = DynamicGSIndex(dyn)
print(
    f"initial graph: |V|={dyn.num_vertices}, |E|={dyn.num_edges}; "
    f"index built in {time.perf_counter() - t:.2f}s"
)
print()

n = dyn.num_vertices
print(f"{'batch':>5}  {'updates':>7}  {'maint ops':>9}  "
      f"{'query':>8}  {'recluster':>9}  {'clusters':>8}")
for batch in range(5):
    index.maintenance_ops = 0
    applied = 0
    while applied < 60:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        if rng.random() < 0.55:
            applied += index.insert_edge(u, v)
        else:
            applied += index.remove_edge(u, v)

    t = time.perf_counter()
    from_index = index.query(params)
    query_time = time.perf_counter() - t

    t = time.perf_counter()
    from_scratch = ppscan(dyn.snapshot(), params)
    recluster_time = time.perf_counter() - t

    assert_same_clustering(from_scratch, from_index)
    print(
        f"{batch:>5}  {applied:>7}  {index.maintenance_ops:>9}  "
        f"{query_time * 1e3:>6.0f}ms  {recluster_time * 1e3:>7.0f}ms  "
        f"{from_index.num_clusters:>8}"
    )

print()
print("every checkpoint: incremental index == full recluster (exact).")
