#!/usr/bin/env python3
"""Scalability study: one instrumented ppSCAN run, the whole curve.

ppSCAN's phase/task structure is thread-count independent, so a single
instrumented run yields per-task work records that the machine models
replay at any thread count (the way Figure 6 is produced).  This example
runs ppSCAN once on the twitter stand-in, then prices the schedule on the
CPU (AVX2) and KNL (AVX512) models across thread counts, and also
exercises the real process backend for a ground-truth equivalence check.

Run:  python examples/scalability_study.py
"""

from repro import (
    CPU_SERVER,
    KNL_SERVER,
    ProcessBackend,
    ScanParams,
    assert_same_clustering,
    ppscan,
)
from repro.bench.reporting import format_seconds, format_series
from repro.graph.generators import real_world_standin

graph = real_world_standin("twitter", scale=0.3)
params = ScanParams(eps=0.2, mu=5)
print(f"graph: |V|={graph.num_vertices}, |E|={graph.num_edges}, {params}")
print()

result = ppscan(graph, params)
record = result.record
print(f"instrumented run: {record.wall_seconds:.2f}s wall, "
      f"{record.compsim_invocations} CompSim invocations")
print()

threads = (1, 2, 4, 8, 16, 32, 64, 128, 256)
series = {}
for machine in (CPU_SERVER, KNL_SERVER):
    capped = [t for t in threads if t <= machine.max_threads() * 2]
    series[machine.name] = [
        machine.run_seconds(record, t) if t <= 256 else None for t in threads
    ]
print(
    format_series(
        "simulated ppSCAN runtime vs threads",
        "threads",
        threads,
        series,
        fmt=format_seconds,
    )
)
print()

speedups = {
    name: [vals[0] / v for v in vals] for name, vals in series.items()
}
print(
    format_series(
        "self-speedup vs threads",
        "threads",
        threads,
        speedups,
        fmt=lambda v: f"{v:.1f}x",
    )
)
print()

# Ground truth: the bulk-synchronous process backend produces the
# identical clustering (Theorems 4.1-4.5 hold under any interleaving).
parallel_result = ppscan(graph, params, backend=ProcessBackend(workers=2))
assert_same_clustering(result, parallel_result)
print("process-backend run (2 workers) produced the identical clustering.")
