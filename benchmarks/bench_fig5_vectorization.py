"""Figure 5: pivot-vectorized vs scalar core checking (ppSCAN vs ppSCAN-NO).

Shape claims: the vectorized kernel wins (speedup >= ~1x everywhere, well
above 1x where intersections are long); the benefit shrinks toward large ε
(pruning leaves only short walks); KNL's 16-lane model gains at least as
much as CPU's 8-lane model on the high-degree graphs.

Known scale deviation (documented in EXPERIMENTS.md): the paper's peak
speedups (3.5-4.5x) arise on hubs a thousand times larger than any
stand-in hub, so our peaks are lower and the ε=0.2 cell can sit below the
ε=0.4 one.
"""

from repro.bench.experiments import DEFAULT_EPS, fig5_vectorization


def test_fig5(benchmark, save_result):
    result = benchmark.pedantic(fig5_vectorization, rounds=1, iterations=1)
    save_result(result)
    data = result.data

    for name, series in data.items():
        for label in ("CPU (AVX2)", "KNL (AVX512)"):
            values = series[label]
            # Vectorization never loses badly, and wins somewhere.
            assert all(v > 0.8 for v in values), (name, label, values)
            assert max(values) > 1.1, (name, label, values)
            # Decreasing toward large eps: the last point is not the peak.
            assert values[-1] <= max(values) + 1e-9


def test_fig5_highest_gains_on_dense_graphs(benchmark, save_result):
    """orkut/friendster (long adjacency lists) gain more than webbase."""
    data = benchmark.pedantic(fig5_vectorization, rounds=1, iterations=1).data
    dense_peak = max(
        max(data[name]["KNL (AVX512)"]) for name in ("orkut", "friendster")
    )
    sparse_peak = max(data["webbase"]["KNL (AVX512)"])
    assert dense_peak >= sparse_peak * 0.9
