"""Figure 6: ppSCAN stage scalability on KNL, ε=0.2, µ=5.

Shape claims: every stage group speeds up with threads; core checking +
consolidating dominates the runtime on the social graphs (an order of
magnitude over pruning, two over clustering); total self-speedup at 256
threads is large on compute-heavy graphs and smallest on the
memory-bound webbase.
"""

from repro.bench.experiments import DEFAULT_THREADS, fig6_scalability


def test_fig6(benchmark, save_result):
    result = benchmark.pedantic(fig6_scalability, rounds=1, iterations=1)
    save_result(result)
    data = result.data

    speedup_256 = {}
    for name, series in data.items():
        total = series["The Whole ppSCAN"]
        # Monotone-ish decrease with threads (allow small wobbles).
        assert total[DEFAULT_THREADS.index(16)] < total[0]
        assert total[-1] < total[0] / 5, (name, total)
        speedup_256[name] = total[0] / total[-1]

        check = series["2. Core Checking and Consolidating"]
        assert check[-1] < check[0] / 5, name

        # Core checking dominates on the heavy-tailed social graphs.
        if name in ("orkut", "twitter", "friendster"):
            assert check[0] > series["1. Similarity Pruning"][0]
            assert check[0] > series["3. Core Clustering"][0]
            assert check[0] > series["4. Non-Core Clustering"][0]

    # webbase saturates lowest (paper: 28x vs 72-131x elsewhere).
    assert speedup_256["webbase"] <= min(
        speedup_256[n] * 1.1 for n in ("orkut", "twitter", "friendster")
    ), speedup_256


def test_fig6_clustering_overhead_grows_with_threads(benchmark, save_result):
    """§6.3: lock-free clustering overhead rises with the thread count —
    clustering speedup trails core-checking speedup at 256 threads."""
    data = benchmark.pedantic(
        fig6_scalability, kwargs={"datasets": ("orkut",)}, rounds=1, iterations=1
    ).data["orkut"]
    check = data["2. Core Checking and Consolidating"]
    cluster = data["3. Core Clustering"]
    check_speedup = check[0] / check[-1]
    cluster_speedup = cluster[0] / max(cluster[-1], 1e-12)
    assert cluster_speedup < check_speedup
