"""Figure 2: comparison with existing algorithms on the CPU server.

Shape claims checked (paper §6.1): ppSCAN is the fastest in every cell;
SCAN is the slowest; ppSCAN beats sequential pSCAN by an order of
magnitude or more in most cases (paper: 26-51x); SCAN-XP's runtime is flat
in ε while ppSCAN's falls; anySCAN REs on webbase/friendster at paper
scale.
"""

from repro.bench.experiments import DEFAULT_EPS, fig2_overall_cpu


def test_fig2(benchmark, save_result):
    result = benchmark.pedantic(fig2_overall_cpu, rounds=1, iterations=1)
    save_result(result)
    data = result.data

    ratios = []
    for name, series in data.items():
        for i, eps in enumerate(DEFAULT_EPS):
            pp = series["ppSCAN"][i]
            others = {
                a: series[a][i]
                for a in ("SCAN", "pSCAN", "anySCAN", "SCAN-XP")
                if series[a][i] is not None
            }
            assert pp < min(others.values()), (name, eps)
            assert series["SCAN"][i] == max(
                v for v in others.values()
            ), (name, eps)
            ratios.append(series["pSCAN"][i] / pp)
        # SCAN-XP flat in eps; ppSCAN decreasing overall.
        xp = series["SCAN-XP"]
        assert max(xp) < 1.2 * min(xp), name
        assert series["ppSCAN"][-1] < series["ppSCAN"][0], name
        # anySCAN RE pattern at paper scale.
        if name in ("webbase", "friendster"):
            assert all(v is None for v in series["anySCAN"]), name
        else:
            assert all(v is not None for v in series["anySCAN"]), name

    # Paper: 26-51x over pSCAN in most cases -> demand >=10x in most.
    big = sum(1 for r in ratios if r >= 10)
    assert big >= len(ratios) * 0.5, sorted(ratios)
