"""§3.3 distributed baselines: communication overheads, quantified.

The paper dismisses PSCAN/SparkSCAN with "incurring communication
overheads"; this bench reproduces that verdict end to end — the BSP
simulation is exact, its communication is counted per superstep, and the
priced job time loses to shared-memory ppSCAN by orders of magnitude.
"""

from repro.bench.datasets import run_algorithm, standin
from repro.bench.experiments import ExperimentResult
from repro.bench.reporting import format_seconds, format_table
from repro.distributed import COMMODITY_CLUSTER, distributed_scan
from repro.parallel import CPU_SERVER
from repro.types import ScanParams


def test_distributed_overheads(benchmark, save_result):
    graph = standin("twitter")
    params = ScanParams(0.4, 5)

    def run():
        rows = []
        data = {}
        for workers in (2, 4, 8, 16):
            result, record = distributed_scan(graph, params, workers=workers)
            priced = COMMODITY_CLUSTER.run_seconds(record)
            data[workers] = {
                "bytes": record.total_bytes,
                "supersteps": record.num_supersteps,
                "seconds": priced,
            }
            rows.append(
                [
                    workers,
                    record.num_supersteps,
                    f"{record.total_bytes / 1e6:.1f} MB",
                    format_seconds(priced),
                ]
            )
        shared = CPU_SERVER.run_seconds(
            run_algorithm(
                "ppSCAN", "twitter", graph, params, lanes=CPU_SERVER.lanes
            ).record,
            16,
        )
        data["shared_memory_16t"] = shared
        rows.append(["(ppSCAN, shared memory, 16 threads)", "-", "-", format_seconds(shared)])
        text = format_table(
            "BSP distributed SCAN vs shared memory (twitter stand-in, "
            f"eps={params.eps}, mu={params.mu})",
            ["workers", "supersteps", "bytes shuffled", "simulated time"],
            rows,
        )
        return ExperimentResult("distributed", "BSP overheads", text, data)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    data = result.data

    # Communication grows with the worker count...
    assert data[16]["bytes"] > data[2]["bytes"]
    # ...and the BSP job never beats shared-memory ppSCAN (the paper's
    # dismissal), losing by at least an order of magnitude.
    shared = data["shared_memory_16t"]
    for workers in (2, 4, 8, 16):
        assert data[workers]["seconds"] > 10 * shared, (workers, data)
