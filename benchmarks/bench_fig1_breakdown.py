"""Figure 1: time breakdown of SCAN and pSCAN (µ = 5).

Paper observations reproduced here: similarity evaluation dominates both
algorithms; pSCAN's workload-reduction computation is lightweight; pSCAN's
similarity-evaluation time is far below SCAN's.
"""

from repro.bench.experiments import DEFAULT_EPS, fig1_breakdown

DATASETS = ("livejournal", "orkut", "twitter")


def test_fig1(benchmark, save_result):
    result = benchmark.pedantic(
        fig1_breakdown, kwargs={"datasets": DATASETS}, rounds=1, iterations=1
    )
    save_result(result)
    data = result.data

    for name in DATASETS:
        for eps in DEFAULT_EPS:
            scan_cells = data[(name, "SCAN", eps)]
            pscan_cells = data[(name, "pSCAN", eps)]

            # Similarity evaluation is SCAN's bottleneck at every eps.
            assert scan_cells["similarity evaluation"] > (
                scan_cells["other computation"]
            )
            # pSCAN's pruning machinery is lightweight relative to the
            # similarity work it replaces in SCAN.
            assert pscan_cells["workload reduction computation"] < (
                scan_cells["similarity evaluation"]
            )
            # pSCAN evaluates far less similarity than exhaustive SCAN.
            assert pscan_cells["similarity evaluation"] < (
                0.6 * scan_cells["similarity evaluation"]
            )
        # pSCAN total decreases from eps 0.2 -> 0.8 region overall
        # (pruning strengthens); SCAN stays flat.
        pscan_total = [
            sum(data[(name, "pSCAN", e)].values()) for e in DEFAULT_EPS
        ]
        scan_total = [
            sum(data[(name, "SCAN", e)].values()) for e in DEFAULT_EPS
        ]
        assert pscan_total[-1] < pscan_total[0] * 1.5
        assert max(scan_total) < 1.2 * min(scan_total)
