#!/usr/bin/env python
"""One entry point for every ``benchmarks/check_*.py`` CI gate.

Usage
-----
Run every gate in sequence (stop-on-nothing: all gates always run, the
worst exit code wins)::

    PYTHONPATH=src python benchmarks/run_checks.py

Run a subset, forwarding extra arguments to each selected gate::

    PYTHONPATH=src python benchmarks/run_checks.py --only regression \
        -- --smoke --scale 0.1

    PYTHONPATH=src python benchmarks/run_checks.py \
        --only chaos,warm_cache

List the registered gates::

    PYTHONPATH=src python benchmarks/run_checks.py --list

Exit codes (the contract every gate follows)
--------------------------------------------
* ``0`` — every selected gate passed;
* ``1`` — at least one gate detected a regression / violated invariant;
* ``2`` — usage or setup error (unknown gate name, missing baseline,
  bad arguments) before any gating happened.

Each gate is a module with ``main(argv) -> int`` honouring the same
codes, so this runner simply takes the maximum over the legs.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2

#: name -> (module, default argv, one-line purpose).
CHECKS: dict[str, tuple[str, list[str], str]] = {
    "regression": (
        "check_regression",
        ["--smoke"],
        "smoke workload vs ledger trend bands / static baseline",
    ),
    "chaos": (
        "check_chaos",
        [],
        "fault-injected supervised runs stay bit-identical",
    ),
    "crash_restart": (
        "check_crash_restart",
        [],
        "whole-process crash + resume recovers bit-identically",
    ),
    "warm_cache": (
        "check_warm_cache",
        [],
        "cross-run similarity cache reuse invariants",
    ),
    "service": (
        "check_service",
        [],
        "clustering service: coalescing, errors, ledger, clean shutdown",
    ),
    "stream": (
        "check_stream",
        [],
        "streaming updates: differential corpus bit-identity + throughput",
    ),
    "service_crash": (
        "check_service_crash",
        [],
        "kill -9 at seeded WAL points + SIGTERM drain recover bit-identically",
    ),
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Arguments after a literal ``--`` are forwarded to every selected
    # gate *instead of* its default argv.
    forward: list[str] | None = None
    if "--" in argv:
        split = argv.index("--")
        argv, forward = argv[:split], argv[split + 1 :]

    parser = argparse.ArgumentParser(
        description="run the benchmark CI gates with shared exit codes"
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated subset of gates (default: all), "
        f"known: {', '.join(CHECKS)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list gates and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, (module, default_argv, purpose) in CHECKS.items():
            default = " ".join(default_argv) or "(none)"
            print(f"{name:<14} {module}.py  [{default}]  {purpose}")
        return EXIT_OK

    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in CHECKS]
        if unknown:
            print(
                f"unknown gate(s): {', '.join(unknown)}; "
                f"known: {', '.join(CHECKS)}",
                file=sys.stderr,
            )
            return EXIT_USAGE
    else:
        names = list(CHECKS)

    worst = EXIT_OK
    outcomes: list[tuple[str, int, float]] = []
    for name in names:
        module_name, default_argv, _ = CHECKS[name]
        gate_argv = forward if forward is not None else default_argv
        print(f"=== {name}: {module_name}.py {' '.join(gate_argv)} ===")
        t0 = time.perf_counter()
        try:
            module = importlib.import_module(module_name)
            code = int(module.main(list(gate_argv)))
        except SystemExit as exc:  # argparse errors inside a gate
            code = int(exc.code or 0)
        wall = time.perf_counter() - t0
        outcomes.append((name, code, wall))
        worst = max(worst, code)

    print("=== summary ===")
    for name, code, wall in outcomes:
        verdict = {EXIT_OK: "pass", EXIT_REGRESSION: "FAIL"}.get(
            code, f"error({code})"
        )
        print(f"  {name:<14} {verdict:<9} {wall:7.1f}s")
    return worst


if __name__ == "__main__":
    sys.exit(main())
