"""Figure 8: ppSCAN on ROLL graphs (equal |E|, d ∈ {40..160}), CPU + KNL.

Shape claims: runtime grows with average degree at small ε and the curves
converge as ε grows; self-speedups are substantial on both servers, larger
on KNL; KNL speedup drops at ε=0.8 (too little compute to hide memory
latency — the paper's §6.4.2 observation).
"""

from repro.bench.experiments import DEFAULT_EPS, fig8_roll
from repro.parallel import CPU_SERVER, KNL_SERVER


def test_fig8(benchmark, save_result):
    result = benchmark.pedantic(fig8_roll, rounds=1, iterations=1)
    save_result(result)
    data = result.data

    for machine_name, payload in data.items():
        runtime = payload["runtime"]
        # Higher-degree graphs are slower.  We check at eps=0.4: at
        # eps=0.2 the scaled-down BA graphs' dense cores let high-degree
        # vertices take early SIM exits, inverting the paper's ordering —
        # a documented small-n artifact (see EXPERIMENTS.md).
        mid = [runtime[f"ROLL-d{d}"][1] for d in (40, 80, 120, 160)]
        assert mid == sorted(mid), (machine_name, mid)
        # The curves converge as eps grows (paper §6.4.2).
        last = [runtime[f"ROLL-d{d}"][-1] for d in (40, 80, 120, 160)]
        spread_mid = max(mid) / min(mid)
        spread_last = max(last) / min(last)
        assert spread_last < spread_mid, (machine_name, mid, last)

    knl = data[KNL_SERVER.name]["speedup"]
    cpu = data[CPU_SERVER.name]["speedup"]
    # KNL self-speedup beats CPU self-speedup (256 vs 64 threads).
    for key in knl:
        assert max(knl[key]) > max(cpu[key]), key
    # KNL speedup decreases at eps=0.8 relative to its own peak (paper
    # §6.4.2: too little core-checking compute left to hide memory
    # latency).  At our scale the effect shows on the lower-degree ROLL
    # graphs, whose per-arc compute is smallest; the d120/d160 stand-ins
    # keep enough kernel work at eps=0.8 to stay on their peak
    # (documented deviation in EXPERIMENTS.md).
    dropped = sum(1 for values in knl.values() if values[-1] < max(values))
    assert dropped >= 2, knl
    assert knl["ROLL-d40"][-1] < max(knl["ROLL-d40"]), knl["ROLL-d40"]


def test_fig8_speedups_meaningful(benchmark, save_result):
    """Parallel execution pays off on every ROLL graph (>= 8x on KNL)."""
    data = benchmark.pedantic(fig8_roll, rounds=1, iterations=1).data
    for values in data[KNL_SERVER.name]["speedup"].values():
        assert max(values) >= 8.0, values
