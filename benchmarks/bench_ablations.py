"""Ablation benches for the design choices called out in DESIGN.md §5."""

from repro.bench.experiments import (
    ablate_ed_order,
    ablate_lane_width,
    ablate_prune_phase,
    ablate_task_threshold,
    ablate_two_phase_clustering,
)


def test_ablate_task_threshold(benchmark, save_result):
    """Granularity trade-off: tiny thresholds explode the task count;
    huge thresholds destroy load balance.  A mid-range threshold is
    within 2x of the best simulated time."""
    result = benchmark.pedantic(ablate_task_threshold, rounds=1, iterations=1)
    save_result(result)
    data = result.data
    thresholds = sorted(data)
    tasks = [data[t]["tasks"] for t in thresholds]
    assert tasks == sorted(tasks, reverse=True)
    times = {t: data[t]["seconds"] for t in thresholds}
    best = min(times.values())
    mid = [t for t in thresholds if 256 <= t <= 16384]
    assert any(times[t] < 2.0 * best for t in mid)
    # The coarsest threshold loses parallelism: strictly worse than best.
    assert times[thresholds[-1]] > best


def test_ablate_two_phase_clustering(benchmark, save_result):
    """Phase 1 (no-compsim) unions prune phase-2 CompSims: never more,
    usually fewer."""
    result = benchmark.pedantic(
        ablate_two_phase_clustering, rounds=1, iterations=1
    )
    save_result(result)
    for name, counts in result.data.items():
        assert counts["two_phase"] <= counts["single_phase"], name


def test_ablate_prune_phase(benchmark, save_result):
    """The similarity-predicate pruning phase never increases CompSims
    and pays off visibly somewhere."""
    result = benchmark.pedantic(ablate_prune_phase, rounds=1, iterations=1)
    save_result(result)
    wins = 0
    for key, counts in result.data.items():
        assert counts["with"] <= counts["without"], key
        wins += counts["with"] < counts["without"]
    assert wins >= 1


def test_ablate_ed_order(benchmark, save_result):
    """Paper §4.1: dropping pSCAN's ed-priority ordering changes the
    workload only marginally — the justification for ppSCAN not keeping
    it."""
    result = benchmark.pedantic(ablate_ed_order, rounds=1, iterations=1)
    save_result(result)
    for key, counts in result.data.items():
        hi = max(counts["ed_order"], counts["static"])
        lo = max(min(counts["ed_order"], counts["static"]), 1)
        assert hi / lo < 1.6, (key, counts)


def test_ablate_lane_width(benchmark, save_result):
    """Wider vectors need fewer block ops; speedup saturates once lanes
    exceed typical adjacency-list lengths."""
    result = benchmark.pedantic(ablate_lane_width, rounds=1, iterations=1)
    save_result(result)
    data = result.data
    lanes = sorted(data)
    vec_ops = [data[l]["vector_ops"] for l in lanes]
    # More lanes -> fewer (or equal) vector block operations.
    assert vec_ops == sorted(vec_ops, reverse=True)
    assert all(data[l]["speedup"] > 0.7 for l in lanes)
