"""Real wall-clock behaviour of the fork-based process backend.

On this substrate the interesting guarantees are correctness (identical
clustering under bulk-synchronous execution) and bounded overhead; real
speedup appears only on multi-core hosts, so no speedup is asserted —
the measured times are recorded for inspection.
"""

import os
import time

from repro.core import assert_same_clustering, ppscan
from repro.graph.generators import real_world_standin
from repro.parallel import ProcessBackend
from repro.types import ScanParams


def test_process_backend_wall_time(benchmark, save_result):
    graph = real_world_standin("twitter", scale=0.2)
    params = ScanParams(0.3, 5)

    serial_result = ppscan(graph, params)

    def run_parallel():
        return ppscan(graph, params, backend=ProcessBackend(workers=2))

    parallel_result = benchmark.pedantic(run_parallel, rounds=2, iterations=1)
    assert_same_clustering(serial_result, parallel_result)

    from repro.bench.experiments import ExperimentResult
    from repro.bench.reporting import format_table

    text = format_table(
        f"process backend (host cores: {os.cpu_count()})",
        ["mode", "wall"],
        [
            ["serial", f"{serial_result.record.wall_seconds:.3f}s"],
            ["2 workers", f"{parallel_result.record.wall_seconds:.3f}s"],
        ],
    )
    save_result(
        ExperimentResult(
            "process_backend",
            "Process backend wall time",
            text,
            {
                "serial": serial_result.record.wall_seconds,
                "parallel": parallel_result.record.wall_seconds,
            },
        )
    )
