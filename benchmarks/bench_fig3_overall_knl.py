"""Figure 3: comparison with existing algorithms on the KNL server.

Shape claims: same ordering as Figure 2 with larger ppSCAN-vs-pSCAN gaps
(paper: 98-442x in most cases; we demand >=30x in most cells), since KNL's
256 threads amplify the parallel advantage while pSCAN stays sequential.
"""

from repro.bench.experiments import DEFAULT_EPS, fig3_overall_knl


def test_fig3(benchmark, save_result):
    result = benchmark.pedantic(fig3_overall_knl, rounds=1, iterations=1)
    save_result(result)
    data = result.data

    ratios = []
    for name, series in data.items():
        for i, eps in enumerate(DEFAULT_EPS):
            pp = series["ppSCAN"][i]
            others = [
                series[a][i]
                for a in ("SCAN", "pSCAN", "anySCAN", "SCAN-XP")
                if series[a][i] is not None
            ]
            assert pp < min(others), (name, eps)
            ratios.append(series["pSCAN"][i] / pp)
        if name in ("webbase", "friendster"):
            assert all(v is None for v in series["anySCAN"])

    big = sum(1 for r in ratios if r >= 30)
    assert big >= len(ratios) * 0.5, sorted(ratios)


def test_knl_gap_exceeds_cpu_gap(benchmark, save_result):
    """ppSCAN/pSCAN gap grows from CPU to KNL (more threads)."""
    from repro.bench.experiments import fig2_overall_cpu

    cpu = benchmark.pedantic(fig2_overall_cpu, rounds=1, iterations=1).data
    knl = fig3_overall_knl().data
    improvements = 0
    cells = 0
    for name in cpu:
        for i in range(len(DEFAULT_EPS)):
            cpu_ratio = cpu[name]["pSCAN"][i] / cpu[name]["ppSCAN"][i]
            knl_ratio = knl[name]["pSCAN"][i] / knl[name]["ppSCAN"][i]
            cells += 1
            improvements += knl_ratio > cpu_ratio
    assert improvements >= cells * 0.7
