#!/usr/bin/env python
"""Accuracy-vs-speed frontier of the sketch similarity backend.

Sweeps the sketch configuration grid (Bloom bits × error band) on two
stand-ins where exact intersections dominate runtime:

* the **twitter** powerlaw stand-in — heavy hubs, the workload the
  ISSUE's motivation names: every pruning survivor still pays
  ``O(deg(u)+deg(v))`` exactly where degrees are largest;
* a **dense-community planted partition** — high uniform degree, so
  every arc is expensive and the communities give the ARI/NMI gate real
  structure to score.

The exact baseline is SCAN-XP in batched execution mode — the exhaustive
all-arc resolver, i.e. "exact batched mode" with no pruning to hide
behind.  A ppSCAN row is included for context: its pruning already skips
most arcs, so the sketch's headroom there is structurally smaller.

Running directly sweeps the full frontier, writes
``bench_results/sketch_accuracy.json`` and appends one summary line to
``bench_results/trajectory.jsonl`` (the committed benchmark trajectory).

Running with ``--smoke`` executes the CI gate on the twitter stand-in:

* the conservative band (``error=0``) must be **bit-identical** to exact
  resolution *and* ≥ 2x faster end-to-end;
* the aggressive band (``error=0.05``) must be ≥ 2x faster at
  **ARI ≥ 0.99** (scored by the sentinel-aware quality helpers).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import api  # noqa: E402 - path setup first
from repro.obs.ledger import (  # noqa: E402
    migrate_legacy_line,
    migrate_trajectory,
)
from repro.core import assert_same_clustering  # noqa: E402
from repro.graph.generators import (  # noqa: E402
    planted_partition,
    real_world_standin,
)
from repro.options import ExecMode, ExecutionOptions, Kernel  # noqa: E402
from repro.quality import (  # noqa: E402
    adjusted_rand_index,
    normalized_mutual_information,
    primary_labels,
)
from repro.sketch import SketchParams  # noqa: E402
from repro.types import ScanParams  # noqa: E402

RESULTS = REPO_ROOT / "bench_results"
OUT_JSON = RESULTS / "sketch_accuracy.json"
TRAJECTORY = RESULTS / "trajectory.jsonl"

ROUNDS = 2
#: The frontier grid: Bloom width × error band.  ``error=0`` rows are
#: the conservative band (bit-identical by construction, asserted).
GRID = [
    (bits, error)
    for bits in (256, 1024, 2048)
    for error in (0.0, 0.05, 0.2)
]

SPEEDUP_FLOOR = 2.0
ARI_FLOOR = 0.99

BATCHED = ExecutionOptions(exec_mode=ExecMode.BATCHED)


def _sketch_options(sp: SketchParams) -> ExecutionOptions:
    return ExecutionOptions(
        exec_mode=ExecMode.BATCHED, kernel=Kernel.SKETCH, sketch=sp
    )


def _timed(graph, params, algorithm, options, rounds=ROUNDS):
    """Best-of-``rounds`` wall time plus the (deterministic) result."""
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = api.cluster(
            graph, params, algorithm=algorithm, options=options
        )
        best = min(best, time.perf_counter() - t0)
    return best, result


def _quality(exact, approx) -> dict:
    """Sentinel-aware external indices between two clusterings.

    ``primary_labels`` marks unclustered vertices (hubs/outliers) with
    ``-1``; the indices consume that sentinel directly instead of the
    hand-remapping older benchmarks used.
    """
    a = primary_labels(exact).tolist()
    b = primary_labels(approx).tolist()
    return {
        "ari": adjusted_rand_index(a, b, noise=-1),
        "nmi": normalized_mutual_information(a, b, noise=-1),
    }


def _frontier(graph, params, workload: dict) -> dict:
    exact_s, exact = _timed(graph, params, "scanxp", BATCHED)
    ppscan_s, ppscan_res = _timed(graph, params, "ppscan", BATCHED)
    rows = []
    for bits, error in GRID:
        sp = SketchParams(bits=bits, error=error)
        sketch_s, result = _timed(
            graph, params, "scanxp", _sketch_options(sp)
        )
        row = {
            "bits": bits,
            "error": error,
            "config": sp.key(),
            "seconds": sketch_s,
            "speedup": exact_s / sketch_s,
            **_quality(exact, result),
        }
        if sp.conservative:
            assert_same_clustering(exact, result)
            row["bit_identical"] = True
        rows.append(row)
        print(
            f"  {sp.key():>28}: {sketch_s:.3f}s "
            f"({row['speedup']:.2f}x) ARI={row['ari']:.4f}"
        )
    # ppSCAN context row: the pruning baseline with the default sketch.
    pp_sketch_s, pp_sketch = _timed(
        graph, params, "ppscan",
        _sketch_options(SketchParams(bits=1024, error=0.05)),
    )
    return {
        "workload": workload,
        "exact_scanxp_seconds": exact_s,
        "exact_ppscan_seconds": ppscan_s,
        "ppscan_sketch_seconds": pp_sketch_s,
        "ppscan_sketch_ari": _quality(ppscan_res, pp_sketch)["ari"],
        "frontier": rows,
    }


def _merge_json(path: Path, update: dict) -> None:
    path.parent.mkdir(exist_ok=True)
    data = json.loads(path.read_text()) if path.exists() else {}
    data.update(update)
    path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")


def _check_gate(rows: list[dict]) -> list[str]:
    """The acceptance gate over one heavy-hub frontier's rows."""
    failures = []
    conservative = [r for r in rows if r["error"] == 0.0]
    if not any(r["speedup"] >= SPEEDUP_FLOOR for r in conservative):
        failures.append(
            "no conservative (bit-identical) config reached "
            f"{SPEEDUP_FLOOR}x: best "
            f"{max(r['speedup'] for r in conservative):.2f}x"
        )
    aggressive = [
        r for r in rows if r["error"] > 0.0 and r["ari"] >= ARI_FLOOR
    ]
    if not any(r["speedup"] >= SPEEDUP_FLOOR for r in aggressive):
        best = max((r["speedup"] for r in aggressive), default=0.0)
        failures.append(
            f"no aggressive config reached {SPEEDUP_FLOOR}x at "
            f"ARI >= {ARI_FLOOR}: best {best:.2f}x"
        )
    return failures


def run_full() -> int:
    t_start = time.time()
    workloads = {
        "twitter": (
            real_world_standin("twitter", scale=6, seed=7),
            ScanParams(0.5, 5),
            {"graph": "twitter", "scale": 6, "eps": 0.5, "mu": 5},
        ),
        "planted": (
            planted_partition(8, 600, 0.5, 0.01, seed=4)[0],
            ScanParams(0.2, 5),
            {
                "graph": "planted_partition",
                "blocks": 8,
                "block_size": 600,
                "eps": 0.2,
                "mu": 5,
            },
        ),
    }
    out = {}
    for name, (graph, params, meta) in workloads.items():
        meta = {
            **meta,
            "num_vertices": graph.num_vertices,
            "num_arcs": graph.num_arcs,
        }
        print(f"{name}: |V|={graph.num_vertices} arcs={graph.num_arcs}")
        out[name] = _frontier(graph, params, meta)
    failures = _check_gate(out["twitter"]["frontier"])
    _merge_json(OUT_JSON, out)
    print(f"frontier written to {OUT_JSON}")

    best = max(
        (
            r
            for r in out["twitter"]["frontier"]
            if r["error"] > 0.0 and r["ari"] >= ARI_FLOOR
        ),
        key=lambda r: r["speedup"],
        default=None,
    )
    entry = {
        "bench": "sketch_accuracy",
        "recorded_unix": int(t_start),
        "workload": "twitter-standin-s6",
        "exact_scanxp_seconds": round(
            out["twitter"]["exact_scanxp_seconds"], 4
        ),
        "best_aggressive": (
            {
                "config": best["config"],
                "speedup": round(best["speedup"], 2),
                "ari": round(best["ari"], 4),
            }
            if best
            else None
        ),
        "conservative_speedup": round(
            max(
                r["speedup"]
                for r in out["twitter"]["frontier"]
                if r["error"] == 0.0
            ),
            2,
        ),
    }
    TRAJECTORY.parent.mkdir(exist_ok=True)
    # The trajectory is a run ledger: migrate any legacy lines in place
    # (idempotent), then append this summary as a versioned record so
    # `repro-scan history`/`report` and the trend gate can read it.
    ledger = migrate_trajectory(TRAJECTORY)
    record = ledger.append(migrate_legacy_line(entry))
    print(
        f"trajectory entry appended to {TRAJECTORY} "
        f"(seq={record['seq']}, workload {record['workload_key']})"
    )

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


# -- CI smoke gate (python benchmarks/bench_sketch_accuracy.py --smoke) ------

SMOKE_SCALE = 3


def run_smoke() -> int:
    """The CI gate: conservative bit-identical ≥ 2x, aggressive ≥ 2x at
    ARI ≥ 0.99, on a CI-sized slice of the heavy-hub stand-in."""
    graph = real_world_standin("twitter", scale=SMOKE_SCALE, seed=7)
    params = ScanParams(0.5, 5)
    exact_s, exact = _timed(graph, params, "scanxp", BATCHED)
    rows = []
    for error in (0.0, 0.05):
        sp = SketchParams(bits=1024, error=error)
        sketch_s, result = _timed(
            graph, params, "scanxp", _sketch_options(sp)
        )
        row = {
            "bits": sp.bits,
            "error": error,
            "config": sp.key(),
            "seconds": sketch_s,
            "speedup": exact_s / sketch_s,
            **_quality(exact, result),
        }
        if sp.conservative:
            assert_same_clustering(exact, result)
            row["bit_identical"] = True
        rows.append(row)
        print(
            f"smoke {sp.key()}: exact {exact_s:.3f}s / sketch "
            f"{sketch_s:.3f}s ({row['speedup']:.2f}x) "
            f"ARI={row['ari']:.4f}"
        )
    failures = _check_gate(rows)
    _merge_json(
        OUT_JSON,
        {
            "smoke": {
                "workload": {
                    "graph": "twitter",
                    "scale": SMOKE_SCALE,
                    "eps": params.eps,
                    "mu": params.mu,
                    "num_arcs": graph.num_arcs,
                },
                "exact_scanxp_seconds": exact_s,
                "legs": rows,
            }
        },
    )
    print(f"smoke results merged into {OUT_JSON}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_smoke() if "--smoke" in sys.argv[1:] else run_full())
