"""§3.2.2 kernel design space + related-work baselines (§3.3).

These benches justify the paper's design decisions quantitatively:
why pivot-vectorized-with-bounds over branchless or galloping kernels,
and why online pruning-based clustering over an exhaustive index.
"""

from repro.bench.experiments import (
    DEFAULT_EPS,
    kernel_design_space,
    related_baselines,
)


def test_kernel_design_space(benchmark, save_result):
    result = benchmark.pedantic(kernel_design_space, rounds=1, iterations=1)
    save_result(result)
    data = result.data

    for i, eps in enumerate(DEFAULT_EPS):
        cell = data[eps]
        # Bounded kernels beat their full counterparts on the real
        # workload (early termination pays).
        assert cell["merge+bounds"] < cell["merge-full"], eps
        # The pivot-vectorized kernel is the best or near-best bounded
        # kernel everywhere.
        bounded = {
            k: cell[k]
            for k in ("merge+bounds", "galloping+bounds", "pivot-vectorized")
        }
        assert cell["pivot-vectorized"] <= 1.3 * min(bounded.values()), eps

    # Branchless-full cannot shrink with eps the way bounded kernels do:
    # its eps=0.8/eps=0.2 ratio is the largest among kernels (flat cost
    # over a fixed edge set; bounded kernels get cheaper per edge).
    def drop(kernel):
        return data[DEFAULT_EPS[0]][kernel] / data[DEFAULT_EPS[-1]][kernel]

    assert drop("merge+bounds") > drop("branchless-full") * 0.9


def test_related_baselines(benchmark, save_result):
    result = benchmark.pedantic(related_baselines, rounds=1, iterations=1)
    save_result(result)
    data = result.data

    # GS*-Index construction is exhaustive: one intersection per edge.
    assert data["index_build_compsims"] > 0
    for eps in (0.2, 0.6):
        cell = data[eps]
        # Queries are cheap relative to construction...
        assert cell["gsindex_query"] < data["index_build_seconds"]
        # ...but construction costs more than several full ppSCAN runs —
        # the paper's "prohibitively expensive indexing" verdict.
        assert data["index_build_seconds"] > 3 * cell["ppscan"]
        # SCAN++'s DTAR maintenance makes it slower than pSCAN even
        # though both are sequential and pruned.
        assert cell["scanpp"] > cell["pscan"], cell
