"""Figure 4: normalized set-intersection invocation counts.

Shape claims: ppSCAN and pSCAN conduct a similar amount of CompSim work
(the paper's headline observation — parallelization does not sacrifice
pruning), and both stay well below the exhaustive 1.0 invocations/edge.
"""

from repro.bench.experiments import DEFAULT_EPS, fig4_invocations


def test_fig4(benchmark, save_result):
    result = benchmark.pedantic(fig4_invocations, rounds=1, iterations=1)
    save_result(result)

    for name, series in result.data.items():
        for i, eps in enumerate(DEFAULT_EPS):
            pscan_n = series["pSCAN"][i]
            ppscan_n = series["ppSCAN"][i]
            # Normalized counts bounded by 1 (Theorem 4.1 for ppSCAN).
            assert 0.0 <= ppscan_n <= 1.0
            assert 0.0 <= pscan_n <= 1.0
            # "Similar amount of work": within 2x of each other, or both
            # negligible.
            if max(pscan_n, ppscan_n) > 0.02:
                ratio = max(pscan_n, ppscan_n) / max(
                    min(pscan_n, ppscan_n), 1e-9
                )
                assert ratio < 2.5, (name, eps, pscan_n, ppscan_n)
