"""Table 1: real-world stand-in graph statistics."""

from repro.bench.experiments import table1_real_graphs


def test_table1(benchmark, save_result):
    result = benchmark.pedantic(table1_real_graphs, rounds=1, iterations=1)
    save_result(result)
    rows = {r.name: r for r in result.data["rows"]}

    # Table 1 shape: orkut has the highest average degree; webbase the
    # lowest; twitter has the most extreme hub relative to its mean;
    # friendster is the largest graph with bounded hubs.
    assert rows["orkut"].average_degree == max(
        r.average_degree for r in rows.values()
    )
    assert rows["webbase"].average_degree == min(
        r.average_degree for r in rows.values()
    )
    assert rows["friendster"].num_edges == max(
        r.num_edges for r in rows.values()
    )
    tw = rows["twitter"]
    fr = rows["friendster"]
    assert (
        tw.max_degree / tw.average_degree > fr.max_degree / fr.average_degree
    )
