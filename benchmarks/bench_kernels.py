"""Micro-benchmarks of the hot kernels (real wall time on this host).

These complement the figure benches: absolute Python-substrate timings
for the set-intersection kernels and one end-to-end ppSCAN clustering.

Running this file directly with ``--smoke`` executes the CI smoke check
instead: scalar-merge vs batched ppSCAN on the medium bundled graph (the
livejournal stand-in), merged into ``bench_results/kernels.json`` under a
``"smoke"`` key.  Exits non-zero if the batched path is slower.
"""

import json
import sys
import time
from pathlib import Path

import pytest

from repro.core import assert_same_clustering, ppscan, pscan
from repro.graph.generators import real_world_standin
from repro.intersect import (
    merge_compsim,
    merge_count,
    pivot_vectorized_compsim,
)
from repro.types import ScanParams


@pytest.fixture(scope="module")
def arrays():
    a = list(range(0, 3000, 2))
    b = list(range(0, 3000, 3))
    return a, b


def test_merge_count_kernel(benchmark, arrays):
    a, b = arrays
    assert benchmark(merge_count, a, b) == 500


def test_merge_compsim_kernel(benchmark, arrays):
    a, b = arrays
    benchmark(merge_compsim, a, b, 400)


def test_pivot_vectorized_kernel(benchmark, arrays):
    a, b = arrays
    benchmark(pivot_vectorized_compsim, a, b, 400, 16)


def test_vectorized_skew_advantage(benchmark):
    """The pivot walk shines on skewed pairs (hub vs small neighbor)."""
    hub = list(range(0, 40000, 2))
    small = list(range(37000, 37030))
    benchmark(pivot_vectorized_compsim, hub, small, 10, 16)


@pytest.fixture(scope="module")
def small_graph():
    return real_world_standin("twitter", scale=0.1)


def test_ppscan_end_to_end(benchmark, small_graph):
    params = ScanParams(0.4, 5)
    result = benchmark.pedantic(
        ppscan, args=(small_graph, params), rounds=3, iterations=1
    )
    assert result.num_vertices == small_graph.num_vertices


def test_pscan_end_to_end(benchmark, small_graph):
    params = ScanParams(0.4, 5)
    benchmark.pedantic(pscan, args=(small_graph, params), rounds=3, iterations=1)


# -- CI smoke check (python benchmarks/bench_kernels.py --smoke) -------------

SMOKE_ROUNDS = 3


def run_smoke() -> int:
    """Batched-vs-scalar-merge smoke benchmark on the livejournal stand-in.

    Interleaved best-of-``SMOKE_ROUNDS`` timings; the result is merged
    into ``bench_results/kernels.json`` (the design-space content stays
    untouched).  Returns a process exit code: non-zero when the batched
    path fails to beat the scalar merge kernel.
    """
    graph = real_world_standin("livejournal", scale=0.4)
    params = ScanParams(0.4, 5)
    best = {"scalar": float("inf"), "batched": float("inf")}
    results = {}
    for _ in range(SMOKE_ROUNDS):
        for mode, kwargs in (
            ("scalar", dict(kernel="merge")),
            ("batched", dict(exec_mode="batched")),
        ):
            t0 = time.perf_counter()
            results[mode] = ppscan(graph, params, **kwargs)
            best[mode] = min(best[mode], time.perf_counter() - t0)
    assert_same_clustering(results["scalar"], results["batched"])

    path = Path(__file__).resolve().parent.parent / "bench_results" / "kernels.json"
    path.parent.mkdir(exist_ok=True)
    data = json.loads(path.read_text()) if path.exists() else {}
    speedup = best["scalar"] / best["batched"]
    data["smoke"] = {
        "graph": "livejournal",
        "scale": 0.4,
        "num_edges": graph.num_edges,
        "params": {"eps": params.eps, "mu": params.mu},
        "scalar_merge_seconds": best["scalar"],
        "batched_seconds": best["batched"],
        "speedup": speedup,
    }
    path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    print(
        f"smoke: livejournal standin scalar-merge {best['scalar']:.3f}s, "
        f"batched {best['batched']:.3f}s ({speedup:.2f}x) -> {path}"
    )
    if speedup <= 1.0:
        print("FAIL: batched mode is slower than the scalar merge path")
        return 1
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        sys.exit(run_smoke())
    sys.exit(pytest.main([__file__, *sys.argv[1:]]))
