"""Micro-benchmarks of the hot kernels (real wall time on this host).

These complement the figure benches: absolute Python-substrate timings
for the set-intersection kernels and one end-to-end ppSCAN clustering.
"""

import pytest

from repro.core import ppscan, pscan
from repro.graph.generators import real_world_standin
from repro.intersect import (
    merge_compsim,
    merge_count,
    pivot_vectorized_compsim,
)
from repro.types import ScanParams


@pytest.fixture(scope="module")
def arrays():
    a = list(range(0, 3000, 2))
    b = list(range(0, 3000, 3))
    return a, b


def test_merge_count_kernel(benchmark, arrays):
    a, b = arrays
    assert benchmark(merge_count, a, b) == 500


def test_merge_compsim_kernel(benchmark, arrays):
    a, b = arrays
    benchmark(merge_compsim, a, b, 400)


def test_pivot_vectorized_kernel(benchmark, arrays):
    a, b = arrays
    benchmark(pivot_vectorized_compsim, a, b, 400, 16)


def test_vectorized_skew_advantage(benchmark):
    """The pivot walk shines on skewed pairs (hub vs small neighbor)."""
    hub = list(range(0, 40000, 2))
    small = list(range(37000, 37030))
    benchmark(pivot_vectorized_compsim, hub, small, 10, 16)


@pytest.fixture(scope="module")
def small_graph():
    return real_world_standin("twitter", scale=0.1)


def test_ppscan_end_to_end(benchmark, small_graph):
    params = ScanParams(0.4, 5)
    result = benchmark.pedantic(
        ppscan, args=(small_graph, params), rounds=3, iterations=1
    )
    assert result.num_vertices == small_graph.num_vertices


def test_pscan_end_to_end(benchmark, small_graph):
    params = ScanParams(0.4, 5)
    benchmark.pedantic(pscan, args=(small_graph, params), rounds=3, iterations=1)
