#!/usr/bin/env python
"""CI gate for the fault-tolerant execution layer.

Runs ppSCAN under a fixed-seed :class:`repro.parallel.FaultPlan` that
kills workers mid-phase and verifies, deterministically:

1. the chaotic process-backend run produces the *bit-identical*
   clustering of the serial reference (the supervisor's recovery paths
   cannot change the answer);
2. the expected recovery events (``crash``, ``retry``, ``respawn``)
   actually fired and are visible in the exported trace — both as
   ``supervisor.*`` counters and as ``recovery:*`` spans;
3. a poison-task plan aborts with a structured
   :class:`~repro.parallel.QuarantineReport` (and would exit non-zero
   at the CLI).

Usage::

    PYTHONPATH=src python benchmarks/check_chaos.py
    PYTHONPATH=src python benchmarks/check_chaos.py \
        --trace-out bench_results/chaos_trace.json

Exit status is non-zero on any mismatch or missing recovery evidence.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import api  # noqa: E402 - path setup first
from repro.core import assert_same_clustering  # noqa: E402
from repro.graph.generators import real_world_standin  # noqa: E402
from repro.obs import Tracer, use_tracer, write_trace  # noqa: E402
from repro.options import BackendKind, ExecutionOptions  # noqa: E402
from repro.parallel import FaultPlan, PoisonTaskError  # noqa: E402
from repro.types import ScanParams  # noqa: E402

CHAOS_SEED = 42
WORKERS = 4
EXPECTED_EVENTS = ("crash", "retry", "respawn")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also write the chaotic run's Chrome trace to PATH",
    )
    parser.add_argument("--scale", type=float, default=0.05)
    args = parser.parse_args(argv)

    graph = real_world_standin("livejournal", scale=args.scale, seed=7)
    params = ScanParams(eps=0.4, mu=4)
    print(
        f"chaos gate: |V|={graph.num_vertices:,}, |E|={graph.num_edges:,}, "
        f"{params}, seed={CHAOS_SEED}"
    )

    serial = api.cluster(graph, params)

    chaos = FaultPlan.from_seed(CHAOS_SEED, tasks=16, kills=2)
    options = ExecutionOptions(
        backend=BackendKind.PROCESS, workers=WORKERS, chaos=chaos
    )
    tracer = Tracer()
    with use_tracer(tracer):
        chaotic = api.cluster(graph, params, options=options)

    assert_same_clustering(serial, chaotic)
    print("labels: chaotic run is bit-identical to the serial reference")

    metrics = tracer.metrics.as_dict()
    missing = [
        kind
        for kind in EXPECTED_EVENTS
        if metrics.get(f"supervisor.{kind}", 0) < 1
    ]
    if missing:
        print(f"FAIL: no supervisor.{missing} counter in trace metrics")
        return 1
    span_names = {s.name for s in tracer.sorted_spans()}
    missing = [
        kind
        for kind in EXPECTED_EVENTS
        if f"recovery:{kind}" not in span_names
    ]
    if missing:
        print(f"FAIL: no recovery:{missing} span in trace")
        return 1
    rollup = ", ".join(
        f"{name.removeprefix('supervisor.')}={value}"
        for name, value in sorted(metrics.items())
        if name.startswith("supervisor.")
    )
    print(f"recovery events in trace: {rollup}")

    if args.trace_out:
        out = Path(args.trace_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        write_trace(out, tracer, "chrome", title="chaos gate")
        print(f"wrote chrome trace to {out}")

    poison_options = ExecutionOptions(
        backend=BackendKind.PROCESS,
        workers=WORKERS,
        chaos=FaultPlan.poison(0),
        max_retries=5,
    )
    try:
        api.cluster(graph, params, options=poison_options)
    except PoisonTaskError as exc:
        print(
            f"poison task quarantined as expected: "
            f"{exc.report.describe().splitlines()[0]}"
        )
    else:
        print("FAIL: poison plan completed without quarantine")
        return 1

    print("chaos gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
