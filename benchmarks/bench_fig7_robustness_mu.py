"""Figure 7: ppSCAN robustness across µ ∈ {2, 5, 10, 15} (KNL).

Runs the paper's full ε range [0.1, 0.9].  Shape claims: runtimes show
similar trends for all µ (the paper's reason for fixing µ=5 elsewhere);
every cell completes fast (interactive-use claim); µ variation changes
runtime by far less than the algorithm gaps of Figures 2-3; and the
paper's ε=0.1 note — "runtime with µ=15 becomes a little bit more than
with µ=2 due to less pruning" — is visible on the social graphs.
"""

from repro.bench.experiments import fig7_robustness

EPS_SWEEP = (0.1, 0.3, 0.5, 0.7, 0.9)


def test_fig7(benchmark, save_result):
    result = benchmark.pedantic(
        fig7_robustness, kwargs={"eps_values": EPS_SWEEP}, rounds=1, iterations=1
    )
    save_result(result)
    data = result.data

    mu15_wins = 0
    for name, series in data.items():
        for mu_label, values in series.items():
            assert all(v > 0 for v in values)
        # Similar trends: for each eps, the spread across mu is bounded
        # (well under the 10-100x algorithm gaps elsewhere).  The bound
        # is looser than the paper's ~2-4x spreads: on 10^3x-scaled
        # graphs the eps=0.1 prune phase resolves low-mu cells almost
        # for free, stretching the ratio (see EXPERIMENTS.md).
        spread_bound = 20
        for i, eps in enumerate(EPS_SWEEP):
            column = [series[m][i] for m in series]
            assert max(column) < spread_bound * min(column), (
                name,
                eps,
                column,
            )

        # Runtime falls from eps=0.1 to eps=0.9 for every mu on the
        # social graphs (pruning strengthens) — webbase is allowed its
        # paper-noted deviation at small mu (many cores -> clustering).
        if name != "webbase":
            for m, values in series.items():
                assert values[-1] < values[0] * 1.6, (name, m, values)
        # Paper §6.4.1: at eps=0.1 high mu prunes less, so mu=15 tends to
        # cost at least as much as mu=2.
        if series["mu=15"][0] >= series["mu=2"][0] * 0.9:
            mu15_wins += 1
    assert mu15_wins >= len(data) / 2, data.keys()
