#!/usr/bin/env python
"""Streaming update throughput: batched incremental apply vs. full recompute.

For each workload an edit script is replayed through the
:class:`repro.streaming.StreamingEngine` with every batch checkpoint
*differentially verified* (bit-identity against a from-scratch GS*-Index
rebuild — a benchmark row is only reported if it is correct), timing
both sides:

* **incremental** — ``engine.apply(batch)`` + the warm (ε, µ) queries a
  streaming deployment serves between batches;
* **rebuild** — constructing a fresh ``GSIndex`` over the post-batch
  snapshot and answering the same queries (what a non-incremental
  system pays per batch).

Results merge into ``bench_results/stream_updates.json``; the smoke
workload gates at ``speedup >= SPEEDUP_FLOOR`` (the acceptance bar the
CI stream gate re-checks).

Usage::

    PYTHONPATH=src python benchmarks/bench_stream_updates.py --smoke
    PYTHONPATH=src python benchmarks/bench_stream_updates.py   # full set
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cache import SimilarityStore  # noqa: E402 - path setup first
from repro.graph.generators import (  # noqa: E402
    chung_lu,
    erdos_renyi,
    lfr_graph,
)
from repro.streaming import (  # noqa: E402
    random_edit_script,
    replay_differential,
)
from repro.types import ScanParams  # noqa: E402

RESULTS = REPO_ROOT / "bench_results"
OUT_JSON = RESULTS / "stream_updates.json"

#: Minimum required incremental-over-rebuild speedup on the smoke
#: workload (per-batch steady state; the CI gate enforces the same bar).
SPEEDUP_FLOOR = 5.0

POINTS = (ScanParams(0.4, 2), ScanParams(0.6, 4))


def _smoke_graph(scale: float = 1.0):
    # Dense enough that per-batch full recompute (sorting every arc by
    # similarity) dwarfs the frontier repair: ~7x measured headroom
    # over the 5x floor at scale 1.
    n = max(400, int(4000 * scale))
    return erdos_renyi(n, 8 * n, seed=17), {
        "graph": "erdos_renyi",
        "n": n,
        "m": 8 * n,
    }


def _workloads(smoke: bool, scale: float):
    smoke_graph, smoke_meta = _smoke_graph(scale)
    yield "smoke", smoke_graph, smoke_meta, 8, 16
    if smoke:
        return
    n_big = max(800, int(8000 * scale))
    yield (
        "er_large",
        erdos_renyi(n_big, 8 * n_big, seed=23),
        {"graph": "erdos_renyi", "n": n_big, "m": 8 * n_big},
        8,
        24,
    )
    n_lfr = max(300, int(2000 * scale))
    lfr, _ = lfr_graph(
        n_lfr, avg_degree=10.0, mu_mix=0.2, min_community=12, seed=29
    )
    yield "lfr", lfr, {"graph": "lfr", "n": n_lfr}, 8, 24
    n_pl = max(300, int(2000 * scale))
    weights = [(k + 1) ** -0.8 for k in range(n_pl)]
    yield (
        "powerlaw",
        chung_lu(weights, 5 * n_pl, seed=31),
        {"graph": "chung_lu", "n": n_pl, "m": 5 * n_pl},
        8,
        24,
    )


def _merge_json(path: Path, update: dict) -> None:
    path.parent.mkdir(exist_ok=True)
    data = json.loads(path.read_text()) if path.exists() else {}
    data.update(update)
    path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="streaming batched-update throughput benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smoke workload only (the CI configuration)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="workload size multiplier"
    )
    parser.add_argument("--seed", type=int, default=41, help="script seed")
    args = parser.parse_args(argv)

    t_start = time.time()
    out: dict = {}
    failures: list[str] = []
    for name, graph, meta, batches, batch_size in _workloads(
        args.smoke, args.scale
    ):
        script = random_edit_script(
            graph,
            kind="mixed",
            batches=batches,
            batch_size=batch_size,
            seed=args.seed,
        )
        report = replay_differential(
            graph,
            script,
            POINTS,
            store=SimilarityStore(),
            fixture=name,
            kind="mixed",
        )
        row = {
            **meta,
            **report.as_dict(),
            "points": [
                {"eps": float(p.eps), "mu": p.mu} for p in POINTS
            ],
            "incremental_ms_per_batch": (
                report.incremental_seconds / report.batches * 1e3
            ),
            "rebuild_ms_per_batch": (
                report.rebuild_seconds / report.batches * 1e3
            ),
            "verified_checkpoints": report.batches,
        }
        out[name] = row
        print(
            f"{name}: |V|={graph.num_vertices} |E|={graph.num_edges} "
            f"{report.batches} batches, {report.ops_applied} edits — "
            f"{report.edits_per_second:,.0f} edits/s, "
            f"speedup {report.speedup:.2f}x "
            f"(incremental {row['incremental_ms_per_batch']:.2f}ms, "
            f"rebuild {row['rebuild_ms_per_batch']:.2f}ms per batch)"
        )
        if name == "smoke" and report.speedup < SPEEDUP_FLOOR:
            failures.append(
                f"smoke speedup {report.speedup:.2f}x is below the "
                f"{SPEEDUP_FLOOR}x floor"
            )
    out["recorded_unix"] = int(t_start)
    out["speedup_floor"] = SPEEDUP_FLOOR
    _merge_json(OUT_JSON, out)
    print(f"results written to {OUT_JSON}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("gate ok: every checkpoint bit-identical, smoke speedup above floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
