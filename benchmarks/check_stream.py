#!/usr/bin/env python
"""CI gate for streaming batched incremental index maintenance.

Two legs, both required:

1. **Differential corpus** — replay the fixed-seed edit-script corpus
   (:func:`repro.streaming.build_corpus`: ER / LFR / powerlaw fixtures
   × insert / delete / mixed scripts) through the
   :class:`~repro.streaming.StreamingEngine` with a live
   ``SimilarityStore`` attached.  Every batch checkpoint of every case
   must be bit-identical — roles, core labels, non-core pairs at every
   (ε, µ) point, plus snapshot fingerprints — to a from-scratch
   ``GSIndex`` rebuild.  A corpus manifest (case descriptions, seeds,
   per-case replay stats) is written to
   ``bench_results/stream_corpus.json`` for upload as a CI artifact.
2. **Update throughput** — the smoke workload of
   ``benchmarks/bench_stream_updates.py`` must show incremental batch
   apply at least 5x faster than full recompute, refreshing
   ``bench_results/stream_updates.json``.

With ``--ledger PATH`` a ``stream_gate`` record (corpus size, verified
checkpoints, smoke speedup) is appended to the run ledger.

Usage::

    PYTHONPATH=src python benchmarks/check_stream.py
    PYTHONPATH=src python benchmarks/check_stream.py \
        --ledger bench_results/ledger.jsonl

Exit codes: 0 pass, 1 divergence or throughput regression, 2 usage.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_stream_updates  # noqa: E402 - path setup first
from repro.cache import SimilarityStore  # noqa: E402
from repro.obs.ledger import RunLedger, build_record  # noqa: E402
from repro.streaming import (  # noqa: E402
    DifferentialMismatch,
    build_corpus,
    replay_differential,
)

RESULTS = REPO_ROOT / "bench_results"
MANIFEST = RESULTS / "stream_corpus.json"

CORPUS_SEED = 2026


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=1.0, help="corpus size multiplier"
    )
    parser.add_argument(
        "--seed", type=int, default=CORPUS_SEED, help="corpus seed"
    )
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--batch-size", type=int, default=12)
    parser.add_argument(
        "--ledger",
        default=None,
        help="append a stream_gate record to this run ledger",
    )
    parser.add_argument(
        "--skip-throughput",
        action="store_true",
        help="corpus leg only (e.g. when timings are unreliable)",
    )
    args = parser.parse_args(argv)
    if args.batches < 1 or args.batch_size < 1:
        print("--batches/--batch-size must be positive", file=sys.stderr)
        return 2

    t_gate = time.perf_counter()
    corpus = build_corpus(
        scale=args.scale,
        seed=args.seed,
        batches=args.batches,
        batch_size=args.batch_size,
    )
    manifest: dict = {
        "seed": args.seed,
        "scale": args.scale,
        "cases": [],
    }
    checkpoints = 0
    ops_applied = 0
    failures: list[str] = []
    for case in corpus:
        label = f"{case.fixture}/{case.kind}"
        entry = case.describe()
        try:
            report = replay_differential(
                case.graph,
                case.script,
                store=SimilarityStore(),
                fixture=case.fixture,
                kind=case.kind,
            )
        except DifferentialMismatch as exc:
            entry["verified"] = False
            entry["mismatch"] = str(exc)
            failures.append(f"{label}: {exc}")
            print(f"{label}: DIVERGED — {exc}")
        else:
            entry["verified"] = True
            entry["replay"] = report.as_dict()
            checkpoints += report.batches * report.points
            ops_applied += report.ops_applied
            print(
                f"{label}: {report.batches} checkpoints bit-identical "
                f"({report.ops_applied} edits, "
                f"{report.arcs_repaired} arcs repaired, "
                f"speedup {report.speedup:.2f}x)"
            )
        manifest["cases"].append(entry)
    manifest["verified_checkpoints"] = checkpoints
    manifest["ops_applied"] = ops_applied
    manifest["passed"] = not failures
    RESULTS.mkdir(exist_ok=True)
    MANIFEST.write_text(
        json.dumps(manifest, indent=1, sort_keys=True) + "\n"
    )
    print(
        f"corpus: {len(corpus)} cases, {checkpoints} verified "
        f"(ε, µ)-checkpoints; manifest at {MANIFEST}"
    )

    smoke_speedup = None
    if failures:
        # Bit-identity is the contract; do not bother timing a broken
        # engine.
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
    elif not args.skip_throughput:
        print("--- throughput leg (bench_stream_updates --smoke) ---")
        if bench_stream_updates.main(["--smoke"]) != 0:
            failures.append(
                "update throughput below the "
                f"{bench_stream_updates.SPEEDUP_FLOOR}x floor"
            )
        else:
            results = json.loads(bench_stream_updates.OUT_JSON.read_text())
            smoke_speedup = results["smoke"]["speedup"]

    if args.ledger:
        ledger = RunLedger(Path(args.ledger))
        record = build_record(
            "stream_gate",
            workload={
                "corpus_cases": len(corpus),
                "seed": args.seed,
                "scale": args.scale,
            },
            algorithm="StreamingEngine vs GSIndex rebuild",
            wall_seconds=time.perf_counter() - t_gate,
            metrics={
                "stream.checkpoints_verified": checkpoints,
                "stream.ops_applied": ops_applied,
                "stream.mismatches": len(failures),
            },
            extra={
                "passed": not failures,
                "smoke_speedup": smoke_speedup,
            },
        )
        sealed = ledger.append(record)
        print(f"ledger: appended stream_gate record seq={sealed['seq']}")

    if failures:
        return 1
    print("stream gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
