"""Shared fixtures for the paper-figure benchmarks.

Each ``bench_*.py`` regenerates one table/figure of the paper: it runs the
experiment (work records + machine-model pricing), writes the rendered
table under ``bench_results/``, prints it, and asserts the paper's *shape*
claims (orderings, trends, crossovers) — not absolute numbers.

Scale: set ``REPRO_SCALE`` (default 0.4) to grow/shrink every evaluation
graph.  Run caches are shared across benches within one pytest session.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


#: Flattened metric leaves per ledger record are capped so a dense sweep
#: grid cannot balloon the append-only history file.
LEDGER_METRIC_CAP = 64


def append_bench_ledger(exp_id: str, data) -> None:
    """The shared ledger writer for every ``bench_*.py`` result.

    One ``kind="bench"`` record per experiment lands in
    ``bench_results/ledger.jsonl`` (the same schema-versioned store the
    CLI and the trend gate read), keyed by the experiment id and the
    session's ``REPRO_SCALE`` so only same-scale runs are comparable.
    """
    import os

    sys.path.insert(0, str(RESULTS_DIR.parent / "src"))
    from repro.obs.ledger import RunLedger, build_record
    from repro.obs.regression import flatten

    payload = _jsonable(data)
    try:
        metrics = flatten(payload) if isinstance(payload, dict) else {}
    except (TypeError, ValueError):
        metrics = {}
    if len(metrics) > LEDGER_METRIC_CAP:
        metrics = dict(sorted(metrics.items())[:LEDGER_METRIC_CAP])
    RunLedger(RESULTS_DIR / "ledger.jsonl").append(
        build_record(
            "bench",
            workload={
                "bench": exp_id,
                "scale": float(os.environ.get("REPRO_SCALE", 0.4)),
            },
            metrics=metrics or None,
        )
    )


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result) -> None:
        path = RESULTS_DIR / f"{result.exp_id}.txt"
        path.write_text(result.text + "\n")
        json_path = RESULTS_DIR / f"{result.exp_id}.json"
        try:
            json_path.write_text(
                json.dumps(_jsonable(result.data), indent=1, sort_keys=True)
            )
        except TypeError:
            pass  # non-serializable payloads keep the .txt only
        append_bench_ledger(result.exp_id, result.data)
        print(f"\n{result.text}\n[saved to {path}]", file=sys.stderr)

    return _save


def _jsonable(obj):
    """Best-effort conversion of experiment data to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "item"):
        return obj.item()
    if hasattr(obj, "__dict__") and not isinstance(obj, type):
        return {
            k: _jsonable(v)
            for k, v in vars(obj).items()
            if not k.startswith("_")
        }
    return obj


def monotone_fraction(values) -> float:
    """Fraction of adjacent pairs that are non-increasing (trend check)."""
    pairs = list(zip(values, values[1:]))
    if not pairs:
        return 1.0
    return sum(1 for a, b in pairs if b <= a * 1.05) / len(pairs)
