#!/usr/bin/env python
"""CI gate for service durability: kill -9 the real server, recover.

Drives ``repro-scan serve --wal-dir`` through its actual CLI and WAL,
arming :class:`~repro.service.wal.WALCrashPoint` via the
``REPRO_WAL_CRASH`` environment variable so the process dies with
``os._exit(137)`` at seeded WAL events, then restarts it against the
same directory and checks the recovered state **bit for bit** against
an in-process reference computed with :mod:`repro.api`.

The operation script is deterministic, so each WAL append has a known
lsn:

========  ====================================  ====
lsn       operation                             note
========  ====================================  ====
1         ``POST /graphs`` (base graph)         submit record
2         updates batch 1 (``Idempotency-Key:   update record
          batch-1``)
3         updates batch 2 (``batch-2``)         update record
========  ====================================  ====

Queries never append, so the crash matrix below lands exactly where it
says:

* ``mid-append:<lsn>`` — torn record: the mutation must be **absent**
  after recovery and a client retry must apply it cleanly;
* ``post-append:<lsn>`` — durable record, never acknowledged: the
  mutation must be present **exactly once**, and a duplicate
  ``Idempotency-Key`` retry must replay the original response without
  re-applying;
* ``mid-compact:1`` / ``post-compact:1`` — die inside snapshot
  compaction: either the old snapshot + full log or the new snapshot +
  stale log survives, and both must recover to the same final state.

A final leg SIGTERMs the server during a concurrent query burst and
requires a graceful drain: exit code 0, every in-flight request
answered (200 or a structured 503), a final snapshot on disk, and a
fresh start that replays **zero** WAL records.

Artifacts: ``bench_results/service_crash.json`` (per-case outcomes)
and ``bench_results/service_crash_recovery.json`` (the last recovery
manifest: WAL stats + replay counts), for CI upload.

Usage::

    PYTHONPATH=src python benchmarks/check_service_crash.py

Exit status follows the shared gate contract: 0 every case recovered
bit-identically, 1 a durability invariant was violated, 2 setup error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

RESULTS_DIR = REPO_ROOT / "bench_results"
CRASH_EXIT = 137  # ProcessCrashPoint/WALCrashPoint contract

#: The (ε, µ) points diffed bit-for-bit on every recovered state.
POINTS = [(0.5, 2), (0.42, 3)]

#: Base graph: two triangle communities bridged at 2–3, plus a tail.
BASE_EDGES = [
    [0, 1], [0, 2], [1, 2], [2, 3], [3, 4], [3, 5], [4, 5], [5, 6],
    [6, 7], [7, 8], [6, 8], [8, 9],
]
BATCH_1 = {"insert": [[9, 0], [1, 4]]}
BATCH_2 = {"insert": [[2, 7]], "remove": [[8, 9]]}


def _request(port, method, target, body=None, headers=None, timeout=30.0):
    """One blocking HTTP exchange; (status, payload) or an OSError if
    the server died mid-request (exactly what a crash point causes)."""
    payload = b"" if body is None else json.dumps(body).encode()
    head = [f"{method} {target} HTTP/1.1", "Host: gate"]
    if payload:
        head += [
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
        ]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    head.append("Connection: close")
    raw = ("\r\n".join(head) + "\r\n\r\n").encode() + payload
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(raw)
        buf = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    if not buf:
        raise ConnectionError("server closed the connection unanswered")
    header, _, body = buf.partition(b"\r\n\r\n")
    return int(header.split()[1]), (json.loads(body) if body else None)


class Server:
    """One ``repro-scan serve`` subprocess bound to an ephemeral port."""

    def __init__(self, wal_dir: Path, crash: str | None = None, **flags):
        env = {
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
        }
        if crash:
            env["REPRO_WAL_CRASH"] = crash
        argv = [
            sys.executable, "-u", "-m", "repro", "serve",
            "--port", "0", "--wal-dir", str(wal_dir),
        ]
        for flag, value in flags.items():
            argv += [f"--{flag.replace('_', '-')}", str(value)]
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        self.port: int | None = None
        self.lines: list[str] = []
        deadline = time.time() + 90
        while time.time() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            self.lines.append(line)
            match = re.search(r"http://[\d.]+:(\d+)", line)
            if match:
                self.port = int(match.group(1))
                # Keep draining stdout so the pipe never blocks the server.
                threading.Thread(target=self._drain, daemon=True).start()
                return
        raise RuntimeError(
            "server never reported its port:\n" + "".join(self.lines)
        )

    def _drain(self):
        for line in self.proc.stdout:
            self.lines.append(line)

    def wait(self, timeout=60) -> int:
        return self.proc.wait(timeout=timeout)

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)


def _reference_states():
    """The in-process ground truth for every server state the script
    reaches: fingerprints + full label vectors per (ε, µ) point."""
    import numpy as np

    from repro import api
    from repro.cache import graph_fingerprint
    from repro.graph import from_edge_array
    from repro.streaming import EditBatch
    from repro.types import ScanParams

    session = api.Session()
    graph = from_edge_array(np.asarray(BASE_EDGES, dtype=np.int64))
    handle = session.open(graph, label="crash-gate")
    states = []
    for batch in (None, BATCH_1, BATCH_2):
        if batch is not None:
            handle.apply_updates(EditBatch.coerce(batch))
        labels = {}
        for eps, mu in POINTS:
            result = handle.cluster(ScanParams(eps, mu))
            labels[(eps, mu)] = {
                "roles": result.roles.tolist(),
                "core_labels": result.core_labels.tolist(),
                "noncore_pairs": [
                    [int(a), int(b)] for a, b in result.noncore_pairs
                ],
            }
        states.append({"fingerprint": handle.fingerprint, "labels": labels})
    return states  # [state0 (base), state1 (after batch 1), state2 (after 2)]


def _diff_state(port, expected, problems, context):
    """Bit-for-bit diff of one resident graph's points vs reference."""
    fp = expected["fingerprint"]
    for (eps, mu), want in expected["labels"].items():
        status, got = _request(
            port, "GET",
            f"/graphs/{fp}/cluster?eps={eps}&mu={mu}&include=labels",
        )
        if status != 200:
            problems.append(f"{context}: query ({eps},{mu}) -> {status}: {got}")
            continue
        for field in ("roles", "core_labels", "noncore_pairs"):
            if got[field] != want[field]:
                problems.append(
                    f"{context}: {field} diverged at ({eps},{mu}) on {fp[:12]}"
                )


def _drive_until_crash(server: Server, stop_after: str):
    """Run the deterministic op script against ``server``; each step may
    kill it (crash-armed runs).  Returns the step that severed the
    connection, or None if the whole script ran."""
    steps = [
        ("submit", lambda fp: _request(
            server.port, "POST", "/graphs",
            {"edges": BASE_EDGES, "label": "crash-gate"},
        )),
        ("query0", lambda fp: _request(
            server.port, "GET",
            f"/graphs/{fp[-1]}/cluster?eps=0.5&mu=2",
        )),
        ("update1", lambda fp: _request(
            server.port, "POST", f"/graphs/{fp[-1]}/updates",
            BATCH_1, {"Idempotency-Key": "batch-1"},
        )),
        ("update2", lambda fp: _request(
            server.port, "POST", f"/graphs/{fp[-1]}/updates",
            BATCH_2, {"Idempotency-Key": "batch-2"},
        )),
        ("compact", lambda fp: _request(
            server.port, "POST", "/admin/compact",
        )),
    ]
    fps: list[str] = []
    for name, step in steps:
        try:
            status, payload = step(fps)
        except (ConnectionError, OSError):
            return name
        if status not in (200, 201):
            raise RuntimeError(f"step {name} answered {status}: {payload}")
        if name == "submit":
            fps.append(payload["fingerprint"])
        elif name.startswith("update"):
            fps.append(payload["fingerprint"])
        if name == stop_after:
            return None
    return None


# Each case: the armed crash point, the op expected to die, the
# reference state index expected resident after recovery (None = empty),
# and the retry that must succeed against the recovered server.
CASES = [
    {
        "crash": "mid-append:1", "dies_at": "submit", "recovered_state": None,
        "retry": "submit",
    },
    {
        "crash": "post-append:1", "dies_at": "submit", "recovered_state": 0,
        "retry": "resubmit-dedup",
    },
    {
        "crash": "mid-append:2", "dies_at": "update1", "recovered_state": 0,
        "retry": "update1-fresh",
    },
    {
        "crash": "post-append:2", "dies_at": "update1", "recovered_state": 1,
        "retry": "update1-idempotent",
    },
    {
        "crash": "mid-append:3", "dies_at": "update2", "recovered_state": 1,
        "retry": "update2-fresh",
    },
    {
        "crash": "post-append:3", "dies_at": "update2", "recovered_state": 2,
        "retry": "update2-idempotent",
    },
    {
        "crash": "mid-compact:1", "dies_at": "compact", "recovered_state": 2,
        "retry": "compact",
    },
    {
        "crash": "post-compact:1", "dies_at": "compact", "recovered_state": 2,
        "retry": "compact",
    },
]


def _run_retry(port, retry, states, problems, context):
    if retry == "submit" or retry == "resubmit-dedup":
        status, payload = _request(
            port, "POST", "/graphs",
            {"edges": BASE_EDGES, "label": "crash-gate"},
        )
        want_dedup = retry == "resubmit-dedup"
        if want_dedup and not (status == 200 and payload.get("already_loaded")):
            problems.append(
                f"{context}: acknowledged-equivalent submit retry did not "
                f"dedup ({status}: {payload})"
            )
        if not want_dedup and status != 201:
            problems.append(
                f"{context}: submit retry after torn record -> {status}"
            )
    elif retry.startswith("update"):
        n = 1 if retry.startswith("update1") else 2
        batch = BATCH_1 if n == 1 else BATCH_2
        old_fp = states[n - 1]["fingerprint"]
        status, payload = _request(
            port, "POST", f"/graphs/{old_fp}/updates",
            batch, {"Idempotency-Key": f"batch-{n}"},
        )
        if retry.endswith("idempotent"):
            # The batch was durable pre-crash; the retry must be
            # answered from the idempotency map, not re-applied.
            if status != 200 or not payload.get("idempotent_replay"):
                problems.append(
                    f"{context}: durable batch retry was not an idempotent "
                    f"replay ({status}: {payload})"
                )
            if status == 200 and payload.get("fingerprint") != states[n]["fingerprint"]:
                problems.append(
                    f"{context}: idempotent replay returned fingerprint "
                    f"{payload.get('fingerprint')}, want "
                    f"{states[n]['fingerprint']}"
                )
        else:
            # The batch was torn away; the retry must apply fresh and
            # land on the same deterministic fingerprint.
            if status != 200 or payload.get("idempotent_replay"):
                problems.append(
                    f"{context}: torn batch retry did not apply fresh "
                    f"({status}: {payload})"
                )
            elif payload["fingerprint"] != states[n]["fingerprint"]:
                problems.append(
                    f"{context}: re-applied batch landed on "
                    f"{payload['fingerprint']}, want {states[n]['fingerprint']}"
                )
    elif retry == "compact":
        status, payload = _request(port, "POST", "/admin/compact")
        if status != 200 or payload["wal"]["pending_records"] != 0:
            problems.append(f"{context}: compact retry -> {status}: {payload}")


def _crash_case(case, states, work: Path, problems) -> dict:
    context = case["crash"]
    wal_dir = work / context.replace(":", "-")
    server = Server(wal_dir, crash=case["crash"], snapshot_every="1000")
    outcome = {"case": context}
    try:
        died_at = _drive_until_crash(server, stop_after="compact")
        code = server.wait()
        outcome["exit_code"] = code
        outcome["died_at"] = died_at
        if code != CRASH_EXIT:
            problems.append(
                f"{context}: armed server exited {code}, want {CRASH_EXIT}"
            )
        if died_at != case["dies_at"]:
            problems.append(
                f"{context}: died at step {died_at!r}, "
                f"want {case['dies_at']!r}"
            )
    finally:
        server.kill()

    # Restart disarmed against the same WAL directory.
    server = Server(wal_dir)
    try:
        status, stats = _request(server.port, "GET", "/stats")
        if status != 200:
            problems.append(f"{context}: /stats after restart -> {status}")
            return outcome
        resident = stats["registry"]["fingerprints"]
        recovery = stats.get("wal", {}).get("recovery", {})
        outcome["recovery"] = recovery
        state_index = case["recovered_state"]
        expected_fps = (
            [] if state_index is None
            else [states[state_index]["fingerprint"]]
        )
        if sorted(resident) != sorted(expected_fps):
            problems.append(
                f"{context}: recovered registry {resident}, "
                f"want {expected_fps}"
            )
        elif state_index is not None:
            _diff_state(server.port, states[state_index], problems, context)
        _run_retry(server.port, case["retry"], states, problems, context)
        server.proc.send_signal(signal.SIGTERM)
        code = server.wait()
        if code != 0:
            problems.append(
                f"{context}: recovered server exited {code} on SIGTERM"
            )
    finally:
        server.kill()
    return outcome


def _drain_case(states, work: Path, problems) -> dict:
    """SIGTERM under concurrent load must drain cleanly."""
    wal_dir = work / "drain"
    server = Server(wal_dir, snapshot_every="1000", max_concurrent_queries="2")
    outcome = {"case": "sigterm-drain"}
    statuses: list[int] = []
    lock = threading.Lock()
    try:
        status, payload = _request(
            server.port, "POST", "/graphs",
            {"edges": BASE_EDGES, "label": "crash-gate"},
        )
        if status != 201:
            raise RuntimeError(f"drain submit -> {status}: {payload}")
        fp = payload["fingerprint"]

        def burst(i):
            eps = POINTS[i % len(POINTS)][0]
            mu = POINTS[i % len(POINTS)][1]
            try:
                st, _ = _request(
                    server.port, "GET",
                    f"/graphs/{fp}/cluster?eps={eps}&mu={mu}",
                )
            except (ConnectionError, OSError):
                st = -1  # connection severed (acceptable only post-grace)
            with lock:
                statuses.append(st)

        threads = [
            threading.Thread(target=burst, args=(i,)) for i in range(24)
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)  # let the burst be genuinely in flight
        server.proc.send_signal(signal.SIGTERM)
        for t in threads:
            t.join(timeout=60)
        code = server.wait()
        outcome["exit_code"] = code
        outcome["statuses"] = sorted(set(statuses))
        if code != 0:
            problems.append(f"drain: server exited {code} on SIGTERM, want 0")
        bad = [s for s in statuses if s not in (200, 429, 503, -1)]
        if bad:
            problems.append(
                f"drain: burst saw non-structured statuses {sorted(set(bad))}"
            )
        if not any(s == 200 for s in statuses):
            problems.append("drain: no burst request completed at all")
        snapshot = wal_dir / "snapshot.json"
        if not snapshot.exists():
            problems.append("drain: no final snapshot written")
    finally:
        server.kill()

    # A fresh start must replay zero WAL records (all compacted away).
    server = Server(wal_dir)
    try:
        status, stats = _request(server.port, "GET", "/stats")
        recovery = stats.get("wal", {}).get("recovery", {})
        outcome["recovery"] = recovery
        if status != 200:
            problems.append(f"drain: /stats after restart -> {status}")
        elif recovery.get("records_replayed", -1) != 0:
            problems.append(
                f"drain: fresh start replayed "
                f"{recovery.get('records_replayed')} records, want 0"
            )
        elif stats["registry"]["fingerprints"] != [states[0]["fingerprint"]]:
            problems.append(
                f"drain: restarted registry {stats['registry']['fingerprints']}"
            )
        else:
            _diff_state(server.port, states[0], problems, "drain-restart")
        server.proc.send_signal(signal.SIGTERM)
        if server.wait() != 0:
            problems.append("drain: restarted server did not exit 0")
    finally:
        server.kill()
    return outcome


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated subset of crash points (default: all)",
    )
    args = parser.parse_args(argv)

    cases = CASES
    if args.only:
        names = {n.strip() for n in args.only.split(",")}
        cases = [c for c in cases if c["crash"] in names]
        if not cases:
            print(f"unknown crash case(s): {args.only}", file=sys.stderr)
            return 2

    try:
        states = _reference_states()
    except Exception as exc:  # pragma: no cover - setup trouble
        print(f"setup failed computing reference states: {exc}")
        return 2

    problems: list[str] = []
    outcomes = []
    with tempfile.TemporaryDirectory(prefix="service-crash-") as tmp:
        work = Path(tmp)
        for case in cases:
            before = len(problems)
            outcome = _crash_case(case, states, work, problems)
            outcomes.append(outcome)
            verdict = "ok" if len(problems) == before else "FAIL"
            print(
                f"{case['crash']:<16} died at {outcome.get('died_at')}, "
                f"exit {outcome.get('exit_code')}, recovered "
                f"{outcome.get('recovery', {}).get('records_replayed', '?')} "
                f"record(s): {verdict}"
            )
        before = len(problems)
        outcome = _drain_case(states, work, problems)
        outcomes.append(outcome)
        print(
            f"{'sigterm-drain':<16} exit {outcome.get('exit_code')}, "
            f"statuses {outcome.get('statuses')}: "
            f"{'ok' if len(problems) == before else 'FAIL'}"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_crash.json").write_text(
        json.dumps(
            {
                "cases": outcomes,
                "problems": problems,
                "points": POINTS,
                "reference_fingerprints": [s["fingerprint"] for s in states],
            },
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )
    last_recovery = next(
        (o["recovery"] for o in reversed(outcomes) if o.get("recovery")), {}
    )
    (RESULTS_DIR / "service_crash_recovery.json").write_text(
        json.dumps(last_recovery, indent=1, sort_keys=True) + "\n"
    )

    if problems:
        print("\nservice crash gate FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("service crash gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
