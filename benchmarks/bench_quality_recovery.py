"""Clustering-quality study: planted-community recovery vs mixing.

Beyond the paper's performance evaluation, a credibility check on the
*output*: SCAN-family clustering recovers planted communities perfectly
when they are well separated and degrades gracefully as inter-community
mixing grows.
"""

from repro.bench.experiments import ExperimentResult
from repro.bench.reporting import format_table
from repro.core import fast_structural_clustering
from repro.graph.generators import planted_partition
from repro.quality import adjusted_rand_index, primary_labels
from repro.types import ScanParams

P_OUT_SWEEP = (0.0, 0.01, 0.03, 0.06, 0.1)


def test_recovery_vs_mixing(benchmark, save_result):
    def run():
        rows = []
        data = {}
        for p_out in P_OUT_SWEEP:
            graph, truth = planted_partition(
                8, block_size=50, p_in=0.4, p_out=p_out, seed=13
            )
            result = fast_structural_clustering(graph, ScanParams(0.4, 4))
            labels = primary_labels(result)
            mask = labels >= 0
            # Score recovery on the clustered vertices only: the noise
            # sentinel is excluded inside the index itself.
            ari = (
                adjusted_rand_index(
                    truth.tolist(),
                    labels.tolist(),
                    noise=-1,
                    noise_policy="exclude",
                )
                if mask.any()
                else 0.0
            )
            clustered = float(mask.mean())
            data[p_out] = {
                "ari": ari,
                "clusters": result.num_clusters,
                "clustered_fraction": clustered,
            }
            rows.append(
                [
                    p_out,
                    result.num_clusters,
                    f"{ari:.3f}",
                    f"{clustered:.1%}",
                ]
            )
        text = format_table(
            "planted-community recovery (8 blocks x 50, p_in=0.4, "
            "eps=0.4, mu=4)",
            ["p_out", "clusters found", "ARI", "clustered"],
            rows,
        )
        return ExperimentResult("quality", "Community recovery", text, data)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    data = result.data

    # Perfect recovery with clean separation.
    assert data[0.0]["ari"] == 1.0
    assert data[0.0]["clusters"] == 8
    assert data[0.01]["ari"] > 0.95
    # Graceful degradation: ARI never increases as mixing grows.
    aris = [data[p]["ari"] for p in P_OUT_SWEEP]
    for earlier, later in zip(aris, aris[1:]):
        assert later <= earlier + 0.02
