#!/usr/bin/env python
"""CI gate for crash-safe checkpoint/resume.

Kills the *real* CLI process (``os._exit``, exit code 137 — the shape of
a SIGKILL / OOM-kill) at seeded checkpoint epochs via the
``REPRO_CRASH_EPOCH`` / ``REPRO_CRASH_MODE`` environment hooks, resumes
with ``--resume``, and verifies deterministically:

1. every crash/resume pair yields the *bit-identical* clustering of an
   uninterrupted baseline run (compared through the saved
   :class:`~repro.core.result.ClusteringResult`, not stdout);
2. both ``before-save`` and ``after-save`` crash timings recover — the
   durable state machine has no window where a kill loses or corrupts
   progress;
3. an interrupted + resumed parameter sweep reproduces the same per-point
   grid CSV and at least the uninterrupted run's cache-reuse fraction;
4. a checkpoint directory recorded for a different graph refuses to
   resume (exit code 4), never silently producing wrong results.

Usage::

    PYTHONPATH=src python benchmarks/check_crash_restart.py --smoke
    PYTHONPATH=src python benchmarks/check_crash_restart.py

``--smoke`` probes one seeded epoch per algorithm/mode leg (CI-sized);
the full gate probes every epoch the baseline run wrote.  Results land
in ``bench_results/crash_restart.json`` and the final run's checkpoint
manifest is copied to ``bench_results/crash_restart_manifest.json`` so
CI can archive what the durable state actually looked like.

Exit status is non-zero on any divergence.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import assert_same_clustering  # noqa: E402
from repro.core.result import ClusteringResult  # noqa: E402
from repro.graph.generators import real_world_standin  # noqa: E402
from repro.graph.io import write_edge_list  # noqa: E402
from repro.parallel import CRASH_EXIT_CODE  # noqa: E402

GRAPH_SEED = 7
CHECKPOINT_EVERY = 25
EPS, MU = "0.4", "4"

#: Every (algorithm, exec-mode) leg the differential covers.
LEGS = [
    ("ppscan", "scalar"),
    ("ppscan", "batched"),
    ("pscan", "scalar"),
    ("pscan", "batched"),
    ("scanxp", "scalar"),
    ("scanxp", "batched"),
    ("anyscan", "scalar"),
]


def run_cli(args: list[str], env_extra: dict | None = None) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_CRASH_EPOCH", None)
    env.pop("REPRO_CRASH_MODE", None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode not in (0, CRASH_EXIT_CODE, 4):
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
    return proc.returncode


def count_epochs(ck_dir: Path) -> int:
    manifest = json.loads((ck_dir / "manifest.json").read_text())
    return len(manifest.get("epochs", []))


def check_leg(
    workdir: Path,
    graph_file: Path,
    algorithm: str,
    exec_mode: str,
    smoke: bool,
) -> dict:
    """Crash/resume differential for one algorithm/mode leg."""
    leg = f"{algorithm}-{exec_mode}"
    base_dir = workdir / leg
    base_dir.mkdir()
    baseline_npz = base_dir / "baseline.npz"
    ck_dir = base_dir / "ckpt-baseline"

    common = [
        "cluster",
        str(graph_file),
        "--eps",
        EPS,
        "--mu",
        MU,
        "--algorithm",
        algorithm,
        "--exec-mode",
        exec_mode,
        "--checkpoint-every",
        str(CHECKPOINT_EVERY),
    ]
    rc = run_cli(
        common
        + ["--checkpoint-dir", str(ck_dir), "--save", str(baseline_npz)]
    )
    if rc != 0:
        raise SystemExit(f"{leg}: baseline run failed with exit {rc}")
    baseline = ClusteringResult.load(baseline_npz)
    epochs = count_epochs(ck_dir)
    if epochs < 2:
        raise SystemExit(
            f"{leg}: baseline wrote only {epochs} checkpoint epoch(s); "
            "the differential needs at least 2 (shrink --checkpoint-every)"
        )

    probe_epochs = [max(2, epochs // 2)] if smoke else range(1, epochs + 1)
    probes = 0
    for epoch in probe_epochs:
        for mode in ("before-save", "after-save"):
            crash_ck = base_dir / f"ckpt-e{epoch}-{mode}"
            rc = run_cli(
                common + ["--checkpoint-dir", str(crash_ck)],
                env_extra={
                    "REPRO_CRASH_EPOCH": str(epoch),
                    "REPRO_CRASH_MODE": mode,
                },
            )
            if rc != CRASH_EXIT_CODE:
                raise SystemExit(
                    f"{leg}: crash at epoch {epoch} ({mode}) exited {rc}, "
                    f"expected {CRASH_EXIT_CODE}"
                )
            resumed_npz = crash_ck / "resumed.npz"
            rc = run_cli(
                common
                + [
                    "--checkpoint-dir",
                    str(crash_ck),
                    "--resume",
                    "--save",
                    str(resumed_npz),
                ]
            )
            if rc != 0:
                raise SystemExit(
                    f"{leg}: resume after epoch-{epoch} {mode} crash "
                    f"exited {rc}"
                )
            assert_same_clustering(
                baseline, ClusteringResult.load(resumed_npz)
            )
            probes += 1
    print(f"  {leg}: {probes} crash/resume probe(s) bit-identical "
          f"({epochs} baseline epochs)")
    return {"leg": leg, "epochs": epochs, "probes": probes}


def read_grid_csv(path: Path) -> tuple[list[tuple], list[float]]:
    points, reuse = [], []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            raw = row.pop("reuse", "-").rstrip("%")
            reuse_val = float(raw) if raw not in ("-", "") else 0.0
            row.pop("wall_ms", None)  # timing varies run to run
            row.pop("CompSims", None)  # restored points report 0 work
            points.append(tuple(sorted(row.items())))
            reuse.append(reuse_val)
    return points, reuse


def check_sweep(workdir: Path, graph_file: Path) -> dict:
    """Interrupted + resumed sweep: same grid, no lost cache reuse."""
    sweep_dir = workdir / "sweep"
    sweep_dir.mkdir()
    common = [
        "sweep",
        str(graph_file),
        "--eps",
        "0.3,0.5",
        "--mu",
        "3,5",
        "--algorithm",
        "ppscan",
    ]
    baseline_csv = sweep_dir / "baseline.csv"
    rc = run_cli(
        common
        + [
            "--cache-dir",
            str(sweep_dir / "cache-baseline"),
            "--csv",
            str(baseline_csv),
        ]
    )
    if rc != 0:
        raise SystemExit(f"sweep baseline failed with exit {rc}")
    base_points, base_reuse = read_grid_csv(baseline_csv)

    ck_dir = sweep_dir / "ckpt"
    crash_args = common + [
        "--cache-dir",
        str(sweep_dir / "cache-crash"),
        "--checkpoint-dir",
        str(ck_dir),
    ]
    rc = run_cli(
        crash_args,
        env_extra={"REPRO_CRASH_EPOCH": "2", "REPRO_CRASH_MODE": "after-save"},
    )
    if rc != CRASH_EXIT_CODE:
        raise SystemExit(f"sweep crash run exited {rc}, expected 137")
    resumed_csv = sweep_dir / "resumed.csv"
    rc = run_cli(crash_args + ["--resume", "--csv", str(resumed_csv)])
    if rc != 0:
        raise SystemExit(f"sweep resume exited {rc}")
    res_points, res_reuse = read_grid_csv(resumed_csv)
    if base_points != res_points:
        raise SystemExit(
            "sweep grid diverged after resume:\n"
            f"  baseline: {base_points}\n  resumed:  {res_points}"
        )
    for i, (a, b) in enumerate(zip(base_reuse, res_reuse)):
        if b < a - 1e-9:
            raise SystemExit(
                f"sweep point {i}: resumed reuse {b} < baseline {a}"
            )
    print(f"  sweep: {len(base_points)} grid points identical after "
          "crash+resume, reuse preserved")
    return {"points": len(base_points)}


def check_mismatch_refusal(workdir: Path, graph_file: Path) -> None:
    """A checkpoint for another graph must refuse (exit 4), not corrupt."""
    ck_dir = workdir / "mismatch-ck"
    rc = run_cli(
        [
            "cluster",
            str(graph_file),
            "--eps",
            EPS,
            "--mu",
            MU,
            "--checkpoint-dir",
            str(ck_dir),
        ]
    )
    if rc != 0:
        raise SystemExit(f"mismatch seed run exited {rc}")
    other = workdir / "other.txt"
    write_edge_list(
        real_world_standin("livejournal", scale=0.02, seed=GRAPH_SEED + 1),
        other,
    )
    rc = run_cli(
        [
            "cluster",
            str(other),
            "--eps",
            EPS,
            "--mu",
            MU,
            "--checkpoint-dir",
            str(ck_dir),
            "--resume",
        ]
    )
    if rc != 4:
        raise SystemExit(
            f"resume against a different graph exited {rc}, expected 4"
        )
    print("  mismatch: resume against a different graph refused (exit 4)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one seeded crash epoch per leg instead of every epoch",
    )
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument(
        "--out-dir",
        default=str(REPO_ROOT / "bench_results"),
        metavar="DIR",
        help="where the JSON summary and manifest artifact land",
    )
    args = parser.parse_args(argv)

    graph = real_world_standin("livejournal", scale=args.scale, seed=GRAPH_SEED)
    print(
        f"crash-restart gate: |V|={graph.num_vertices:,}, "
        f"|E|={graph.num_edges:,}, eps={EPS}, mu={MU}, "
        f"{'smoke' if args.smoke else 'full'} mode"
    )

    summary: dict = {"mode": "smoke" if args.smoke else "full", "legs": []}
    with tempfile.TemporaryDirectory(prefix="crash-restart-") as tmp:
        workdir = Path(tmp)
        graph_file = workdir / "graph.txt"
        write_edge_list(graph, graph_file)

        for algorithm, exec_mode in LEGS:
            summary["legs"].append(
                check_leg(workdir, graph_file, algorithm, exec_mode, args.smoke)
            )
        summary["sweep"] = check_sweep(workdir, graph_file)
        check_mismatch_refusal(workdir, graph_file)

        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        # Archive the last leg's baseline manifest: the durable record of
        # every epoch the gate's final differential trusted.
        last_leg = "{}-{}".format(*LEGS[-1])
        manifest_src = workdir / last_leg / "ckpt-baseline" / "manifest.json"
        shutil.copy(manifest_src, out_dir / "crash_restart_manifest.json")
        (out_dir / "crash_restart.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )
        print(
            f"wrote {out_dir / 'crash_restart.json'} and "
            f"{out_dir / 'crash_restart_manifest.json'}"
        )

    print("crash-restart gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
