#!/usr/bin/env python
"""CI gate for the always-on clustering service.

Exercises the service exactly as an operator would — through the real
CLI — and verifies the serving invariants end to end:

1. ``repro-scan serve`` starts, pre-loads a graph, and answers
   ``/healthz`` and ``/stats``;
2. a concurrent burst of identical cold queries is **coalesced** (one
   leader computes, the rest share its future: coalescing hits > 0) and
   every response carries the same clustering summary;
3. queries for a fingerprint that is not loaded answer 404, malformed
   parameters answer 400 — structured errors, not dropped connections;
4. the service ledger receives at least one ``kind="service"`` batch
   record (flushed on shutdown at the latest);
5. SIGINT produces a **clean shutdown**: exit code 0, no traceback.

Usage::

    PYTHONPATH=src python benchmarks/check_service.py

Exit status follows the shared gate contract (0 ok, 1 violation,
2 setup error).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BURST = 48
N_POINTS = 2  # distinct (eps, mu) pairs in the burst


async def _request(port: int, method: str, target: str):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"{method} {target} HTTP/1.1\r\nHost: gate\r\n"
        "Connection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(body) if body else None


async def _drive(port: int, fingerprint: str) -> list[str]:
    problems: list[str] = []

    status, health = await _request(port, "GET", "/healthz")
    if status != 200 or health.get("status") != "ok":
        problems.append(f"/healthz answered {status}: {health}")

    # Concurrent identical burst on a cold point: one computation, the
    # rest coalesce.  Interleave a second point so the burst is not one
    # degenerate key.
    targets = [
        f"/graphs/{fingerprint}/cluster?eps={'0.42' if i % N_POINTS else '0.58'}&mu=3"
        for i in range(BURST)
    ]
    responses = await asyncio.gather(
        *(_request(port, "GET", t) for t in targets)
    )
    bad = [status for status, _ in responses if status not in (200, 429)]
    if bad:
        problems.append(f"burst statuses not in (200, 429): {sorted(set(bad))}")
    ok = [payload for status, payload in responses if status == 200]
    if not ok:
        problems.append("burst produced no 200 responses")
    else:
        by_eps: dict[float, set[int]] = {}
        for payload in ok:
            by_eps.setdefault(payload["eps"], set()).add(
                payload["num_clusters"]
            )
        for eps, counts in by_eps.items():
            if len(counts) != 1:
                problems.append(
                    f"burst answers disagree at eps={eps}: {sorted(counts)}"
                )

    status, stats = await _request(port, "GET", "/stats")
    if status != 200:
        problems.append(f"/stats answered {status}")
        return problems
    coalesced = stats["counters"]["coalesced"]
    print(
        f"burst of {BURST}: {len(ok)} served, "
        f"{coalesced} coalesced, "
        f"{stats['counters']['rejected']} rejected (429), "
        f"warm hit rate {stats['warm_hit_rate']:.1%}"
    )
    if coalesced <= 0:
        problems.append(
            "no coalescing under a concurrent identical-query burst"
        )

    status, _ = await _request(
        port, "GET", "/graphs/0000000000/cluster?eps=0.5&mu=2"
    )
    if status != 404:
        problems.append(f"unknown fingerprint answered {status}, want 404")
    status, _ = await _request(
        port, "GET", f"/graphs/{fingerprint}/cluster?eps=nope&mu=2"
    )
    if status != 400:
        problems.append(f"malformed eps answered {status}, want 400")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument(
        "--ledger-out",
        default=None,
        metavar="PATH",
        help="also copy the service ledger here (CI artifact upload)",
    )
    args = parser.parse_args(argv)

    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
    with tempfile.TemporaryDirectory(prefix="service-gate-") as tmp:
        work = Path(tmp)
        graph = work / "graph.txt"
        ledger = work / "service-ledger.jsonl"
        gen = subprocess.run(
            [
                sys.executable, "-m", "repro", "generate", "twitter",
                str(graph), "--scale", str(args.scale), "--seed", "3",
            ],
            capture_output=True, text=True, cwd=REPO_ROOT, env=env,
        )
        if gen.returncode != 0:
            print(gen.stdout)
            print(gen.stderr, file=sys.stderr)
            return 2
        match = re.search(r"fingerprint: ([0-9a-f]+)", gen.stdout)
        if not match:
            print("FAIL: generate did not report a fingerprint")
            return 1
        fingerprint = match.group(1)

        proc = subprocess.Popen(
            [
                # -u: the startup lines must cross the pipe unbuffered.
                sys.executable, "-u", "-m", "repro", "serve",
                "--port", "0", "--graph", str(graph),
                "--ledger", str(ledger),
                "--max-concurrent-queries", "2",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, cwd=REPO_ROOT, env=env,
        )
        port = None
        deadline = time.time() + 60
        startup: list[str] = []
        try:
            while time.time() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                startup.append(line)
                served = re.search(r"http://[\d.]+:(\d+)", line)
                if served:
                    port = int(served.group(1))
                    break
            if port is None:
                print("FAIL: service never reported its port")
                print("".join(startup))
                return 1
            print(f"service up on port {port} (pre-loaded {fingerprint})")
            problems = asyncio.run(_drive(port, fingerprint))
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
            try:
                out, _ = proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                out, _ = proc.communicate()
                problems = problems + ["service did not stop on SIGINT"]

        if proc.returncode != 0:
            problems.append(
                f"service exited {proc.returncode} on SIGINT (want 0)"
            )
        if "Traceback" in (out or ""):
            problems.append("service shutdown printed a traceback")

        records = []
        if ledger.exists():
            for line in ledger.read_text().splitlines():
                try:
                    records.append(json.loads(line))
                except ValueError:
                    pass
        service_records = [
            r for r in records if r.get("kind") == "service"
        ]
        if not service_records:
            problems.append(
                f"no kind='service' ledger record in {ledger.name}"
            )
        else:
            metrics = service_records[-1].get("metrics") or {}
            print(
                f"ledger: {len(service_records)} service record(s), last "
                f"batch {metrics.get('service.batch_queries')} queries "
                f"(p50 {metrics.get('service.p50_ms', 0):.2f}ms)"
            )
        if args.ledger_out and ledger.exists():
            dest = Path(args.ledger_out)
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_bytes(ledger.read_bytes())
            print(f"copied service ledger to {dest}")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("service gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
