"""Service load benchmark: thousands of concurrent queries, warm vs cold.

Stands up a real :class:`~repro.service.ClusteringService` (TCP, HTTP,
the works), submits a powerlaw stand-in graph once, then fires
``N_QUERIES`` concurrent ``GET .../cluster`` requests drawn from a small
(ε, µ) working set through ``CONCURRENCY`` keep-alive client
connections.  The first touch of each point pays one index query; every
other request is served warm off the event loop or coalesced onto an
in-flight leader.

Asserted, not just reported:

* warm queries are at least ``MIN_WARM_SPEEDUP``× faster (p50) than
  cold full clustering via direct ``api.cluster`` on the same points;
* every service answer is **bit-identical** to ``api.cluster`` — roles,
  core labels and non-core pairs compared element for element;
* the coalescing path actually fired (hit rate > 0).

The latency distribution (p50/p95), throughput and coalescing rate land
in ``bench_results/service_load.json`` and one ``kind="bench"`` ledger
record (the shared writer in ``conftest.py``).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro import api  # noqa: E402 - path setup first
from repro.cache import graph_fingerprint  # noqa: E402
from repro.graph.generators import real_world_standin  # noqa: E402
from repro.service import ClusteringService  # noqa: E402
from repro.types import ScanParams  # noqa: E402

RESULTS_DIR = REPO_ROOT / "bench_results"
GRAPH_NAME = "twitter"
POINTS = [(0.3, 2), (0.4, 3), (0.5, 2), (0.5, 4), (0.6, 3), (0.7, 5)]
N_QUERIES = 2000
CONCURRENCY = 32
MIN_WARM_SPEEDUP = 10.0


def _scale() -> float:
    return float(os.environ.get("REPRO_SCALE", 0.4))


class _Client:
    """One keep-alive HTTP/1.1 connection speaking JSON to the service."""

    def __init__(self, port: int) -> None:
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )

    async def request(self, method: str, target: str, body=None):
        if self.writer is None:
            await self._connect()
        payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {target} HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        )
        self.writer.write(head.encode() + payload)
        await self.writer.drain()
        status_line = await self.reader.readline()
        status = int(status_line.split()[1])
        length = 0
        headers: dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await self.reader.readexactly(length) if length else b""
        return status, json.loads(body) if body else None, headers

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def _percentile(sorted_values: list[float], q: float) -> float:
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


async def _drive(service: ClusteringService, graph, n_queries: int) -> dict:
    await service.start()
    port = service.port
    submitter = _Client(port)
    edges = [[int(u), int(v)] for u, v in graph.edge_list()]
    status, info, _ = await submitter.request(
        "POST", "/graphs", {"edges": edges, "label": GRAPH_NAME}
    )
    assert status == 201, info
    fp = info["fingerprint"]
    assert fp == graph_fingerprint(graph), "service rebuilt a different CSR"
    index_build_seconds = info["index_build_seconds"]

    # The full query stream: n_queries requests round-robining the
    # working set, drained by CONCURRENCY persistent connections.
    work: asyncio.Queue = asyncio.Queue()
    for i in range(n_queries):
        work.put_nowait(POINTS[i % len(POINTS)])
    latencies: list[float] = []
    rejected_then_succeeded = 0
    t_load = time.perf_counter()

    async def worker(worker_id: int) -> None:
        nonlocal rejected_then_succeeded
        client = _Client(port)
        # Seeded per worker: the jitter is reproducible run to run.
        rng = random.Random(0xB0FF + worker_id)
        try:
            while True:
                try:
                    eps, mu = work.get_nowait()
                except asyncio.QueueEmpty:
                    return
                t0 = time.perf_counter()
                was_rejected = False
                while True:
                    status, payload, headers = await client.request(
                        "GET", f"/graphs/{fp}/cluster?eps={eps}&mu={mu}"
                    )
                    if status != 429:
                        break
                    # Honour the server's Retry-After hint, jittered so
                    # the rejected herd does not re-arrive in lockstep.
                    was_rejected = True
                    retry_after = float(headers.get("retry-after", 1))
                    await asyncio.sleep(
                        rng.uniform(0.05, max(retry_after, 0.05))
                    )
                assert status == 200, payload
                if was_rejected:
                    rejected_then_succeeded += 1
                latencies.append(time.perf_counter() - t0)
        finally:
            await client.close()

    await asyncio.gather(*(worker(i) for i in range(CONCURRENCY)))
    load_seconds = time.perf_counter() - t_load

    # Bit-identity: pull full labels for every point and compare with
    # the direct in-process API, element for element.
    for eps, mu in POINTS:
        status, payload, _ = await submitter.request(
            "GET",
            f"/graphs/{fp}/cluster?eps={eps}&mu={mu}&include=labels",
        )
        assert status == 200, payload
        reference = api.cluster(graph, ScanParams(eps, mu))
        assert payload["roles"] == reference.roles.tolist(), (eps, mu)
        assert payload["core_labels"] == reference.core_labels.tolist(), (
            eps,
            mu,
        )
        assert payload["noncore_pairs"] == [
            [int(a), int(b)] for a, b in reference.noncore_pairs
        ], (eps, mu)

    status, stats, _ = await submitter.request("GET", "/stats")
    assert status == 200
    await submitter.close()
    await service.stop()
    latencies.sort()
    return {
        "fingerprint": fp,
        "index_build_seconds": index_build_seconds,
        "latencies": latencies,
        "load_seconds": load_seconds,
        "rejected_then_succeeded": rejected_then_succeeded,
        "stats": stats,
    }


def run_bench(scale: float | None = None, n_queries: int = N_QUERIES) -> dict:
    scale = _scale() if scale is None else scale
    graph = real_world_standin(GRAPH_NAME, scale=scale, seed=11)

    # Cold reference: direct full clustering per point, no service, no
    # index — what every query would cost without the always-on path.
    cold_walls = []
    for eps, mu in POINTS:
        t0 = time.perf_counter()
        api.cluster(graph, ScanParams(eps, mu))
        cold_walls.append(time.perf_counter() - t0)
    cold_mean = sum(cold_walls) / len(cold_walls)

    service = ClusteringService(
        max_concurrent_queries=8,
        ledger_path=RESULTS_DIR / "ledger.jsonl",
    )
    outcome = asyncio.run(_drive(service, graph, n_queries))

    latencies = outcome["latencies"]
    counters = outcome["stats"]["counters"]
    queries = counters["queries"]
    warm_share = counters["warm_hits"] / queries if queries else 0.0
    # Warm p50 over the steady-state tail (the first touches are cold).
    p50 = _percentile(latencies, 0.50)
    p95 = _percentile(latencies, 0.95)
    data = {
        "graph": GRAPH_NAME,
        "scale": scale,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "points": POINTS,
        "n_queries": n_queries,
        "concurrency": CONCURRENCY,
        "index_build_seconds": outcome["index_build_seconds"],
        "cold_cluster_mean_seconds": cold_mean,
        "p50_seconds": p50,
        "p95_seconds": p95,
        "max_seconds": latencies[-1],
        "throughput_qps": len(latencies) / outcome["load_seconds"],
        "load_seconds": outcome["load_seconds"],
        "warm_speedup_p50": cold_mean / p50 if p50 else float("inf"),
        "warm_hit_rate": warm_share,
        "coalescing_hits": counters["coalesced"],
        "coalescing_hit_rate": counters["coalesced"] / queries
        if queries
        else 0.0,
        "rejected_429": counters["rejected"],
        "rejected_then_succeeded": outcome["rejected_then_succeeded"],
        "fingerprint": outcome["fingerprint"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "service_load.json"
    out.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    from conftest import append_bench_ledger

    append_bench_ledger("service_load", data)
    return data


def test_service_load():
    data = run_bench()
    print(
        f"{GRAPH_NAME} standin (scale {data['scale']}): "
        f"{data['n_queries']} queries over {len(POINTS)} points at "
        f"concurrency {data['concurrency']} — "
        f"p50 {data['p50_seconds'] * 1e3:.2f}ms, "
        f"p95 {data['p95_seconds'] * 1e3:.2f}ms, "
        f"{data['throughput_qps']:.0f} q/s, "
        f"warm speedup {data['warm_speedup_p50']:.0f}x over cold "
        f"{data['cold_cluster_mean_seconds'] * 1e3:.0f}ms, "
        f"coalescing rate {data['coalescing_hit_rate'] * 100:.1f}%, "
        f"{data['rejected_429']} rejected of which "
        f"{data['rejected_then_succeeded']} succeeded on backoff retry",
        file=sys.stderr,
    )
    assert data["warm_speedup_p50"] >= MIN_WARM_SPEEDUP, (
        f"warm p50 {data['p50_seconds'] * 1e3:.2f}ms is only "
        f"{data['warm_speedup_p50']:.1f}x faster than cold clustering "
        f"({MIN_WARM_SPEEDUP}x required); see bench_results/service_load.json"
    )
    assert data["coalescing_hits"] > 0, (
        "no request coalescing observed under a concurrent identical-"
        "query load; see bench_results/service_load.json"
    )
    assert data["warm_hit_rate"] > 0.9, (
        f"warm hit rate {data['warm_hit_rate']:.1%} — the memoized index "
        "path is not actually serving the steady state"
    )


if __name__ == "__main__":
    test_service_load()
    print(
        json.dumps(
            json.loads((RESULTS_DIR / "service_load.json").read_text()),
            indent=1,
        )
    )
