"""Scalar vs batched execution mode: per-stage ppSCAN wall-time speedup.

Times the seven ppSCAN stages under both execution modes on the largest
bundled evaluation graph (the friendster stand-in) and records the
breakdown into ``bench_results/batch_speedup.json``.  The headline claim —
the batched mode's end-to-end speedup — is asserted, not just reported:
the vectorized resolution path must beat the scalar kernels by at least
3x at the default scale.

Runs are interleaved (scalar, batched, scalar, ...) and the best of
``ROUNDS`` kept per mode, so allocator warm-up and host noise cancel
instead of biasing one mode.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.core import assert_same_clustering, ppscan
from repro.core.ppscan import PPSCAN_STAGES
from repro.graph.generators import real_world_standin
from repro.types import ScanParams

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"
GRAPH_NAME = "friendster"
PARAMS = ScanParams(0.4, 5)
ROUNDS = 3
MIN_SPEEDUP = 3.0


def _scale() -> float:
    return float(os.environ.get("REPRO_SCALE", 0.4))


def _time_mode(graph, exec_mode: str):
    """Best-of-one run: (end-to-end wall, per-stage walls, result)."""
    t0 = time.perf_counter()
    result = ppscan(graph, PARAMS, exec_mode=exec_mode)
    wall = time.perf_counter() - t0
    stages = {s.name: s.wall_seconds for s in result.record.stages}
    return wall, stages, result


def run_speedup(scale: float | None = None) -> dict:
    scale = _scale() if scale is None else scale
    graph = real_world_standin(GRAPH_NAME, scale=scale)
    best: dict[str, dict] = {}
    results: dict[str, object] = {}
    for _ in range(ROUNDS):
        for mode in ("scalar", "batched"):
            wall, stages, result = _time_mode(graph, mode)
            if mode not in best or wall < best[mode]["wall_seconds"]:
                best[mode] = {"wall_seconds": wall, "stages": stages}
            results[mode] = result
    assert_same_clustering(results["scalar"], results["batched"])

    scalar, batched = best["scalar"], best["batched"]
    per_stage = {}
    for name in PPSCAN_STAGES:
        s, b = scalar["stages"][name], batched["stages"][name]
        per_stage[name] = {
            "scalar_seconds": s,
            "batched_seconds": b,
            "speedup": (s / b) if b > 0 else None,
        }
    data = {
        "graph": GRAPH_NAME,
        "scale": scale,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "params": {"eps": PARAMS.eps, "mu": PARAMS.mu},
        "rounds": ROUNDS,
        "scalar_seconds": scalar["wall_seconds"],
        "batched_seconds": batched["wall_seconds"],
        "end_to_end_speedup": scalar["wall_seconds"] / batched["wall_seconds"],
        "stages": per_stage,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "batch_speedup.json"
    out.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    return data


def test_batched_speedup():
    data = run_speedup()
    lines = [
        f"{GRAPH_NAME} standin (scale {data['scale']}): "
        f"scalar {data['scalar_seconds']:.3f}s, "
        f"batched {data['batched_seconds']:.3f}s, "
        f"{data['end_to_end_speedup']:.2f}x"
    ]
    for name, row in data["stages"].items():
        speedup = row["speedup"]
        lines.append(
            f"  {name:<30} {row['scalar_seconds'] * 1e3:8.1f}ms -> "
            f"{row['batched_seconds'] * 1e3:8.1f}ms  "
            f"({speedup:.2f}x)" if speedup is not None else f"  {name}"
        )
    print("\n".join(lines), file=sys.stderr)
    assert data["end_to_end_speedup"] >= MIN_SPEEDUP, (
        f"batched mode only {data['end_to_end_speedup']:.2f}x faster than "
        f"scalar (required: {MIN_SPEEDUP}x); see bench_results/batch_speedup.json"
    )


if __name__ == "__main__":
    test_batched_speedup()
    print(json.dumps(json.loads((RESULTS_DIR / "batch_speedup.json").read_text()),
                     indent=1))
