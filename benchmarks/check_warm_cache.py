#!/usr/bin/env python
"""CI gate for the persistent cross-run similarity store.

Drives the real CLI twice over the same graph with ``--cache-dir`` and
verifies, end to end:

1. the cold run records overlaps (``cache.miss`` > 0 in its ``--trace``
   report) and spills a store entry to disk;
2. the warm run is served from that entry (``cache.hit`` > 0 and
   ``cache.miss`` == 0 in its report);
3. both runs save the *bit-identical* clustering (compared through
   :meth:`repro.core.ClusteringResult.same_clustering`);
4. a sweep over an (ε, µ) grid against the warmed store reuses overlaps
   and still matches fresh ``--no-cache`` runs row for row.

Usage::

    PYTHONPATH=src python benchmarks/check_warm_cache.py

Exit status is non-zero on any missing cache evidence or mismatch.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import ClusteringResult  # noqa: E402 - path setup first

GRAPH_KIND = "orkut"
SCALE = 0.1
EPS, MU = 0.5, 4


def _cli(*args: str) -> str:
    """Run ``python -m repro`` as CI users do; returns stdout."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
        },
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"CLI failed: repro {' '.join(args)}")
    return proc.stdout


def _trace_counter(report_path: Path, name: str) -> int:
    match = re.search(
        rf"^\s*{re.escape(name)} = (\d+)$",
        report_path.read_text(),
        re.MULTILINE,
    )
    return int(match.group(1)) if match else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=SCALE)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="warm-cache-") as tmp:
        work = Path(tmp)
        graph = work / "graph.txt"
        cache_dir = work / "simcache"
        _cli(
            "generate", GRAPH_KIND, str(graph),
            "--scale", str(args.scale), "--seed", "7",
        )

        saves, reports = [], []
        for leg in ("cold", "warm"):
            save = work / f"{leg}.npz"
            report = work / f"{leg}-trace.txt"
            _cli(
                "cluster", str(graph),
                "--eps", str(EPS), "--mu", str(MU),
                "--cache-dir", str(cache_dir),
                "--save", str(save),
                "--trace", str(report), "--trace-format", "report",
            )
            saves.append(save)
            reports.append(report)

        cold_miss = _trace_counter(reports[0], "cache.miss")
        warm_hit = _trace_counter(reports[1], "cache.hit")
        warm_miss = _trace_counter(reports[1], "cache.miss")
        print(
            f"cold run: cache.miss={cold_miss}; "
            f"warm run: cache.hit={warm_hit}, cache.miss={warm_miss}"
        )
        if cold_miss == 0:
            print("FAIL: cold run recorded no overlaps")
            return 1
        if warm_hit == 0 or warm_miss != 0:
            print("FAIL: warm run was not served from the persisted store")
            return 1
        if not list(cache_dir.glob("simstore-*.npz")):
            print(f"FAIL: no spilled store entry under {cache_dir}")
            return 1

        cold = ClusteringResult.load(saves[0])
        warm = ClusteringResult.load(saves[1])
        if not cold.same_clustering(warm):
            print("FAIL: warm-cache clustering differs from the cold run")
            return 1
        print("cluster legs: warm run bit-identical to cold run")

        cached_csv = work / "cached.csv"
        fresh_csv = work / "fresh.csv"
        grid = ["--eps", "0.3,0.5,0.7", "--mu", "2,4"]
        out = _cli(
            "sweep", str(graph), *grid,
            "--cache-dir", str(cache_dir), "--csv", str(cached_csv),
        )
        store_line = next(
            line for line in out.splitlines() if line.startswith("store:")
        )
        print(f"sweep against warmed store — {store_line}")
        if " 0 hits" in store_line:
            print("FAIL: cached sweep saw no store hits")
            return 1
        _cli(
            "sweep", str(graph), *grid,
            "--no-cache", "--csv", str(fresh_csv),
        )
        def _clustering_columns(path: Path) -> list[str]:
            # eps,mu,clusters,cores — drop CompSims/wall_ms/reuse, which
            # measure the work a run did, not the clustering it produced
            # (caching is *supposed* to change the former).
            return [
                ",".join(line.split(",")[:4])
                for line in path.read_text().splitlines()
            ]

        cached_rows = _clustering_columns(cached_csv)
        fresh_rows = _clustering_columns(fresh_csv)
        if cached_rows != fresh_rows:
            print("FAIL: cached sweep grid differs from --no-cache grid")
            return 1
        print(f"sweep legs: {len(cached_rows) - 1} grid rows identical")

    print("warm-cache gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
