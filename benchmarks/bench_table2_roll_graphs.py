"""Table 2: synthetic ROLL graph statistics (equal |E|, varying degree)."""

from repro.bench.experiments import table2_roll_graphs


def test_table2(benchmark, save_result):
    result = benchmark.pedantic(table2_roll_graphs, rounds=1, iterations=1)
    save_result(result)
    rows = result.data["rows"]

    # Equal edge budget across the four graphs (Table 2: all ~1e9 at
    # paper scale), while average degree rises and |V| falls.
    edges = [r.num_edges for r in rows]
    assert max(edges) <= 1.3 * min(edges)
    degrees = [r.average_degree for r in rows]
    assert degrees == sorted(degrees)
    vertices = [r.num_vertices for r in rows]
    assert vertices == sorted(vertices, reverse=True)
