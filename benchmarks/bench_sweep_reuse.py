"""Sweep-reuse benchmark: one shared-overlap sweep vs independent runs.

Clusters the livejournal stand-in over a 5×5 (ε, µ) grid twice — once as
25 independent ``api.cluster`` calls and once through the
:class:`~repro.sweep.SweepEngine`, which resolves each arc's exact
overlap at most once across the grid.  The headline claim is asserted,
not just reported: the swept grid must finish at least ``MIN_SPEEDUP``×
faster end-to-end while every grid point stays *bit-identical* to its
independent run.  The breakdown lands in
``bench_results/sweep_reuse.json``.

Runs are interleaved (independent, swept, independent, ...) and the best
of ``ROUNDS`` kept per strategy, so allocator warm-up and host noise
cancel instead of biasing one side.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import api  # noqa: E402 - path setup first
from repro.core import assert_same_clustering  # noqa: E402
from repro.graph.generators import real_world_standin  # noqa: E402
from repro.sweep import SweepEngine  # noqa: E402
from repro.types import ScanParams  # noqa: E402

RESULTS_DIR = REPO_ROOT / "bench_results"
GRAPH_NAME = "livejournal"
EPS_GRID = [0.2, 0.35, 0.5, 0.65, 0.8]
MU_GRID = [2, 3, 4, 5, 6]
ALGORITHM = "ppscan"
ROUNDS = 2
MIN_SPEEDUP = 3.0


def _scale() -> float:
    return float(os.environ.get("REPRO_SCALE", 0.4))


def _run_independent(graph):
    t0 = time.perf_counter()
    results = {
        (eps, mu): api.cluster(
            graph, ScanParams(eps, mu), algorithm=ALGORITHM
        )
        for mu in MU_GRID
        for eps in EPS_GRID
    }
    return time.perf_counter() - t0, results


def _run_swept(graph):
    t0 = time.perf_counter()
    outcome = SweepEngine(graph, algorithm=ALGORITHM).run(EPS_GRID, MU_GRID)
    return time.perf_counter() - t0, outcome


def run_bench(scale: float | None = None) -> dict:
    scale = _scale() if scale is None else scale
    graph = real_world_standin(GRAPH_NAME, scale=scale, seed=7)

    best_ind = best_sweep = None
    independent = outcome = None
    for _ in range(ROUNDS):
        wall, independent = _run_independent(graph)
        best_ind = wall if best_ind is None else min(best_ind, wall)
        wall, outcome = _run_swept(graph)
        best_sweep = wall if best_sweep is None else min(best_sweep, wall)

    for (eps, mu), reference in independent.items():
        assert_same_clustering(reference, outcome.point(eps, mu).result)

    stats = outcome.stats
    data = {
        "graph": GRAPH_NAME,
        "scale": scale,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "algorithm": ALGORITHM,
        "eps_grid": EPS_GRID,
        "mu_grid": MU_GRID,
        "rounds": ROUNDS,
        "independent_seconds": best_ind,
        "swept_seconds": best_sweep,
        "speedup": best_ind / best_sweep,
        "store_hits": stats.hits,
        "store_misses": stats.misses,
        "reuse_fraction": stats.reuse_fraction,
        "points": [
            {
                "eps": p.eps,
                "mu": p.mu,
                "clusters": p.result.num_clusters,
                "wall_seconds": p.wall_seconds,
                "hits": p.hits,
                "misses": p.misses,
                "reuse_fraction": p.reuse_fraction,
            }
            for p in outcome.points
        ],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "sweep_reuse.json"
    out.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    return data


def test_sweep_reuse_speedup():
    data = run_bench()
    print(
        f"{GRAPH_NAME} standin (scale {data['scale']}): "
        f"{len(EPS_GRID) * len(MU_GRID)} grid points, "
        f"independent {data['independent_seconds']:.3f}s, "
        f"swept {data['swept_seconds']:.3f}s, "
        f"{data['speedup']:.2f}x "
        f"({data['reuse_fraction'] * 100:.1f}% overlap reuse)",
        file=sys.stderr,
    )
    assert data["reuse_fraction"] > 0.5, (
        f"sweep reused only {data['reuse_fraction']:.1%} of overlap lookups; "
        "see bench_results/sweep_reuse.json"
    )
    assert data["speedup"] >= MIN_SPEEDUP, (
        f"shared-overlap sweep only {data['speedup']:.2f}x faster than "
        f"{len(EPS_GRID) * len(MU_GRID)} independent runs "
        f"(required: {MIN_SPEEDUP}x); see bench_results/sweep_reuse.json"
    )


if __name__ == "__main__":
    test_sweep_reuse_speedup()
    print(
        json.dumps(
            json.loads((RESULTS_DIR / "sweep_reuse.json").read_text()),
            indent=1,
        )
    )
