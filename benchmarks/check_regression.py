#!/usr/bin/env python
"""Gate fresh benchmark results against committed baselines.

Usage
-----
Run the deterministic smoke workload and compare it against the
committed baseline (the CI gate)::

    PYTHONPATH=src python benchmarks/check_regression.py --smoke

Record a new baseline after an intentional change::

    PYTHONPATH=src python benchmarks/check_regression.py --smoke \
        --update-baseline

Compare two arbitrary result JSONs (e.g. a fresh ``bench_results`` file
against a saved copy)::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/smoke.json \
        --fresh bench_results/smoke.json

Exit status is non-zero when any metric regresses beyond its tolerance.
Metric kinds and default tolerances are documented in
:mod:`repro.obs.regression`: counts are gated tightly in both directions
(deterministic seeds), wall metrics are calibrated (divided by a fixed
reference workload's time on the same host) and gated one-sided with a
generous tolerance, speedups are gated from below, and calibration info
metrics are never gated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.regression import (  # noqa: E402 - path setup first
    DEFAULT_COUNT_TOL,
    DEFAULT_SPEEDUP_TOL,
    DEFAULT_WALL_TOL,
    compare_results,
    run_smoke,
)

BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"
SMOKE_BASELINE = BASELINE_DIR / "smoke.json"
RESULTS_DIR = REPO_ROOT / "bench_results"


def _load(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _dump(path: Path, data: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare benchmark results against committed baselines"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the deterministic smoke workload as the fresh result",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.15,
        help="smoke workload graph scale (must match the baseline's)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="best-of-N timing rounds"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline JSON (default: {SMOKE_BASELINE})",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="fresh result JSON (instead of running --smoke)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the fresh result over the baseline and exit 0",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="also write the smoke run's Chrome trace here",
    )
    parser.add_argument("--count-tol", type=float, default=DEFAULT_COUNT_TOL)
    parser.add_argument("--wall-tol", type=float, default=DEFAULT_WALL_TOL)
    parser.add_argument(
        "--speedup-tol", type=float, default=DEFAULT_SPEEDUP_TOL
    )
    args = parser.parse_args(argv)

    if not args.smoke and args.fresh is None:
        parser.error("need --smoke or --fresh")

    if args.smoke:
        fresh = run_smoke(
            scale=args.scale,
            rounds=args.rounds,
            trace_path=args.trace_out,
        )
        _dump(RESULTS_DIR / "smoke.json", fresh)
        print(f"smoke result written to {RESULTS_DIR / 'smoke.json'}")
        if args.trace_out is not None:
            print(f"smoke chrome trace written to {args.trace_out}")
    else:
        fresh = _load(args.fresh)

    baseline_path = args.baseline if args.baseline else SMOKE_BASELINE
    if args.update_baseline:
        _dump(baseline_path, fresh)
        print(f"baseline updated: {baseline_path}")
        return 0
    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path}; run with --update-baseline "
            "to record one",
            file=sys.stderr,
        )
        return 2

    baseline = _load(baseline_path)
    regressions = compare_results(
        baseline,
        fresh,
        count_tol=args.count_tol,
        wall_tol=args.wall_tol,
        speedup_tol=args.speedup_tol,
    )
    if regressions:
        print(f"REGRESSIONS vs {baseline_path}:")
        for reg in regressions:
            print(f"  {reg.describe()}")
        return 1
    print(f"OK: no regressions vs {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
