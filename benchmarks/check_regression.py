#!/usr/bin/env python
"""Gate fresh benchmark results against history (trend) or baselines.

Usage
-----
Run the deterministic smoke workload, gate it, and append the outcome to
the run ledger (the CI gate)::

    PYTHONPATH=src python benchmarks/check_regression.py --smoke

The gate is *trend-aware*: when the run ledger
(``bench_results/ledger.jsonl`` by default) holds at least
``--min-history`` comparable passing runs — same workload fingerprint,
same options fingerprint — every metric is gated against robust
median/MAD bands computed over that history.  With thin history the gate
falls back to the committed static baseline
(``benchmarks/baselines/smoke.json``) exactly as before.  Either way the
fresh result is appended to the ledger (with its gate verdict) so the
bands tighten over time; ``--no-append`` suppresses the append for
read-only what-if checks.

Record a new static baseline after an intentional change::

    PYTHONPATH=src python benchmarks/check_regression.py --smoke \
        --update-baseline

Compare an arbitrary result JSON against the ledger history / baseline::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --fresh bench_results/smoke.json

Exit codes (shared with ``benchmarks/run_checks.py``): 0 = gate passed,
1 = regression detected, 2 = missing baseline/usage error.

Metric kinds and default tolerances are documented in
:mod:`repro.obs.regression`: counts are gated tightly in both directions
(deterministic seeds), wall metrics are calibrated (divided by a fixed
reference workload's time on the same host) and gated one-sided, and
speedups are gated from below.  The trend gate applies the same kind
classification, with bands of ``median + nsigma * 1.4826 * MAD`` (a
relative floor guards against near-zero MAD from quiet histories).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.ledger import RunLedger, build_record  # noqa: E402
from repro.obs.regression import (  # noqa: E402 - path setup first
    DEFAULT_COUNT_TOL,
    DEFAULT_MIN_HISTORY,
    DEFAULT_NSIGMA,
    DEFAULT_SPEEDUP_TOL,
    DEFAULT_WALL_TOL,
    compare_results,
    flatten,
    run_smoke,
    trend_gate,
)

BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"
SMOKE_BASELINE = BASELINE_DIR / "smoke.json"
RESULTS_DIR = REPO_ROOT / "bench_results"
DEFAULT_LEDGER = RESULTS_DIR / "ledger.jsonl"

#: Exit codes, shared across the ``check_*.py`` gates (see run_checks.py).
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2


def _load(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _dump(path: Path, data: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")


def _smoke_record(fresh: dict, gate: dict) -> dict:
    """A ledger record for one smoke result.

    The workload block (graph/scale/eps/mu/sizes) keys comparability;
    the leg names key the options fingerprint.  ``calibration_seconds``
    is carried in the metrics (classified ``info``, never gated) so the
    record documents the host speed that normalised its wall units.
    """
    workload = dict(fresh.get("workload", {}))
    workload["bench"] = "smoke"
    legs = sorted(
        key
        for key, value in fresh.items()
        if isinstance(value, dict) and key != "workload"
    )
    metrics = {
        key: value
        for key, value in flatten(fresh).items()
        if not key.startswith("workload.")
    }
    return build_record(
        "bench",
        workload=workload,
        options={"legs": legs},
        metrics=metrics,
        extra={"gate": gate},
    )


def gate_fresh(
    fresh: dict,
    *,
    ledger: RunLedger,
    baseline_path: Path,
    min_history: int,
    nsigma: float,
    count_tol: float,
    wall_tol: float,
    speedup_tol: float,
) -> tuple[int, dict]:
    """Gate ``fresh``, trend-first with static fallback.

    Returns ``(exit_code, gate_dict)`` where the gate dict records the
    mode used, the verdict, and human-readable violation strings — the
    shape appended to the ledger alongside the metrics.
    """
    probe = _smoke_record(fresh, {})
    history = ledger.history(
        workload_key=probe["workload_key"],
        options_key=probe["options_key"],
        kind="bench",
        passed_only=True,
    )
    if len(history) >= min_history:
        violations = trend_gate(
            [record.get("metrics", {}) for record in history],
            probe["metrics"],
            min_history=min_history,
            nsigma=nsigma,
            count_tol=count_tol,
        )
        gate = {
            "mode": "trend",
            "history": len(history),
            "passed": not violations,
            "violations": [v.describe() for v in violations],
        }
        if violations:
            print(f"REGRESSIONS vs ledger history (n={len(history)}):")
            for violation in violations:
                print(f"  {violation.describe()}")
            return EXIT_REGRESSION, gate
        print(
            f"OK: within median/MAD bands of {len(history)} "
            f"comparable run(s) in {ledger.path}"
        )
        return EXIT_OK, gate

    # Thin history: static baseline fallback.
    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path} and only {len(history)} "
            f"comparable ledger run(s) (< {min_history}); run with "
            "--update-baseline to record one",
            file=sys.stderr,
        )
        return EXIT_USAGE, {
            "mode": "none",
            "history": len(history),
            "passed": False,
            "violations": ["no baseline and thin history"],
        }
    baseline = _load(baseline_path)
    regressions = compare_results(
        baseline,
        fresh,
        count_tol=count_tol,
        wall_tol=wall_tol,
        speedup_tol=speedup_tol,
    )
    gate = {
        "mode": "static",
        "history": len(history),
        "passed": not regressions,
        "violations": [r.describe() for r in regressions],
    }
    if regressions:
        print(f"REGRESSIONS vs {baseline_path}:")
        for reg in regressions:
            print(f"  {reg.describe()}")
        return EXIT_REGRESSION, gate
    print(
        f"OK: no regressions vs {baseline_path} "
        f"(ledger history {len(history)}/{min_history}, static fallback)"
    )
    return EXIT_OK, gate


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate benchmark results: ledger trend bands first, "
        "committed static baseline as fallback"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the deterministic smoke workload as the fresh result",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.15,
        help="smoke workload graph scale (must match the baseline's)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="best-of-N timing rounds"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"static baseline JSON (default: {SMOKE_BASELINE})",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="fresh result JSON (instead of running --smoke)",
    )
    parser.add_argument(
        "--ledger",
        type=Path,
        default=DEFAULT_LEDGER,
        help=f"run ledger for trend gating (default: {DEFAULT_LEDGER})",
    )
    parser.add_argument(
        "--min-history",
        type=int,
        default=DEFAULT_MIN_HISTORY,
        help="comparable ledger runs required before trend gating "
        "replaces the static baseline",
    )
    parser.add_argument(
        "--nsigma",
        type=float,
        default=DEFAULT_NSIGMA,
        help="half-width of the MAD band, in robust sigmas",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="do not append the fresh result to the ledger",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the fresh result over the static baseline and exit 0",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="also write the smoke run's Chrome trace here",
    )
    parser.add_argument("--count-tol", type=float, default=DEFAULT_COUNT_TOL)
    parser.add_argument("--wall-tol", type=float, default=DEFAULT_WALL_TOL)
    parser.add_argument(
        "--speedup-tol", type=float, default=DEFAULT_SPEEDUP_TOL
    )
    args = parser.parse_args(argv)

    if not args.smoke and args.fresh is None:
        parser.error("need --smoke or --fresh")

    if args.smoke:
        fresh = run_smoke(
            scale=args.scale,
            rounds=args.rounds,
            trace_path=args.trace_out,
        )
        _dump(RESULTS_DIR / "smoke.json", fresh)
        print(f"smoke result written to {RESULTS_DIR / 'smoke.json'}")
        if args.trace_out is not None:
            print(f"smoke chrome trace written to {args.trace_out}")
    else:
        fresh = _load(args.fresh)

    baseline_path = args.baseline if args.baseline else SMOKE_BASELINE
    if args.update_baseline:
        _dump(baseline_path, fresh)
        print(f"baseline updated: {baseline_path}")
        return EXIT_OK

    ledger = RunLedger(args.ledger)
    code, gate = gate_fresh(
        fresh,
        ledger=ledger,
        baseline_path=baseline_path,
        min_history=args.min_history,
        nsigma=args.nsigma,
        count_tol=args.count_tol,
        wall_tol=args.wall_tol,
        speedup_tol=args.speedup_tol,
    )
    if not args.no_append and gate.get("mode") != "none":
        record = ledger.append(_smoke_record(fresh, gate))
        print(
            f"ledger: appended seq={record['seq']} "
            f"gate={'pass' if gate['passed'] else 'FAIL'} "
            f"({gate['mode']}) to {ledger.path}"
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
