"""Shared scalar types: vertex roles, edge similarity states, parameters.

Roles and similarity states are stored in ``int8`` NumPy arrays across all
algorithms and execution backends, so the constants here are plain ints.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

__all__ = [
    "UNKNOWN",
    "SIM",
    "NSIM",
    "ROLE_UNKNOWN",
    "CORE",
    "NONCORE",
    "HUB",
    "OUTLIER",
    "ScanParams",
    "role_name",
    "sim_name",
]

# Edge similarity states (Definition 2.12).
UNKNOWN: int = 0
SIM: int = 1
NSIM: int = 2

# Vertex roles (Definition 2.5).
ROLE_UNKNOWN: int = 0
CORE: int = 1
NONCORE: int = 2

# Extended peripheral classification (Definition 2.10) produced by
# ClusteringResult.classify(): non-cores inside a cluster keep NONCORE;
# unclustered vertices split into hubs and outliers.
HUB: int = 3
OUTLIER: int = 4

_ROLE_NAMES = {
    ROLE_UNKNOWN: "Unknown",
    CORE: "Core",
    NONCORE: "NonCore",
    HUB: "Hub",
    OUTLIER: "Outlier",
}
_SIM_NAMES = {UNKNOWN: "Unknown", SIM: "Sim", NSIM: "NSim"}


def role_name(role: int) -> str:
    return _ROLE_NAMES[int(role)]


def sim_name(state: int) -> str:
    return _SIM_NAMES[int(state)]


@dataclass(frozen=True)
class ScanParams:
    """SCAN-family parameters: similarity threshold ε and core threshold µ.

    The paper requires ``0 < ε <= 1`` and ``µ >= 1``.  ``ε`` is snapped to
    an exact rational (denominator <= 10^6) so that every kernel, algorithm
    and backend computes bit-identical similarity predicates — the
    foundation of the cross-algorithm exactness tests.
    """

    eps: float
    mu: int

    def __post_init__(self) -> None:
        if not (0.0 < self.eps <= 1.0):
            raise ValueError(f"eps must be in (0, 1], got {self.eps}")
        if self.mu < 1 or int(self.mu) != self.mu:
            raise ValueError(f"mu must be a positive integer, got {self.mu}")
        object.__setattr__(self, "mu", int(self.mu))

    @property
    def eps_fraction(self) -> Fraction:
        # Denominator cap 1000 keeps p²·(d+1)² inside int64 for the
        # vectorized threshold math while representing every practical ε
        # (0.1 steps, percent values) exactly.
        return Fraction(self.eps).limit_denominator(1000)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"eps={self.eps}, mu={self.mu}"
