"""Unified facade over the SCAN-family algorithms.

Every algorithm in the repo registers an :class:`AlgorithmSpec` here, so
callers (the CLI included) go through exactly one entry point::

    from repro import api
    from repro.options import BackendKind, ExecutionOptions

    result = api.cluster(graph, params)                       # ppSCAN, serial
    result = api.cluster(
        graph, params,
        algorithm="scanxp",
        options=ExecutionOptions(backend=BackendKind.PROCESS, workers=8),
    )
    outcome = api.compare(graph, params)                      # all agree?

The registry makes capability differences explicit: a spec declares
whether its algorithm accepts an execution backend, a batched exec
mode, a kernel override, and whether it participates in
:func:`compare`'s agreement check.  Options an algorithm cannot honour
are reported (:meth:`AlgorithmSpec.ignored_options`) rather than
silently dropped, and the legacy stringly-typed keyword arguments
(``exec_mode="batched"``, ``backend=ProcessBackend(...)``) still work
through a :class:`DeprecationWarning` shim.

Fault tolerance rides along transparently: when ``options`` selects the
process backend, phases run under the
:class:`~repro.parallel.supervisor.Supervisor` and a failed run raises
:class:`~repro.parallel.supervisor.ExecutionFaultError` annotated with
the algorithm and stage that could not be completed.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from .cache import SimilarityStore, graph_fingerprint
from .core import (
    ClusteringResult,
    GSIndex,
    anyscan,
    assert_same_clustering,
    ppscan,
    pscan,
    scan,
    scanpp,
    scanxp,
)
from .graph import CSRGraph
from .obs.tracer import current_tracer
from .options import (
    BackendKind,
    ExecMode,
    ExecutionOptions,
    Kernel,
    coerce_enum,
)
from .types import ScanParams, role_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sweep import SweepOutcome

__all__ = [
    "AlgorithmSpec",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "cluster",
    "compare",
    "sweep",
    "ComparisonOutcome",
    "Session",
    "GraphHandle",
    "VertexView",
    "open",
]


RunnerFn = Callable[
    [CSRGraph, ScanParams, ExecutionOptions], ClusteringResult
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One clustering algorithm as seen by the facade.

    ``runner(graph, params, options)`` must return the canonical
    :class:`~repro.core.result.ClusteringResult`; capability flags
    declare which :class:`~repro.options.ExecutionOptions` fields it can
    honour so callers learn what a given choice ignores.
    """

    name: str
    display_name: str
    runner: RunnerFn
    description: str = ""
    supports_backend: bool = False
    supports_exec_mode: bool = False
    supports_kernel: bool = False
    supports_cache: bool = False
    supports_checkpoint: bool = False
    supports_sketch: bool = False
    in_compare: bool = True

    def ignored_options(self, options: ExecutionOptions) -> list[str]:
        """Names of non-default options this algorithm cannot honour."""
        ignored = []
        wants_parallel = (
            options.backend is BackendKind.PROCESS
            or options.backend_obj is not None
        )
        if wants_parallel and not self.supports_backend:
            ignored.append("backend")
        if (
            options.exec_mode is not ExecMode.SCALAR
            and not self.supports_exec_mode
        ):
            ignored.append("exec_mode")
        if (
            options.kernel is not None
            and not self.supports_kernel
            # Kernel.SKETCH is honoured through the sketch plumbing even
            # by algorithms with a fixed CompSim kernel (e.g. scanxp).
            and not (
                options.kernel is Kernel.SKETCH and self.supports_sketch
            )
        ):
            ignored.append("kernel")
        if options.cache is not None and not self.supports_cache:
            ignored.append("cache")
        if options.checkpoint is not None and not self.supports_checkpoint:
            ignored.append("checkpoint")
        if (
            options.effective_sketch() is not None
            and not self.supports_sketch
        ):
            ignored.append("sketch")
        return ignored

    def run(
        self,
        graph: CSRGraph,
        params: ScanParams,
        options: ExecutionOptions | None = None,
    ) -> ClusteringResult:
        """Execute this algorithm under ``options`` (ignoring what it must)."""
        return self.runner(graph, params, options or ExecutionOptions())


_REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec, *, replace: bool = False) -> None:
    """Add ``spec`` to the registry (``replace=True`` to override)."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"algorithm {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {known}"
        ) from None


def available_algorithms() -> Mapping[str, AlgorithmSpec]:
    """A read-only snapshot of the registry, sorted by name."""
    return dict(sorted(_REGISTRY.items()))


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------

_LEGACY_KWARGS = (
    "backend",
    "workers",
    "exec_mode",
    "kernel",
    "lanes",
    "task_threshold",
)


def _legacy_replacement(legacy: Mapping) -> str:
    """The exact ``ExecutionOptions`` spelling replacing ``legacy`` kwargs.

    Rendered into the :class:`DeprecationWarning` so a caller can paste
    the replacement verbatim: every legacy keyword maps onto one typed
    field (strings become their enum members, a pre-built backend object
    becomes ``backend_obj=...``).
    """
    parts: list[str] = []
    if "backend" in legacy:
        backend = legacy["backend"]
        if backend is None:
            parts.append("backend=BackendKind.SERIAL")
        elif isinstance(backend, (str, BackendKind)):
            parts.append(f"backend=BackendKind.{BackendKind(backend).name}")
        else:  # a pre-built ExecutionBackend instance
            parts.append(f"backend_obj=<{type(backend).__name__}>")
    if "workers" in legacy:
        parts.append(f"workers={legacy['workers']!r}")
    if "exec_mode" in legacy:
        mode = legacy["exec_mode"]
        parts.append(
            f"exec_mode=ExecMode.{ExecMode(mode).name}"
            if isinstance(mode, (str, ExecMode))
            else f"exec_mode={mode!r}"
        )
    if "kernel" in legacy:
        kernel = legacy["kernel"]
        if kernel is None:
            parts.append("kernel=None")
        elif isinstance(kernel, (str, Kernel)):
            parts.append(f"kernel=Kernel.{Kernel(kernel).name}")
        else:
            parts.append(f"kernel={kernel!r}")
    if "lanes" in legacy:
        parts.append(f"lanes={legacy['lanes']!r}")
    if "task_threshold" in legacy:
        parts.append(f"task_threshold={legacy['task_threshold']!r}")
    return "options=ExecutionOptions(" + ", ".join(parts) + ")"


def _options_from_legacy(
    options: ExecutionOptions | None,
    legacy: dict,
    *,
    caller: str = "cluster",
) -> ExecutionOptions:
    """THE legacy-keyword shim: every deprecated spelling funnels here.

    Folds the historical stringly-typed keyword arguments
    (``exec_mode="batched"``, ``backend=ProcessBackend(...)``, ...) into
    a typed :class:`~repro.options.ExecutionOptions`, emitting one
    :class:`DeprecationWarning` that contains the exact replacement
    string (see :func:`_legacy_replacement`) so call sites can migrate
    mechanically.  Unknown keywords raise :class:`TypeError` exactly as
    a plain signature would.
    """
    unknown = set(legacy) - set(_LEGACY_KWARGS)
    if unknown:
        raise TypeError(
            f"{caller}() got unexpected keyword argument(s) "
            f"{sorted(unknown)}"
        )
    if not legacy:
        return options or ExecutionOptions()
    warnings.warn(
        f"passing {sorted(legacy)} to {caller}() as keyword argument(s) "
        f"is deprecated; use {_legacy_replacement(legacy)} "
        "(from repro.options)",
        DeprecationWarning,
        stacklevel=3,
    )
    opts = options or ExecutionOptions()
    changes: dict = {}
    if "backend" in legacy:
        backend = legacy["backend"]
        if backend is None or isinstance(backend, (str, BackendKind)):
            with warnings.catch_warnings():
                # The shim's own warning already names the enum spelling.
                warnings.simplefilter("ignore", DeprecationWarning)
                changes["backend"] = coerce_enum(
                    backend, BackendKind, param="backend"
                )
        else:  # a pre-built ExecutionBackend instance
            changes["backend_obj"] = backend
    for key in ("workers", "exec_mode", "kernel", "lanes", "task_threshold"):
        if key in legacy:
            changes[key] = legacy[key]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return opts.evolve(**changes)


# ---------------------------------------------------------------------------
# Session API: bind a graph once, query it many times
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VertexView:
    """One vertex's standing at a single ``(ε, µ)`` point.

    ``role`` is the extended classification (``core`` / ``noncore`` /
    ``hub`` / ``outlier``); ``clusters`` lists every cluster id the
    vertex belongs to (non-core members can sit in several).
    """

    vertex: int
    eps: float
    mu: int
    role: str
    clusters: tuple[int, ...]

    def as_dict(self) -> dict:
        return {
            "vertex": self.vertex,
            "eps": self.eps,
            "mu": self.mu,
            "role": self.role,
            "clusters": list(self.clusters),
        }


class GraphHandle:
    """A graph bound to its index and similarity store, queried many times.

    The unit of the session API (and the object the clustering service's
    registry holds): one handle owns one :class:`~repro.graph.CSRGraph`
    plus the lazily built :class:`~repro.core.GSIndex` and the shared
    :class:`~repro.cache.SimilarityStore`, so the cost of similarity
    resolution is paid once and every later ``(ε, µ)`` query is an index
    walk (memoized per parameter point — a repeated query is a
    dictionary hit).

    ``cluster(eps, mu)`` with no ``algorithm`` serves from the index and
    is bit-identical to a direct :func:`repro.api.cluster` call;
    ``cluster(..., algorithm="scanxp")`` runs the named registered
    algorithm through the same options/store instead.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        options: ExecutionOptions | None = None,
        store: SimilarityStore | None = None,
        label: str | None = None,
    ) -> None:
        self.graph = graph
        self.options = options or ExecutionOptions()
        #: Shared overlap memo: the index construction fully populates
        #: it, and algorithm runs through this handle reuse it.  May be
        #: ``None`` (one-shot sessions keep the facade's exact historical
        #: no-cache behavior).
        self.store = store if store is not None else self.options.cache
        self.label = label
        self._fingerprint: str | None = None
        self._index: GSIndex | None = None
        self._stream = None  # StreamingEngine, created by apply_updates
        self._results: dict[tuple, ClusteringResult] = {}
        self._vertex_views: dict[tuple, tuple] = {}
        self.query_hits = 0
        self.query_misses = 0
        self.batches_applied = 0

    # -- identity -------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """BLAKE2b content fingerprint of the CSR graph (lazy, cached).

        The same hash the similarity store keys by, so service clients
        can pre-compute it with ``repro.cache.graph_fingerprint`` (or
        read it off any CLI subcommand's output).
        """
        if self._fingerprint is None:
            self._fingerprint = graph_fingerprint(self.graph)
        return self._fingerprint

    @property
    def indexed(self) -> bool:
        return self._index is not None

    def memory_bytes(self) -> int:
        """Approximate resident footprint (graph + index + memoized
        results) — the quantity the service's eviction budget meters."""
        graph = self.graph
        total = int(graph.offsets.nbytes + graph.dst.nbytes)
        if self._index is not None:
            total += self._index.memory_bytes()
        for result in self._results.values():
            total += int(result.roles.nbytes + result.core_labels.nbytes)
            total += 16 * len(result.noncore_pairs)
        return total

    # -- index ----------------------------------------------------------

    def ensure_index(self) -> GSIndex:
        """Build (once) and return the GS*-Index for this graph.

        Construction is the one similarity-resolution pass the handle
        ever pays: with a store attached it both reuses whatever
        coverage earlier runs left and commits the full exact overlap
        map back, warming every other consumer of the store.
        """
        if self._index is None:
            tracer = current_tracer()
            with tracer.span(
                "session:index", fingerprint=self.fingerprint[:12]
            ):
                self._index = GSIndex(
                    self.graph,
                    store=self.store,
                    sketch=self.options.effective_sketch(),
                )
            if tracer.enabled:
                tracer.count("session.index_built", 1)
        return self._index

    # -- queries --------------------------------------------------------

    @staticmethod
    def _params(eps, mu=None) -> ScanParams:
        if isinstance(eps, ScanParams):
            if mu is not None:
                raise TypeError("pass either ScanParams or (eps, mu)")
            return eps
        if mu is None:
            raise TypeError("cluster() needs both eps and mu")
        return ScanParams(float(eps), int(mu))

    def _point_key(self, params: ScanParams) -> tuple:
        frac = params.eps_fraction
        return (frac.numerator, frac.denominator, params.mu)

    def _query_index(self, params: ScanParams) -> ClusteringResult:
        key = self._point_key(params)
        result = self._results.get(key)
        if result is not None:
            self.query_hits += 1
            return result
        self.query_misses += 1
        tracer = current_tracer()
        if self._stream is not None:
            # A mutated handle serves from its streaming engine: the
            # engine materializes the point once and repairs it in place
            # across batches (bit-identical to a from-scratch index).
            with tracer.span(
                "session:query", eps=float(params.eps), mu=int(params.mu)
            ):
                result = self._stream.query(params)
            self._results[key] = result
            return result
        index = self.ensure_index()
        with tracer.span(
            "session:query", eps=float(params.eps), mu=int(params.mu)
        ):
            result = index.query(params)
        self._results[key] = result
        return result

    # -- streaming updates ----------------------------------------------

    def apply_updates(self, edits):
        """Apply one batch of edge edits and re-stamp the handle.

        ``edits`` is anything :meth:`repro.streaming.EditBatch.coerce`
        accepts — an :class:`~repro.streaming.EditBatch`, an iterable of
        ``('+'/'-', u, v)`` triples, or an ``{"insert": [[u, v], ...],
        "remove": [[u, v], ...]}`` mapping.  The handle's graph is
        replaced by the post-batch snapshot, its fingerprint re-stamped,
        and every previously queried (ε, µ) point is repaired in place
        (scoped re-cluster) so warm queries keep serving between
        batches.  Returns the :class:`~repro.streaming.BatchReport`.
        """
        from .streaming import StreamingEngine

        if self._stream is None:
            self._stream = StreamingEngine(
                self.graph, store=self.store, label=self.label
            )
            # Points already memoized from the static index stay valid
            # (the graph has not changed yet); materialize them in the
            # engine so the first batch repairs them instead of dropping
            # them cold.
            for result in list(self._results.values()):
                self._stream.query(result.params)
        report = self._stream.apply(edits)
        self.graph = self._stream.snapshot
        self._fingerprint = report.fingerprint
        self._index = None
        self._results = dict(self._stream.materialized())
        self._vertex_views.clear()
        self.batches_applied += 1
        return report

    def materialized_points(self) -> list[list[int]]:
        """The memoized (ε, µ) points as exact ``[num, den, mu]`` triples.

        ``eps`` identity is its snapped rational (see
        :attr:`~repro.types.ScanParams.eps_fraction`), so the triple
        re-materializes the identical point key via
        ``ScanParams(num / den, mu)`` — how the service WAL's snapshot
        records which points recovery must re-warm.
        """
        return [[num, den, mu] for (num, den, mu) in sorted(self._results)]

    def lookup(self, eps, mu=None) -> ClusteringResult | None:
        """The memoized index-served result for this point, or ``None``.

        Never computes anything — the service uses it as the warm fast
        path that stays on the event loop.
        """
        params = self._params(eps, mu)
        result = self._results.get(self._point_key(params))
        if result is not None:
            self.query_hits += 1
        return result

    def cluster(
        self,
        eps,
        mu=None,
        *,
        algorithm: str | None = None,
        options: ExecutionOptions | None = None,
    ) -> ClusteringResult:
        """Exact clustering at ``(eps, mu)`` (or a :class:`ScanParams`).

        Without ``algorithm`` the query is served from the handle's
        GS*-Index (built on first use, memoized per parameter point);
        with one, the named registered algorithm runs under the handle's
        options and shared store — the same code path the module-level
        :func:`cluster` facade uses.
        """
        params = self._params(eps, mu)
        if algorithm is None:
            return self._query_index(params)
        spec = get_algorithm(algorithm)
        opts = options if options is not None else self.options
        if (
            self.store is not None
            and spec.supports_cache
            and opts.cache is None
        ):
            opts = opts.evolve(cache=self.store)
        return spec.run(self.graph, params, opts)

    def vertex(self, v: int, eps, mu=None) -> VertexView:
        """Per-vertex lookup at ``(eps, mu)``: role + cluster memberships.

        Served from the same memoized index query as :meth:`cluster`,
        with the (costlier) hub/outlier classification memoized per
        parameter point as well — per-vertex lookups after the first are
        O(1) dictionary and array reads.
        """
        v = int(v)
        if not 0 <= v < self.graph.num_vertices:
            raise ValueError(
                f"vertex {v} out of range [0, {self.graph.num_vertices})"
            )
        params = self._params(eps, mu)
        key = self._point_key(params)
        view = self._vertex_views.get(key)
        if view is None:
            result = self._query_index(params)
            view = (result.classify(self.graph), result.membership())
            self._vertex_views[key] = view
        classified, membership = view
        return VertexView(
            vertex=v,
            eps=float(params.eps),
            mu=int(params.mu),
            role=role_name(int(classified[v])).lower(),
            clusters=tuple(sorted(membership[v])),
        )

    def sweep(
        self,
        eps_values,
        mu_values,
        *,
        algorithm: str = "ppscan",
        use_cache: bool = True,
        checkpoint=None,
    ) -> "SweepOutcome":
        """Cluster across the (ε, µ) grid, reusing the handle's store."""
        from .sweep import SweepEngine

        engine = SweepEngine(
            self.graph,
            algorithm=algorithm,
            options=self.options,
            store=self.store if use_cache else None,
            use_cache=use_cache,
            checkpoint=checkpoint,
        )
        return engine.run(eps_values, mu_values)

    def stats(self) -> dict:
        """JSON-able snapshot of this handle's state and query traffic."""
        return {
            "fingerprint": self.fingerprint,
            "label": self.label,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
            "indexed": self.indexed,
            "approximate": bool(getattr(self._index, "approximate", False)),
            "memory_bytes": self.memory_bytes(),
            "points_cached": len(self._results),
            "query_hits": self.query_hits,
            "query_misses": self.query_misses,
            "streaming": self._stream is not None,
            "batches_applied": self.batches_applied,
        }

    def close(self) -> None:
        """Drop the index, streaming engine and memoized queries (the
        store is shared and stays with the session)."""
        self._index = None
        self._stream = None
        self._results.clear()
        self._vertex_views.clear()


class Session:
    """Bind graphs once, then query them through :class:`GraphHandle`\\ s.

    The redesigned front door of :mod:`repro.api`::

        with api.Session(cache_dir="/tmp/simstore") as session:
            handle = session.open(graph)
            result = handle.cluster(0.5, 2)     # index-served
            info = handle.vertex(7, 0.5, 2)     # per-vertex lookup
            grid = handle.sweep([0.4, 0.6], [2, 5])

    One session owns one :class:`~repro.cache.SimilarityStore` (created
    on demand, disk-backed when ``cache_dir`` is given) shared by every
    handle, so index constructions and algorithm runs warm each other.
    The module-level :func:`cluster` / :func:`compare` / :func:`sweep`
    facades are thin wrappers over a one-shot session, and the
    clustering service's registry stores these same handles — CLI,
    library and server share one code path.

    A session with no store configured (``options.cache`` unset, no
    ``store``/``cache_dir``) leaves ``store=None``: one-shot wrappers
    keep the facade's historical uncached behavior exactly.
    """

    def __init__(
        self,
        *,
        options: ExecutionOptions | None = None,
        store: SimilarityStore | None = None,
        cache_dir=None,
    ) -> None:
        opts = options or ExecutionOptions()
        if store is None and cache_dir is not None:
            store = SimilarityStore(cache_dir=cache_dir)
        if store is None:
            store = opts.cache
        elif opts.cache is None:
            opts = opts.evolve(cache=store)
        self.options = opts
        self.store = store
        self._handles: dict[int, GraphHandle] = {}

    def open(self, graph: CSRGraph, *, label: str | None = None) -> GraphHandle:
        """The handle for ``graph`` (one per graph object per session)."""
        handle = self._handles.get(id(graph))
        if handle is None:
            handle = GraphHandle(
                graph, options=self.options, store=self.store, label=label
            )
            self._handles[id(graph)] = handle
        return handle

    def handles(self) -> list[GraphHandle]:
        return list(self._handles.values())

    def discard(self, handle: GraphHandle) -> None:
        """Release ``handle`` (drops its index and memoized queries).

        Looked up by identity, not by ``id(handle.graph)`` — a streamed
        handle's graph object is replaced on every
        :meth:`GraphHandle.apply_updates` batch, so the open-time key
        may no longer match.
        """
        for key, open_handle in list(self._handles.items()):
            if open_handle is handle:
                del self._handles[key]
        handle.close()

    def close(self) -> None:
        """Close every handle and spill the store's dirty entries."""
        for handle in self.handles():
            self.discard(handle)
        if self.store is not None:
            self.store.spill()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open(  # noqa: A001 - deliberate, mirrors Session.open
    graph: CSRGraph,
    *,
    options: ExecutionOptions | None = None,
    store: SimilarityStore | None = None,
    cache_dir=None,
) -> GraphHandle:
    """``api.open(graph) -> GraphHandle`` — a standalone one-graph session.

    Convenience for the common case of binding a single graph; the
    handle owns its session implicitly.
    """
    session = Session(options=options, store=store, cache_dir=cache_dir)
    return session.open(graph)


def cluster(
    graph: CSRGraph,
    params: ScanParams,
    *,
    algorithm: str = "ppscan",
    options: ExecutionOptions | None = None,
    **legacy,
) -> ClusteringResult:
    """Cluster ``graph`` at ``params`` with the named algorithm.

    The one entry point for running any registered algorithm: execution
    strategy (backend, workers, exec mode, kernel, fault tolerance,
    chaos injection) comes from ``options``; what the algorithm cannot
    honour it ignores (see :meth:`AlgorithmSpec.ignored_options` to
    check beforehand).  Legacy keyword arguments are accepted with a
    :class:`DeprecationWarning` naming the exact typed replacement.

    This facade is a thin wrapper over a one-shot :class:`Session`; to
    run many queries against one graph, hold a :class:`GraphHandle`
    instead (``api.Session().open(graph)``).
    """
    opts = _options_from_legacy(options, legacy)
    handle = Session(options=opts).open(graph)
    return handle.cluster(params, algorithm=algorithm)


@dataclass(frozen=True)
class ComparisonOutcome:
    """Result of :func:`compare`: per-algorithm results, verified equal.

    ``leg_stats`` carries per-algorithm run telemetry measured by the
    facade itself — ``wall_seconds`` (facade-side wall of that leg) and
    ``peak_rss_kb`` (the process's ``ru_maxrss`` after the leg; a
    high-water mark, so it is monotone across legs and the first leg to
    touch the peak owns it) — so the CLI's comparison table and CSV can
    report cost columns without re-deriving them from traces.
    """

    reference: str
    results: dict[str, ClusteringResult] = field(default_factory=dict)
    leg_stats: dict[str, dict] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        return self.results[self.reference].num_clusters

    @property
    def num_cores(self) -> int:
        return self.results[self.reference].num_cores


def _process_peak_rss_kb() -> int | None:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def compare(
    graph: CSRGraph,
    params: ScanParams,
    *,
    algorithms: list[str] | None = None,
    options: ExecutionOptions | None = None,
    **legacy,
) -> ComparisonOutcome:
    """Run several algorithms and assert they produce the same clustering.

    Defaults to every registered algorithm with ``in_compare=True``.
    Raises :class:`AssertionError` (from
    :func:`~repro.core.assert_same_clustering`) on the first
    disagreement — the repo-wide correctness gate.  Legacy keyword
    arguments funnel through the same deprecation shim as
    :func:`cluster`.
    """
    if legacy:
        options = _options_from_legacy(options, legacy, caller="compare")
    names = (
        list(algorithms)
        if algorithms is not None
        else [s.name for s in available_algorithms().values() if s.in_compare]
    )
    if not names:
        raise ValueError("no algorithms to compare")
    results: dict[str, ClusteringResult] = {}
    leg_stats: dict[str, dict] = {}
    reference_name = names[0]
    handle = Session(options=options).open(graph)
    for name in names:
        opts = options
        if opts is not None and opts.checkpoint is not None:
            # One manager cannot hold several algorithms' states at once;
            # give each leg its own sibling directory so a crashed compare
            # resumes every leg independently.
            opts = opts.evolve(checkpoint=opts.checkpoint.for_subrun(name))
        t0 = time.perf_counter()
        result = handle.cluster(params, algorithm=name, options=opts)
        wall = time.perf_counter() - t0
        stats: dict = {"wall_seconds": wall}
        rss = _process_peak_rss_kb()
        if rss is not None:
            stats["peak_rss_kb"] = rss
        leg_stats[name] = stats
        if results:
            assert_same_clustering(results[reference_name], result)
        results[name] = result
    return ComparisonOutcome(
        reference=reference_name, results=results, leg_stats=leg_stats
    )


def sweep(
    graph: CSRGraph,
    eps_values,
    mu_values,
    *,
    algorithm: str = "ppscan",
    options: ExecutionOptions | None = None,
    store=None,
    cache_dir=None,
    use_cache: bool = True,
    checkpoint=None,
    **legacy,
):
    """Cluster ``graph`` across the (ε, µ) grid with cross-run overlap reuse.

    Thin facade over a one-shot :class:`Session` driving
    :class:`repro.sweep.SweepEngine`; returns its
    :class:`~repro.sweep.SweepOutcome`.  Each arc's exact overlap is
    resolved at most once across the whole grid, and every grid point's
    clustering is bit-identical to an independent run.  Legacy keyword
    arguments funnel through the same deprecation shim as
    :func:`cluster`.
    """
    if legacy:
        options = _options_from_legacy(options, legacy, caller="sweep")
    if store is None and use_cache:
        # Preserve SweepEngine's defaults: reuse the options' store when
        # one is attached, else create one per sweep (disk-backed when
        # ``cache_dir`` is given).
        if options is not None and options.cache is not None:
            store = options.cache
        else:
            store = SimilarityStore(cache_dir=cache_dir)
    handle = Session(options=options, store=store).open(graph)
    return handle.sweep(
        eps_values,
        mu_values,
        algorithm=algorithm,
        use_cache=use_cache,
        checkpoint=checkpoint,
    )


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------


def _with_cache_counters(fn, graph, params, kwargs, store):
    """Run ``fn`` and mirror the store's hit/miss deltas into the ambient
    tracer as ``cache.hit`` / ``cache.miss`` counters.

    The store entries themselves keep plain-int tallies (the hot paths
    never touch the tracer); this single post-run diff is the one place
    the counters enter the telemetry, so they are never double-counted.
    """
    before = store.stats()
    result = fn(graph, params, **kwargs)
    tracer = current_tracer()
    if tracer.enabled:
        after = store.stats()
        tracer.count("cache.hit", after.hits - before.hits)
        tracer.count("cache.miss", after.misses - before.misses)
    return result


def _runner(
    fn,
    *,
    backend: bool,
    exec_mode: bool,
    kernel: bool,
    cache: bool = False,
    checkpoint: bool = False,
    sketch: bool = False,
) -> RunnerFn:
    """Adapt a core algorithm function to the ``runner`` protocol."""

    def run(
        graph: CSRGraph, params: ScanParams, options: ExecutionOptions
    ) -> ClusteringResult:
        kwargs: dict = {}
        if backend:
            built = options.make_backend(graph)
            if built is not None:
                kwargs["backend"] = built
            if options.task_threshold is not None:
                kwargs["task_threshold"] = options.task_threshold
        if exec_mode and options.exec_mode is not ExecMode.SCALAR:
            kwargs["exec_mode"] = options.exec_mode.value
        if kernel and options.kernel is not None:
            kwargs["kernel"] = options.kernel.value
        if checkpoint and options.checkpoint is not None:
            kwargs["checkpoint"] = options.checkpoint
        if sketch:
            sketch_params = options.effective_sketch()
            if sketch_params is not None:
                kwargs["sketch"] = sketch_params
        if cache and options.cache is not None:
            kwargs["store"] = options.cache
            return _with_cache_counters(
                fn, graph, params, kwargs, options.cache
            )
        return fn(graph, params, **kwargs)

    return run


def _run_gsindex(
    graph: CSRGraph, params: ScanParams, options: ExecutionOptions
) -> ClusteringResult:
    """Build (or cache-warm) a GS*-Index and answer one (ε, µ) query."""
    sketch_params = options.effective_sketch()
    if options.cache is not None:
        kwargs: dict = {"store": options.cache}
        if sketch_params is not None:
            kwargs["sketch"] = sketch_params
        return _with_cache_counters(
            lambda g, p, **kw: GSIndex(g, **kw).query(p),
            graph,
            params,
            kwargs,
            options.cache,
        )
    return GSIndex(graph, sketch=sketch_params).query(params)


def _register_builtins() -> None:
    register_algorithm(
        AlgorithmSpec(
            name="scan",
            display_name="SCAN",
            runner=_runner(
                scan, backend=False, exec_mode=False, kernel=False, cache=True
            ),
            description="the original exhaustive algorithm (baseline)",
            supports_cache=True,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="pscan",
            display_name="pSCAN",
            runner=_runner(
                pscan,
                backend=False,
                exec_mode=True,
                kernel=True,
                cache=True,
                checkpoint=True,
                sketch=True,
            ),
            description="pruning-based sequential SCAN",
            supports_exec_mode=True,
            supports_kernel=True,
            supports_cache=True,
            supports_checkpoint=True,
            supports_sketch=True,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="scanpp",
            display_name="SCAN++",
            runner=_runner(
                scanpp, backend=False, exec_mode=False, kernel=False
            ),
            description="two-hop-away sampling SCAN variant",
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="anyscan",
            display_name="anySCAN",
            runner=_runner(
                anyscan,
                backend=True,
                exec_mode=False,
                kernel=False,
                checkpoint=True,
                sketch=True,
            ),
            description="anytime block-summarizing parallel SCAN",
            supports_backend=True,
            supports_checkpoint=True,
            supports_sketch=True,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="scanxp",
            display_name="SCAN-XP",
            runner=_runner(
                scanxp,
                backend=True,
                exec_mode=True,
                kernel=False,
                cache=True,
                checkpoint=True,
                sketch=True,
            ),
            description="exhaustive vectorized parallel SCAN",
            supports_backend=True,
            supports_exec_mode=True,
            supports_cache=True,
            supports_checkpoint=True,
            supports_sketch=True,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="ppscan",
            display_name="ppSCAN",
            runner=_runner(
                ppscan,
                backend=True,
                exec_mode=True,
                kernel=True,
                cache=True,
                checkpoint=True,
                sketch=True,
            ),
            description="the paper's pruning-based parallel SCAN",
            supports_backend=True,
            supports_exec_mode=True,
            supports_kernel=True,
            supports_cache=True,
            supports_checkpoint=True,
            supports_sketch=True,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="gsindex",
            display_name="GS*-Index",
            runner=_run_gsindex,
            description="index-based query (built per graph, queried at "
            "(eps, mu))",
            supports_cache=True,
            supports_sketch=True,
            in_compare=False,
        )
    )


_register_builtins()
