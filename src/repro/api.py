"""Unified facade over the SCAN-family algorithms.

Every algorithm in the repo registers an :class:`AlgorithmSpec` here, so
callers (the CLI included) go through exactly one entry point::

    from repro import api
    from repro.options import BackendKind, ExecutionOptions

    result = api.cluster(graph, params)                       # ppSCAN, serial
    result = api.cluster(
        graph, params,
        algorithm="scanxp",
        options=ExecutionOptions(backend=BackendKind.PROCESS, workers=8),
    )
    outcome = api.compare(graph, params)                      # all agree?

The registry makes capability differences explicit: a spec declares
whether its algorithm accepts an execution backend, a batched exec
mode, a kernel override, and whether it participates in
:func:`compare`'s agreement check.  Options an algorithm cannot honour
are reported (:meth:`AlgorithmSpec.ignored_options`) rather than
silently dropped, and the legacy stringly-typed keyword arguments
(``exec_mode="batched"``, ``backend=ProcessBackend(...)``) still work
through a :class:`DeprecationWarning` shim.

Fault tolerance rides along transparently: when ``options`` selects the
process backend, phases run under the
:class:`~repro.parallel.supervisor.Supervisor` and a failed run raises
:class:`~repro.parallel.supervisor.ExecutionFaultError` annotated with
the algorithm and stage that could not be completed.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Mapping

from .core import (
    ClusteringResult,
    GSIndex,
    anyscan,
    assert_same_clustering,
    ppscan,
    pscan,
    scan,
    scanpp,
    scanxp,
)
from .graph import CSRGraph
from .obs.tracer import current_tracer
from .options import (
    BackendKind,
    ExecMode,
    ExecutionOptions,
    Kernel,
    coerce_enum,
)
from .types import ScanParams

__all__ = [
    "AlgorithmSpec",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "cluster",
    "compare",
    "sweep",
    "ComparisonOutcome",
]


RunnerFn = Callable[
    [CSRGraph, ScanParams, ExecutionOptions], ClusteringResult
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One clustering algorithm as seen by the facade.

    ``runner(graph, params, options)`` must return the canonical
    :class:`~repro.core.result.ClusteringResult`; capability flags
    declare which :class:`~repro.options.ExecutionOptions` fields it can
    honour so callers learn what a given choice ignores.
    """

    name: str
    display_name: str
    runner: RunnerFn
    description: str = ""
    supports_backend: bool = False
    supports_exec_mode: bool = False
    supports_kernel: bool = False
    supports_cache: bool = False
    supports_checkpoint: bool = False
    supports_sketch: bool = False
    in_compare: bool = True

    def ignored_options(self, options: ExecutionOptions) -> list[str]:
        """Names of non-default options this algorithm cannot honour."""
        ignored = []
        wants_parallel = (
            options.backend is BackendKind.PROCESS
            or options.backend_obj is not None
        )
        if wants_parallel and not self.supports_backend:
            ignored.append("backend")
        if (
            options.exec_mode is not ExecMode.SCALAR
            and not self.supports_exec_mode
        ):
            ignored.append("exec_mode")
        if (
            options.kernel is not None
            and not self.supports_kernel
            # Kernel.SKETCH is honoured through the sketch plumbing even
            # by algorithms with a fixed CompSim kernel (e.g. scanxp).
            and not (
                options.kernel is Kernel.SKETCH and self.supports_sketch
            )
        ):
            ignored.append("kernel")
        if options.cache is not None and not self.supports_cache:
            ignored.append("cache")
        if options.checkpoint is not None and not self.supports_checkpoint:
            ignored.append("checkpoint")
        if (
            options.effective_sketch() is not None
            and not self.supports_sketch
        ):
            ignored.append("sketch")
        return ignored

    def run(
        self,
        graph: CSRGraph,
        params: ScanParams,
        options: ExecutionOptions | None = None,
    ) -> ClusteringResult:
        """Execute this algorithm under ``options`` (ignoring what it must)."""
        return self.runner(graph, params, options or ExecutionOptions())


_REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec, *, replace: bool = False) -> None:
    """Add ``spec`` to the registry (``replace=True`` to override)."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"algorithm {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {known}"
        ) from None


def available_algorithms() -> Mapping[str, AlgorithmSpec]:
    """A read-only snapshot of the registry, sorted by name."""
    return dict(sorted(_REGISTRY.items()))


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------

_LEGACY_KWARGS = (
    "backend",
    "workers",
    "exec_mode",
    "kernel",
    "lanes",
    "task_threshold",
)


def _options_from_legacy(
    options: ExecutionOptions | None, legacy: dict
) -> ExecutionOptions:
    """Fold deprecated keyword arguments into an ``ExecutionOptions``."""
    unknown = set(legacy) - set(_LEGACY_KWARGS)
    if unknown:
        raise TypeError(
            f"cluster() got unexpected keyword argument(s) "
            f"{sorted(unknown)}"
        )
    if not legacy:
        return options or ExecutionOptions()
    warnings.warn(
        f"passing {sorted(legacy)} as keyword argument(s) is deprecated; "
        "use options=ExecutionOptions(...) (from repro.options)",
        DeprecationWarning,
        stacklevel=3,
    )
    opts = options or ExecutionOptions()
    changes: dict = {}
    if "backend" in legacy:
        backend = legacy["backend"]
        if backend is None or isinstance(backend, (str, BackendKind)):
            changes["backend"] = coerce_enum(
                backend, BackendKind, param="backend"
            )
        else:  # a pre-built ExecutionBackend instance
            changes["backend_obj"] = backend
    for key in ("workers", "exec_mode", "kernel", "lanes", "task_threshold"):
        if key in legacy:
            changes[key] = legacy[key]
    return opts.evolve(**changes)


def cluster(
    graph: CSRGraph,
    params: ScanParams,
    *,
    algorithm: str = "ppscan",
    options: ExecutionOptions | None = None,
    **legacy,
) -> ClusteringResult:
    """Cluster ``graph`` at ``params`` with the named algorithm.

    The one entry point for running any registered algorithm: execution
    strategy (backend, workers, exec mode, kernel, fault tolerance,
    chaos injection) comes from ``options``; what the algorithm cannot
    honour it ignores (see :meth:`AlgorithmSpec.ignored_options` to
    check beforehand).  Legacy keyword arguments are accepted with a
    :class:`DeprecationWarning`.
    """
    spec = get_algorithm(algorithm)
    opts = _options_from_legacy(options, legacy)
    return spec.run(graph, params, opts)


@dataclass(frozen=True)
class ComparisonOutcome:
    """Result of :func:`compare`: per-algorithm results, verified equal.

    ``leg_stats`` carries per-algorithm run telemetry measured by the
    facade itself — ``wall_seconds`` (facade-side wall of that leg) and
    ``peak_rss_kb`` (the process's ``ru_maxrss`` after the leg; a
    high-water mark, so it is monotone across legs and the first leg to
    touch the peak owns it) — so the CLI's comparison table and CSV can
    report cost columns without re-deriving them from traces.
    """

    reference: str
    results: dict[str, ClusteringResult] = field(default_factory=dict)
    leg_stats: dict[str, dict] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        return self.results[self.reference].num_clusters

    @property
    def num_cores(self) -> int:
        return self.results[self.reference].num_cores


def _process_peak_rss_kb() -> int | None:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def compare(
    graph: CSRGraph,
    params: ScanParams,
    *,
    algorithms: list[str] | None = None,
    options: ExecutionOptions | None = None,
) -> ComparisonOutcome:
    """Run several algorithms and assert they produce the same clustering.

    Defaults to every registered algorithm with ``in_compare=True``.
    Raises :class:`AssertionError` (from
    :func:`~repro.core.assert_same_clustering`) on the first
    disagreement — the repo-wide correctness gate.
    """
    names = (
        list(algorithms)
        if algorithms is not None
        else [s.name for s in available_algorithms().values() if s.in_compare]
    )
    if not names:
        raise ValueError("no algorithms to compare")
    results: dict[str, ClusteringResult] = {}
    leg_stats: dict[str, dict] = {}
    reference_name = names[0]
    for name in names:
        opts = options
        if opts is not None and opts.checkpoint is not None:
            # One manager cannot hold several algorithms' states at once;
            # give each leg its own sibling directory so a crashed compare
            # resumes every leg independently.
            opts = opts.evolve(checkpoint=opts.checkpoint.for_subrun(name))
        t0 = time.perf_counter()
        result = cluster(graph, params, algorithm=name, options=opts)
        wall = time.perf_counter() - t0
        stats: dict = {"wall_seconds": wall}
        rss = _process_peak_rss_kb()
        if rss is not None:
            stats["peak_rss_kb"] = rss
        leg_stats[name] = stats
        if results:
            assert_same_clustering(results[reference_name], result)
        results[name] = result
    return ComparisonOutcome(
        reference=reference_name, results=results, leg_stats=leg_stats
    )


def sweep(
    graph: CSRGraph,
    eps_values,
    mu_values,
    *,
    algorithm: str = "ppscan",
    options: ExecutionOptions | None = None,
    store=None,
    cache_dir=None,
    use_cache: bool = True,
    checkpoint=None,
):
    """Cluster ``graph`` across the (ε, µ) grid with cross-run overlap reuse.

    Thin facade over :class:`repro.sweep.SweepEngine` (imported lazily to
    keep the module graph acyclic); returns its
    :class:`~repro.sweep.SweepOutcome`.  Each arc's exact overlap is
    resolved at most once across the whole grid, and every grid point's
    clustering is bit-identical to an independent run.
    """
    from .sweep import SweepEngine

    engine = SweepEngine(
        graph,
        algorithm=algorithm,
        options=options,
        store=store,
        cache_dir=cache_dir,
        use_cache=use_cache,
        checkpoint=checkpoint,
    )
    return engine.run(eps_values, mu_values)


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------


def _with_cache_counters(fn, graph, params, kwargs, store):
    """Run ``fn`` and mirror the store's hit/miss deltas into the ambient
    tracer as ``cache.hit`` / ``cache.miss`` counters.

    The store entries themselves keep plain-int tallies (the hot paths
    never touch the tracer); this single post-run diff is the one place
    the counters enter the telemetry, so they are never double-counted.
    """
    before = store.stats()
    result = fn(graph, params, **kwargs)
    tracer = current_tracer()
    if tracer.enabled:
        after = store.stats()
        tracer.count("cache.hit", after.hits - before.hits)
        tracer.count("cache.miss", after.misses - before.misses)
    return result


def _runner(
    fn,
    *,
    backend: bool,
    exec_mode: bool,
    kernel: bool,
    cache: bool = False,
    checkpoint: bool = False,
    sketch: bool = False,
) -> RunnerFn:
    """Adapt a core algorithm function to the ``runner`` protocol."""

    def run(
        graph: CSRGraph, params: ScanParams, options: ExecutionOptions
    ) -> ClusteringResult:
        kwargs: dict = {}
        if backend:
            built = options.make_backend(graph)
            if built is not None:
                kwargs["backend"] = built
            if options.task_threshold is not None:
                kwargs["task_threshold"] = options.task_threshold
        if exec_mode and options.exec_mode is not ExecMode.SCALAR:
            kwargs["exec_mode"] = options.exec_mode.value
        if kernel and options.kernel is not None:
            kwargs["kernel"] = options.kernel.value
        if checkpoint and options.checkpoint is not None:
            kwargs["checkpoint"] = options.checkpoint
        if sketch:
            sketch_params = options.effective_sketch()
            if sketch_params is not None:
                kwargs["sketch"] = sketch_params
        if cache and options.cache is not None:
            kwargs["store"] = options.cache
            return _with_cache_counters(
                fn, graph, params, kwargs, options.cache
            )
        return fn(graph, params, **kwargs)

    return run


def _run_gsindex(
    graph: CSRGraph, params: ScanParams, options: ExecutionOptions
) -> ClusteringResult:
    """Build (or cache-warm) a GS*-Index and answer one (ε, µ) query."""
    sketch_params = options.effective_sketch()
    if options.cache is not None:
        kwargs: dict = {"store": options.cache}
        if sketch_params is not None:
            kwargs["sketch"] = sketch_params
        return _with_cache_counters(
            lambda g, p, **kw: GSIndex(g, **kw).query(p),
            graph,
            params,
            kwargs,
            options.cache,
        )
    return GSIndex(graph, sketch=sketch_params).query(params)


def _register_builtins() -> None:
    register_algorithm(
        AlgorithmSpec(
            name="scan",
            display_name="SCAN",
            runner=_runner(
                scan, backend=False, exec_mode=False, kernel=False, cache=True
            ),
            description="the original exhaustive algorithm (baseline)",
            supports_cache=True,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="pscan",
            display_name="pSCAN",
            runner=_runner(
                pscan,
                backend=False,
                exec_mode=True,
                kernel=True,
                cache=True,
                checkpoint=True,
                sketch=True,
            ),
            description="pruning-based sequential SCAN",
            supports_exec_mode=True,
            supports_kernel=True,
            supports_cache=True,
            supports_checkpoint=True,
            supports_sketch=True,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="scanpp",
            display_name="SCAN++",
            runner=_runner(
                scanpp, backend=False, exec_mode=False, kernel=False
            ),
            description="two-hop-away sampling SCAN variant",
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="anyscan",
            display_name="anySCAN",
            runner=_runner(
                anyscan,
                backend=True,
                exec_mode=False,
                kernel=False,
                checkpoint=True,
                sketch=True,
            ),
            description="anytime block-summarizing parallel SCAN",
            supports_backend=True,
            supports_checkpoint=True,
            supports_sketch=True,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="scanxp",
            display_name="SCAN-XP",
            runner=_runner(
                scanxp,
                backend=True,
                exec_mode=True,
                kernel=False,
                cache=True,
                checkpoint=True,
                sketch=True,
            ),
            description="exhaustive vectorized parallel SCAN",
            supports_backend=True,
            supports_exec_mode=True,
            supports_cache=True,
            supports_checkpoint=True,
            supports_sketch=True,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="ppscan",
            display_name="ppSCAN",
            runner=_runner(
                ppscan,
                backend=True,
                exec_mode=True,
                kernel=True,
                cache=True,
                checkpoint=True,
                sketch=True,
            ),
            description="the paper's pruning-based parallel SCAN",
            supports_backend=True,
            supports_exec_mode=True,
            supports_kernel=True,
            supports_cache=True,
            supports_checkpoint=True,
            supports_sketch=True,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="gsindex",
            display_name="GS*-Index",
            runner=_run_gsindex,
            description="index-based query (built per graph, queried at "
            "(eps, mu))",
            supports_cache=True,
            supports_sketch=True,
            in_compare=False,
        )
    )


_register_builtins()
