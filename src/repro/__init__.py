"""ppSCAN reproduction: parallel pruning-based graph structural clustering.

Public API quickstart::

    from repro import ScanParams, from_edges, ppscan

    graph = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    result = ppscan(graph, ScanParams(eps=0.5, mu=2))
    print(result.summary())
    print(result.clusters())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from .types import (
    CORE,
    HUB,
    NONCORE,
    NSIM,
    OUTLIER,
    ROLE_UNKNOWN,
    SIM,
    UNKNOWN,
    ScanParams,
    role_name,
    sim_name,
)
from .graph import (
    CSRGraph,
    from_adjacency,
    from_edge_array,
    from_edges,
    from_networkx,
    graph_stats,
    load_graph,
    read_edge_list,
    write_edge_list,
)
from .core import (
    ClusteringResult,
    GSIndex,
    anyscan,
    assert_same_clustering,
    brute_force_scan,
    classify_peripherals,
    fast_structural_clustering,
    ppscan,
    pscan,
    scan,
    scanpp,
    scanxp,
    verify_clustering,
)
from .similarity import SimilarityEngine
from .parallel import (
    CPU_SERVER,
    KNL_SERVER,
    ChaosError,
    ExecutionFaultError,
    Fault,
    FaultKind,
    FaultPlan,
    FaultTolerancePolicy,
    MachineSpec,
    PoisonTaskError,
    ProcessBackend,
    ProcessCrashPoint,
    QuarantineReport,
    ResumableAbort,
    RetryBudgetExhaustedError,
    SerialBackend,
)
from .checkpoint import CheckpointManager, ResumeMismatchError
from .options import BackendKind, ExecMode, ExecutionOptions, Kernel
from . import api
from .api import (
    AlgorithmSpec,
    available_algorithms,
    cluster,
    compare,
    get_algorithm,
    register_algorithm,
)

__version__ = "1.0.0"

__all__ = [
    # parameters and states
    "ScanParams",
    "UNKNOWN",
    "SIM",
    "NSIM",
    "ROLE_UNKNOWN",
    "CORE",
    "NONCORE",
    "HUB",
    "OUTLIER",
    "role_name",
    "sim_name",
    # graph substrate
    "CSRGraph",
    "from_edges",
    "from_edge_array",
    "from_adjacency",
    "from_networkx",
    "read_edge_list",
    "write_edge_list",
    "load_graph",
    "graph_stats",
    # algorithms
    "scan",
    "pscan",
    "ppscan",
    "scanxp",
    "anyscan",
    "scanpp",
    "GSIndex",
    "brute_force_scan",
    "assert_same_clustering",
    "fast_structural_clustering",
    "classify_peripherals",
    "verify_clustering",
    "ClusteringResult",
    "SimilarityEngine",
    # parallel runtime
    "MachineSpec",
    "CPU_SERVER",
    "KNL_SERVER",
    "SerialBackend",
    "ProcessBackend",
    # fault tolerance + chaos
    "FaultTolerancePolicy",
    "ExecutionFaultError",
    "RetryBudgetExhaustedError",
    "PoisonTaskError",
    "QuarantineReport",
    "ResumableAbort",
    "FaultKind",
    "Fault",
    "FaultPlan",
    "ChaosError",
    "ProcessCrashPoint",
    # checkpoint / resume
    "CheckpointManager",
    "ResumeMismatchError",
    # typed execution options
    "ExecutionOptions",
    "ExecMode",
    "BackendKind",
    "Kernel",
    # facade
    "api",
    "AlgorithmSpec",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "cluster",
    "compare",
    "__version__",
]
