"""Set-intersection kernels and operation counters."""

from .counters import OpCounter
from .merge import merge_compsim, merge_count
from .galloping import galloping_compsim, galloping_count
from .branchless import branchless_merge_count, simd_shuffle_count
from .pivot import pivot_compsim, pivot_vectorized_compsim, pivot_vectorized_count
from .bulk import BulkIntersector, common_neighbor_counts
from .batch import BatchIntersector, batched_arc_counts, concat_ranges

__all__ = [
    "OpCounter",
    "merge_count",
    "merge_compsim",
    "galloping_count",
    "galloping_compsim",
    "branchless_merge_count",
    "simd_shuffle_count",
    "pivot_compsim",
    "pivot_vectorized_compsim",
    "pivot_vectorized_count",
    "BulkIntersector",
    "common_neighbor_counts",
    "BatchIntersector",
    "batched_arc_counts",
    "concat_ranges",
]
