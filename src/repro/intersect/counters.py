"""Operation counters feeding the cost model and the paper's figures.

Every intersection kernel reports the work it did in hardware-independent
units.  These counts drive three things:

* Figure 4 (CompSim invocation counts),
* Figure 5 (vector-vs-scalar core-checking speedup via the machine model),
* the workload theorems (e.g. Theorem 3.4's ``2 * sum(d(v)^2)``).
"""

from __future__ import annotations

__all__ = ["OpCounter"]


class OpCounter:
    """Mutable tally of intersection work.

    Attributes
    ----------
    invocations:
        number of CompSim calls that actually ran a kernel.
    scalar_cmp:
        scalar element comparisons (the merge loop's unit of work; Theorem
        3.4 charges ``d(u) + d(v)`` of these per exhaustive CompSim).
    branchless_cmp:
        branch-free merge steps (Inoue-style kernels: cheaper per step —
        no mispredictions — but never early-terminating).
    vector_ops:
        vector block operations (one per load+compare+popcount block of
        Algorithm 6, regardless of lane width).
    bound_updates:
        updates of the ``du``/``dv``/``cn`` intersection-count bounds.
    early_exits:
        kernel invocations that terminated before exhausting both arrays.
    """

    __slots__ = (
        "invocations",
        "scalar_cmp",
        "branchless_cmp",
        "vector_ops",
        "bound_updates",
        "early_exits",
    )

    def __init__(self) -> None:
        self.invocations = 0
        self.scalar_cmp = 0
        self.branchless_cmp = 0
        self.vector_ops = 0
        self.bound_updates = 0
        self.early_exits = 0

    def add(self, other: "OpCounter") -> None:
        """Accumulate another counter into this one."""
        self.invocations += other.invocations
        self.scalar_cmp += other.scalar_cmp
        self.branchless_cmp += other.branchless_cmp
        self.vector_ops += other.vector_ops
        self.bound_updates += other.bound_updates
        self.early_exits += other.early_exits

    def copy(self) -> "OpCounter":
        dup = OpCounter()
        dup.add(self)
        return dup

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "OpCounter":
        """Inverse of :meth:`as_dict`; unknown keys are rejected."""
        counter = cls()
        for name, value in data.items():
            if name not in cls.__slots__:
                raise KeyError(f"unknown OpCounter field {name!r}")
            setattr(counter, name, int(value))
        return counter

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"OpCounter({parts})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OpCounter):
            return NotImplemented
        return self.as_dict() == other.as_dict()
