"""Bulk NumPy common-neighbor kernel.

A vectorized whole-graph path used by the fast execution mode and by the
reference implementations in tests: for one source vertex it marks the
neighborhood in a boolean scratch array and counts hits for many candidate
neighbors with single NumPy reductions.  It produces *exact counts* (no
early termination) and therefore also serves as the oracle that the
early-terminating kernels are property-tested against.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["BulkIntersector", "common_neighbor_counts"]


class BulkIntersector:
    """Reusable per-graph scratch space for common-neighbor counting."""

    def __init__(self, graph: CSRGraph) -> None:
        self._graph = graph
        self._mark = np.zeros(graph.num_vertices, dtype=bool)

    def counts_from(self, u: int, candidates: np.ndarray) -> np.ndarray:
        """``out[i] = |N(u) ∩ N(candidates[i])|`` for each candidate.

        ``candidates`` are vertex ids (typically a subset of ``N(u)``).
        """
        graph = self._graph
        mark = self._mark
        nbrs_u = graph.neighbors(u)
        mark[nbrs_u] = True
        out = np.empty(len(candidates), dtype=np.int64)
        offsets, dst = graph.offsets, graph.dst
        for i, v in enumerate(candidates):
            out[i] = int(np.count_nonzero(mark[dst[offsets[v] : offsets[v + 1]]]))
        mark[nbrs_u] = False
        return out


def common_neighbor_counts(graph: CSRGraph, edges: np.ndarray) -> np.ndarray:
    """``|N(u) ∩ N(v)|`` for every row ``(u, v)`` of ``edges``.

    Rows are grouped by source vertex so each neighborhood is marked once.
    """
    edges = np.asarray(edges)
    if edges.size == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(edges[:, 0], kind="stable")
    inter = BulkIntersector(graph)
    out = np.empty(edges.shape[0], dtype=np.int64)
    i = 0
    srcs = edges[order, 0]
    while i < order.size:
        j = i
        u = int(srcs[i])
        while j < order.size and int(srcs[j]) == u:
            j += 1
        idx = order[i:j]
        out[idx] = inter.counts_from(u, edges[idx, 1])
        i = j
    return out
