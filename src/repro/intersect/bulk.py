"""Bulk NumPy common-neighbor kernel.

A vectorized whole-graph path used by the fast execution mode and by the
reference implementations in tests: for one source vertex it marks the
neighborhood in a boolean scratch array and counts hits for many candidate
neighbors with single NumPy reductions.  It produces *exact counts* (no
early termination) and therefore also serves as the oracle that the
early-terminating kernels are property-tested against.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["BulkIntersector", "common_neighbor_counts"]


class BulkIntersector:
    """Reusable per-graph scratch space for common-neighbor counting."""

    def __init__(self, graph: CSRGraph) -> None:
        self._graph = graph
        self._mark = np.zeros(graph.num_vertices, dtype=bool)

    def counts_from(self, u: int, candidates: np.ndarray) -> np.ndarray:
        """``out[i] = |N(u) ∩ N(candidates[i])|`` for each candidate.

        ``candidates`` are vertex ids (typically a subset of ``N(u)``).
        All candidate neighborhoods are gathered with one vectorized
        multi-range ``arange`` and reduced per candidate with a
        cumulative-sum segmented reduction (the ``np.add.reduceat``
        pattern, robust to zero-length segments) — no Python-level loop
        over candidates.
        """
        from .batch import concat_ranges

        graph = self._graph
        candidates = np.asarray(candidates, dtype=np.int64)
        out = np.zeros(candidates.size, dtype=np.int64)
        if candidates.size == 0:
            return out
        lens = graph.degrees[candidates]
        nbrs_u = graph.neighbors(u)
        if int(lens.sum()) == 0 or nbrs_u.size == 0:
            return out
        mark = self._mark
        mark[nbrs_u] = True
        gather = concat_ranges(
            graph.offsets[candidates], graph.offsets[candidates + 1]
        )
        hits = mark[graph.dst[gather]]
        cs = np.concatenate(([0], np.cumsum(hits)))
        seg_ends = np.cumsum(lens)
        out = cs[seg_ends] - cs[seg_ends - lens]
        mark[nbrs_u] = False
        return out

    def counts_from_loop(self, u: int, candidates: np.ndarray) -> np.ndarray:
        """Reference implementation of :meth:`counts_from` (one
        ``np.count_nonzero`` per candidate) — kept as the test oracle for
        the gathered/segmented fast path."""
        graph = self._graph
        mark = self._mark
        nbrs_u = graph.neighbors(u)
        mark[nbrs_u] = True
        out = np.empty(len(candidates), dtype=np.int64)
        offsets, dst = graph.offsets, graph.dst
        for i, v in enumerate(candidates):
            out[i] = int(np.count_nonzero(mark[dst[offsets[v] : offsets[v + 1]]]))
        mark[nbrs_u] = False
        return out


def common_neighbor_counts(graph: CSRGraph, edges: np.ndarray) -> np.ndarray:
    """``|N(u) ∩ N(v)|`` for every row ``(u, v)`` of ``edges``.

    Rows are grouped by source vertex so each neighborhood is marked once.
    """
    edges = np.asarray(edges)
    if edges.size == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(edges[:, 0], kind="stable")
    inter = BulkIntersector(graph)
    out = np.empty(edges.shape[0], dtype=np.int64)
    i = 0
    srcs = edges[order, 0]
    while i < order.size:
        j = i
        u = int(srcs[i])
        while j < order.size and int(srcs[j]) == u:
            j += 1
        idx = order[i:j]
        out[idx] = inter.counts_from(u, edges[idx, 1])
        i = j
    return out
