"""Branch-free merge intersection (Inoue et al., VLDB'14 style).

§3.2.2 dismisses branch-misprediction-reduction approaches for pSCAN
because "they cannot handle early terminations": the branch-free advance
(`i += a[i] <= b[j]`, `j += b[j] <= a[i]`) removes the unpredictable
comparison branch but must always run the full merge.  We implement it so
the kernel-comparison bench can show the trade-off: cheap per-element cost
(no mispredictions — counted in ``OpCounter.branchless_cmp`` and priced
separately by the machine models) but a workload that cannot shrink with
ε.
"""

from __future__ import annotations

from typing import Sequence

from .counters import OpCounter
from .merge import as_int_list

__all__ = ["branchless_merge_count", "simd_shuffle_count"]


def branchless_merge_count(
    a: Sequence[int], b: Sequence[int], counter: OpCounter | None = None
) -> int:
    """Full ``|a ∩ b|`` with branch-free advances (no early termination)."""
    la, lb = as_int_list(a), as_int_list(b)
    na, nb = len(la), len(lb)
    i = j = matches = steps = 0
    while i < na and j < nb:
        x, y = la[i], lb[j]
        steps += 1
        # Branch-free: booleans are the advance amounts.
        matches += x == y
        i += x <= y
        j += y <= x
    if counter is not None:
        counter.invocations += 1
        counter.branchless_cmp += steps
    return matches


def simd_shuffle_count(
    a: Sequence[int],
    b: Sequence[int],
    lanes: int = 4,
    counter: OpCounter | None = None,
) -> int:
    """Block-wise all-pairs SIMD intersection (Inoue et al.'s full
    algorithm, the style SCAN-XP's Xeon Phi kernel uses).

    Each step compares one ``lanes``-element block from each side via
    ``lanes`` rotate-and-compare rounds (all-pairs needs one round per
    cyclic alignment, so ``lanes`` ``vector_ops`` are charged per block
    pair), then advances the block whose last element is smaller.
    Exactly-once counting holds because a block is only retired when its
    maximum is below the other side's current block maximum.  No early
    termination — like the branchless merge, its workload cannot shrink
    with ε.
    """
    if lanes < 2:
        raise ValueError("lanes must be >= 2")
    la, lb = as_int_list(a), as_int_list(b)
    na, nb = len(la), len(lb)
    i = j = matches = 0
    vec_ops = 0
    scalar = 0
    while i + lanes <= na and j + lanes <= nb:
        block_a = la[i : i + lanes]
        block_b = lb[j : j + lanes]
        vec_ops += lanes  # one rotate+compare round per alignment
        matches += len(set(block_a) & set(block_b))
        last_a, last_b = block_a[-1], block_b[-1]
        if last_a < last_b:
            i += lanes
        elif last_a > last_b:
            j += lanes
        else:
            i += lanes
            j += lanes
    # Scalar tails (fewer than one block on a side).
    while i < na and j < nb:
        x, y = la[i], lb[j]
        scalar += 1
        if x < y:
            i += 1
        elif x > y:
            j += 1
        else:
            matches += 1
            i += 1
            j += 1
    if counter is not None:
        counter.invocations += 1
        counter.vector_ops += vec_ops
        counter.scalar_cmp += scalar
    return matches
