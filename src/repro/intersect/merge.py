"""Merge-based sorted set intersection, with and without early termination.

``merge_count`` is the textbook full intersection SCAN uses (Theorem 3.4
charges it ``d(u) + d(v)`` comparisons).  ``merge_compsim`` adds pSCAN's
intersection-count bounds (Definition 3.9) and is the scalar kernel used by
pSCAN and by ppSCAN-NO (the no-vectorization ablation).
"""

from __future__ import annotations

from typing import Sequence

from .counters import OpCounter

__all__ = ["merge_count", "merge_compsim", "as_int_list"]


def as_int_list(values: Sequence[int]) -> list[int]:
    """Convert a sorted sequence (usually an ndarray view) to a plain list.

    Python-level merge loops over lists are several times faster than over
    ndarray elements, so every scalar kernel normalizes its inputs once.
    Inputs that are already lists are passed through without copying (the
    ppSCAN hot path pre-materializes adjacency lists).
    """
    if type(values) is list:
        return values
    tolist = getattr(values, "tolist", None)
    return tolist() if tolist is not None else list(values)


def merge_count(
    a: Sequence[int], b: Sequence[int], counter: OpCounter | None = None
) -> int:
    """Full ``|a ∩ b|`` by linear merge of two sorted arrays.

    Charges ``len(a) + len(b)`` scalar comparisons — the paper's accounting
    for exhaustive similarity computation (proof of Theorem 3.4) — so the
    workload identity ``2 * sum(d(v)^2)`` is testable exactly.

    >>> merge_count([1, 3, 5, 7], [3, 4, 5, 6])
    2
    """
    la, lb = as_int_list(a), as_int_list(b)
    i = j = matches = 0
    na, nb = len(la), len(lb)
    while i < na and j < nb:
        x, y = la[i], lb[j]
        if x < y:
            i += 1
        elif x > y:
            j += 1
        else:
            matches += 1
            i += 1
            j += 1
    if counter is not None:
        counter.invocations += 1
        counter.scalar_cmp += na + nb
    return matches


def merge_compsim(
    a: Sequence[int],
    b: Sequence[int],
    min_cn: int,
    counter: OpCounter | None = None,
) -> bool:
    """Early-terminating merge intersection (pSCAN's optimized CompSim).

    ``a``/``b`` are the sorted *open* neighborhoods of two adjacent
    vertices; the closed-neighborhood bounds of Definition 3.9 are
    initialized internally (``du = d(u) + 2``, ``dv = d(v) + 2``,
    ``cn = 2``).  Returns whether ``|Γ(u) ∩ Γ(v)| >= min_cn``.

    >>> merge_compsim([1, 3, 5], [3, 4, 5], min_cn=4)   # overlap 2+2 = 4
    True
    >>> merge_compsim([1, 3, 5], [3, 4, 5], min_cn=5)
    False
    """
    la, lb = as_int_list(a), as_int_list(b)
    na, nb = len(la), len(lb)
    du = na + 2
    dv = nb + 2
    cn = 2
    cmp_ops = 0
    bound_updates = 0
    early = False
    result: bool | None = None

    # Initial-bound exits (the similarity-predicate rules of §3.2.2).
    if cn >= min_cn:
        result, early = True, True
    elif du < min_cn or dv < min_cn:
        result, early = False, True
    else:
        i = j = 0
        while i < na and j < nb:
            x, y = la[i], lb[j]
            cmp_ops += 1
            if x < y:
                i += 1
                du -= 1
                bound_updates += 1
                if du < min_cn:
                    result, early = False, True
                    break
            elif x > y:
                j += 1
                dv -= 1
                bound_updates += 1
                if dv < min_cn:
                    result, early = False, True
                    break
            else:
                cn += 1
                i += 1
                j += 1
                bound_updates += 1
                if cn >= min_cn:
                    result, early = True, True
                    break
        if result is None:
            result = cn >= min_cn

    if counter is not None:
        counter.invocations += 1
        counter.scalar_cmp += cmp_ops
        counter.bound_updates += bound_updates
        counter.early_exits += 1 if early else 0
    return result
