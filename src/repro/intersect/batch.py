"""Batched set intersection over whole arc batches.

This is the throughput path of the batched execution mode: instead of one
interpreted kernel call per UNKNOWN arc, an array of arc ids is resolved
with a handful of NumPy primitives.  Two complementary strategies, chosen
per source-vertex group by gathered work:

*Mark-and-count* (heavy groups — one hub source, many candidate arcs):

1. *mark*: scatter ``N(u)`` into a reusable per-graph boolean scratch,
2. *gather*: concatenate the candidate neighborhoods ``N(v1)..N(vk)`` with
   one vectorized multi-range ``arange`` and read the scratch at those ids,
3. *reduce*: per-candidate hit counts via a cumulative-sum segmented
   reduction (the ``np.add.reduceat`` pattern, written with ``cumsum`` so
   zero-length segments cost nothing special).

*Keyed membership* (everything else, all light groups in ONE pass): CSR
arcs are sorted by ``(src, dst)``, so ``src * n + dst`` is a globally
sorted key array; ``x ∈ N(u)`` is one binary search for ``u * n + x``.
Gathering every candidate neighborhood and searching all the query keys
at once amortizes the interpreter overhead that a per-source mark pass
would pay thousands of times on low-degree frontiers.

Counts are *exact* (no early termination), so SIM/NSIM decisions derived
from them are bit-identical to every early-terminating scalar kernel.

Cost accounting mirrors Algorithm 6's vector model: one vector block
operation per ``lanes`` elements touched (marking ``N(u)`` plus gathering
the candidate neighborhoods for the mark path; the gathered candidate
elements for the keyed path), one CompSim invocation per resolved arc.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..obs.tracer import current_tracer
from .counters import OpCounter

__all__ = ["BatchIntersector", "concat_ranges", "batched_arc_counts"]


def _segment_sums(hits: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``hits`` for consecutive segments of ``lens``.

    ``np.add.reduceat`` when every segment is non-empty (one C call; arc
    candidates always have degree ≥ 1 because their reverse arc exists),
    falling back to the cumulative-sum difference idiom — robust to
    zero-length segments, which ``reduceat`` would mishandle.
    """
    if lens.size and bool(lens.min() > 0):
        seg_starts = lens.cumsum() - lens
        return np.add.reduceat(hits, seg_starts, dtype=np.int64)
    cs = np.concatenate(([0], hits.cumsum()))
    seg_ends = lens.cumsum()
    return cs[seg_ends] - cs[seg_ends - lens]

#: Minimum ``|N(u)| + Σ|N(v)|`` for a source group to warrant its own
#: mark-and-count pass; smaller groups batch into the keyed pass.  Tuned
#: on the bundled standins: the mark pass costs one NumPy dispatch per
#: group, the keyed pass one binary search per gathered element.
MARK_GROUP_WORK = 768


def concat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], ends[i])`` integer ranges, vectorized.

    The multi-``arange`` idiom: one global ``arange`` shifted per segment
    by the repeated segment starts.

    >>> concat_ranges(np.array([0, 7]), np.array([3, 9])).tolist()
    [0, 1, 2, 7, 8]
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    lens = ends - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_ends = lens.cumsum()
    return (
        np.arange(total, dtype=np.int64)
        + (starts - seg_ends + lens).repeat(lens)
    )


class BatchIntersector:
    """Reusable per-graph scratch for batched arc-group intersection."""

    def __init__(self, graph: CSRGraph) -> None:
        self._graph = graph
        self._mark = np.zeros(graph.num_vertices, dtype=bool)
        self._src = graph.arc_source()
        self._keys: np.ndarray | None = None

    @property
    def arc_src(self) -> np.ndarray:
        """Source vertex of every arc (cached ``graph.arc_source()``)."""
        return self._src

    @property
    def arc_keys(self) -> np.ndarray:
        """``src * n + dst`` per arc — globally sorted since CSR arcs are
        sorted lexicographically by ``(src, dst)``."""
        if self._keys is None:
            n = np.int64(self._graph.num_vertices)
            self._keys = (
                self._src.astype(np.int64) * n
                + self._graph.dst.astype(np.int64)
            )
        return self._keys

    def group_counts(
        self,
        u: int,
        candidates: np.ndarray,
        counter: OpCounter | None = None,
        lanes: int = 16,
    ) -> np.ndarray:
        """``out[i] = |N(u) ∩ N(candidates[i])|`` with one mark pass."""
        graph = self._graph
        candidates = np.asarray(candidates, dtype=np.int64)
        out = np.zeros(candidates.size, dtype=np.int64)
        if candidates.size == 0:
            return out
        lens = graph.degrees[candidates]
        total = int(lens.sum())
        nbrs_u = graph.neighbors(u)
        if total and nbrs_u.size:
            mark = self._mark
            mark[nbrs_u] = True
            gather = concat_ranges(
                graph.offsets[candidates], graph.offsets[candidates + 1]
            )
            hits = mark[graph.dst[gather]]
            out = _segment_sums(hits, lens)
            mark[nbrs_u] = False
        if counter is not None:
            counter.invocations += int(candidates.size)
            counter.vector_ops += (int(nbrs_u.size) + total + lanes - 1) // lanes
        return out

    def keyed_counts(
        self,
        arcs: np.ndarray,
        counter: OpCounter | None = None,
        lanes: int = 16,
    ) -> np.ndarray:
        """``out[i] = |N(src[a]) ∩ N(dst[a])|`` via one keyed-search pass.

        Gathers every candidate neighborhood element ``x`` of every arc
        ``(u, v)`` and tests ``x ∈ N(u)`` as a vectorized binary search
        for ``u * n + x`` in the sorted arc-key array — no per-source
        loop, so thousands of low-degree groups cost one NumPy call.
        """
        graph = self._graph
        arcs = np.asarray(arcs, dtype=np.int64)
        out = np.zeros(arcs.size, dtype=np.int64)
        if arcs.size == 0:
            return out
        cands = graph.dst[arcs]
        lens = graph.degrees[cands].astype(np.int64)
        gather = concat_ranges(graph.offsets[cands], graph.offsets[cands + 1])
        if gather.size:
            n = np.int64(graph.num_vertices)
            queries = (
                (self._src[arcs].astype(np.int64) * n).repeat(lens)
                + graph.dst[gather]
            )
            keys = self.arc_keys
            idx = np.searchsorted(keys, queries)
            np.minimum(idx, keys.size - 1, out=idx)
            hits = keys[idx] == queries
            out = _segment_sums(hits, lens)
        if counter is not None:
            counter.invocations += int(arcs.size)
            counter.vector_ops += (int(gather.size) + lanes - 1) // lanes
        return out

    def arc_counts(
        self,
        arcs: np.ndarray,
        counter: OpCounter | None = None,
        lanes: int = 16,
        mark_group_work: int = MARK_GROUP_WORK,
    ) -> np.ndarray:
        """``out[i] = |N(src[arcs[i]]) ∩ N(dst[arcs[i]])|`` for an arc batch.

        Arcs are grouped by source vertex (stable, so already-sorted
        batches — the common case, e.g. a task's arc ranges — group for
        free).  Groups with at least ``mark_group_work`` gathered elements
        each pay one mark pass; every other group is folded into a single
        keyed-membership pass.
        """
        arcs = np.asarray(arcs, dtype=np.int64)
        out = np.empty(arcs.size, dtype=np.int64)
        if arcs.size == 0:
            return out
        srcs = self._src[arcs]
        presorted = bool((np.diff(srcs) >= 0).all())
        order = (
            np.arange(arcs.size)
            if presorted
            else np.argsort(srcs, kind="stable")
        )
        arcs_sorted = arcs[order]
        srcs_sorted = srcs[order]
        bounds = np.flatnonzero(np.diff(srcs_sorted)) + 1
        starts = np.concatenate(([0], bounds, [arcs.size]))
        graph = self._graph
        cand_deg = graph.degrees[graph.dst[arcs_sorted]]
        cd_cs = np.concatenate(([0], np.cumsum(cand_deg, dtype=np.int64)))
        group_gather = cd_cs[starts[1:]] - cd_cs[starts[:-1]]
        group_u = srcs_sorted[starts[:-1]]
        heavy = (graph.degrees[group_u] + group_gather) >= mark_group_work
        out_sorted = np.empty(arcs.size, dtype=np.int64)
        light_sel = ~np.repeat(heavy, np.diff(starts))
        tracer = current_tracer()
        if tracer.enabled:
            n_heavy = int(np.count_nonzero(heavy))
            tracer.count("batch.calls", 1)
            tracer.count("batch.groups_heavy", n_heavy)
            tracer.count("batch.groups_light", int(heavy.size - n_heavy))
            tracer.count("batch.arcs", int(arcs.size))
        if light_sel.any():
            out_sorted[light_sel] = self.keyed_counts(
                arcs_sorted[light_sel], counter=counter, lanes=lanes
            )
        dst = graph.dst
        for i in np.flatnonzero(heavy).tolist():
            lo, hi = int(starts[i]), int(starts[i + 1])
            out_sorted[lo:hi] = self.group_counts(
                int(group_u[i]),
                dst[arcs_sorted[lo:hi]],
                counter=counter,
                lanes=lanes,
            )
        if presorted:
            return out_sorted
        out[order] = out_sorted
        return out


def batched_arc_counts(
    graph: CSRGraph,
    arcs: np.ndarray,
    counter: OpCounter | None = None,
    lanes: int = 16,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`BatchIntersector`."""
    return BatchIntersector(graph).arc_counts(arcs, counter=counter, lanes=lanes)
