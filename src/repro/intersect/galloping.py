"""Galloping (exponential + binary search) set intersection.

Included as the baseline the paper's §3.2.2 dismisses for pSCAN: galloping
wins when one array is much shorter, but its irregular memory access and
incompatibility with the early-termination bounds make it unsuitable for
structural-similarity computation.  We keep it for the kernel comparison
benches and to validate the other kernels against a third implementation.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from .counters import OpCounter
from .merge import as_int_list

__all__ = ["galloping_count", "galloping_compsim"]


def _gallop(arr: list[int], start: int, target: int) -> tuple[int, int]:
    """First index ``>= start`` whose value is ``>= target``.

    Returns ``(index, probes)`` where probes counts comparisons performed
    during the exponential phase plus the binary-search depth.
    """
    n = len(arr)
    step = 1
    probes = 0
    hi = start
    while hi < n and arr[hi] < target:
        probes += 1
        hi += step
        step <<= 1
    lo = max(start, hi - (step >> 1))
    hi = min(hi, n)
    idx = bisect_left(arr, target, lo, hi)
    probes += max(1, (hi - lo).bit_length())
    return idx, probes


def galloping_count(
    a: Sequence[int], b: Sequence[int], counter: OpCounter | None = None
) -> int:
    """``|a ∩ b|`` by galloping the shorter array through the longer one."""
    la, lb = as_int_list(a), as_int_list(b)
    if len(la) > len(lb):
        la, lb = lb, la
    matches = 0
    probes_total = 0
    pos = 0
    nb = len(lb)
    for x in la:
        pos, probes = _gallop(lb, pos, x)
        probes_total += probes
        if pos < nb and lb[pos] == x:
            matches += 1
            pos += 1
        probes_total += 1
    if counter is not None:
        counter.invocations += 1
        counter.scalar_cmp += probes_total
    return matches


def galloping_compsim(
    a: Sequence[int],
    b: Sequence[int],
    min_cn: int,
    counter: OpCounter | None = None,
) -> bool:
    """Galloping CompSim with the Definition-3.9 bounds.

    Galloping *can* maintain the intersection-count bounds (each skipped
    run decrements the long side's upper bound by the run length), but
    every probe is an irregular memory access — the reason §3.2.2 rejects
    it for pSCAN.  Provided so the kernel bench can quantify that verdict.
    """
    la, lb = as_int_list(a), as_int_list(b)
    # Gallop the shorter array through the longer one.
    swapped = len(la) > len(lb)
    if swapped:
        la, lb = lb, la
    na, nb = len(la), len(lb)
    d_short = na + 2
    d_long = nb + 2
    cn = 2
    probes_total = 0
    early = False
    result: bool | None = None

    if cn >= min_cn:
        result, early = True, True
    elif d_short < min_cn or d_long < min_cn:
        result, early = False, True
    else:
        pos = 0
        for idx, x in enumerate(la):
            new_pos, probes = _gallop(lb, pos, x)
            probes_total += probes + 1
            # Skipped long-side elements can no longer match.
            d_long -= new_pos - pos
            pos = new_pos
            if pos < nb and lb[pos] == x:
                cn += 1
                pos += 1
                if cn >= min_cn:
                    result, early = True, True
                    break
            else:
                d_short -= 1
            if d_short < min_cn or d_long < min_cn:
                result, early = False, True
                break
        if result is None:
            result = cn >= min_cn

    if counter is not None:
        counter.invocations += 1
        counter.scalar_cmp += probes_total
        counter.early_exits += 1 if early else 0
    return result
