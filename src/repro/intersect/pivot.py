"""Pivot-based vectorized set intersection with early termination.

This is the paper's Algorithm 6, its second headline contribution.  The
x86 intrinsics map onto our execution substrate as follows:

* ``_mm512_set1_epi32`` + ``_mm512_loadu_si512`` + ``_mm512_cmpgt`` +
  ``popcnt`` — one *vector block operation* over a window of ``lanes``
  sorted elements.  Because the window is sorted, the popcount of the
  ``< pivot`` mask equals the rank of the pivot inside the window, which we
  compute with a bounded binary search (bit-for-bit the same ``bit_cnt``).
  Each block op is charged once to ``counter.vector_ops`` — the unit the
  machine model prices as a single AVX instruction bundle.
* ``lanes=16`` models AVX512 (KNL server), ``lanes=8`` models AVX2 (CPU
  server); any power of two >= 2 is accepted for the lane-width ablation.

The control flow — step 1 (advance ``off_u`` to the pivot ``b[off_v]``),
step 2 (advance ``off_v`` to the pivot ``a[off_u]``), step 3 (match check),
boundary break-outs, and the scalar fallback for tails shorter than a
vector register — follows Algorithm 6 line by line, including the three
early-termination conditions on the ``du``/``dv``/``cn`` bounds.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from .counters import OpCounter
from .merge import as_int_list

__all__ = ["pivot_vectorized_compsim", "pivot_compsim", "pivot_vectorized_count"]


def pivot_vectorized_compsim(
    a: Sequence[int],
    b: Sequence[int],
    min_cn: int,
    lanes: int = 16,
    counter: OpCounter | None = None,
) -> bool:
    """Algorithm 6: vectorized pivot CompSim over sorted neighbor arrays.

    Returns whether ``|Γ(u) ∩ Γ(v)| >= min_cn`` for adjacent ``u``, ``v``
    with open neighborhoods ``a``, ``b``.
    """
    if lanes < 2:
        raise ValueError("lanes must be >= 2 (use pivot_compsim for scalar)")
    la, lb = as_int_list(a), as_int_list(b)
    na, nb = len(la), len(lb)
    du = na + 2
    dv = nb + 2
    cn = 2
    vec_ops = 0
    cmp_ops = 0
    bound_updates = 0

    def _finish(result: bool, early: bool) -> bool:
        if counter is not None:
            counter.invocations += 1
            counter.vector_ops += vec_ops
            counter.scalar_cmp += cmp_ops
            counter.bound_updates += bound_updates
            counter.early_exits += 1 if early else 0
        return result

    # Initial-bound exits, identical to the scalar kernel so every engine
    # agrees on which edges short-circuit.
    if cn >= min_cn:
        return _finish(True, True)
    if du < min_cn or dv < min_cn:
        return _finish(False, True)

    off_u = off_v = 0
    while True:
        # -- Step 1: advance off_u until a[off_u] >= pivot b[off_v] -------
        while off_u + lanes < na:
            pivot = lb[off_v]
            bit_cnt = bisect_left(la, pivot, off_u, off_u + lanes) - off_u
            vec_ops += 1
            off_u += bit_cnt
            du -= bit_cnt
            bound_updates += 1
            if du < min_cn:
                return _finish(False, True)
            if bit_cnt < lanes:
                break
        if off_u + lanes >= na:
            break
        # -- Step 2: advance off_v until b[off_v] >= pivot a[off_u] -------
        while off_v + lanes < nb:
            pivot = la[off_u]
            bit_cnt = bisect_left(lb, pivot, off_v, off_v + lanes) - off_v
            vec_ops += 1
            off_v += bit_cnt
            dv -= bit_cnt
            bound_updates += 1
            if dv < min_cn:
                return _finish(False, True)
            if bit_cnt < lanes:
                break
        if off_v + lanes >= nb:
            break
        # -- Step 3: match check ------------------------------------------
        cmp_ops += 1
        if la[off_u] == lb[off_v]:
            cn += 1
            off_u += 1
            off_v += 1
            bound_updates += 1
            if cn >= min_cn:
                return _finish(True, True)

    # -- Scalar tail fallback (remaining elements < one vector register) --
    while off_u < na and off_v < nb:
        x, y = la[off_u], lb[off_v]
        cmp_ops += 1
        if x < y:
            off_u += 1
            du -= 1
            bound_updates += 1
            if du < min_cn:
                return _finish(False, True)
        elif x > y:
            off_v += 1
            dv -= 1
            bound_updates += 1
            if dv < min_cn:
                return _finish(False, True)
        else:
            cn += 1
            off_u += 1
            off_v += 1
            bound_updates += 1
            if cn >= min_cn:
                return _finish(True, True)
    return _finish(cn >= min_cn, False)


def pivot_vectorized_count(
    a: Sequence[int],
    b: Sequence[int],
    lanes: int = 16,
    counter: OpCounter | None = None,
) -> int:
    """Full ``|a ∩ b|`` with the pivot-vectorized walk, *no* early exit.

    This is what SCAN-XP runs: instruction-level parallelism without the
    pruning bounds (its workload is independent of ε).
    """
    if lanes < 2:
        raise ValueError("lanes must be >= 2")
    la, lb = as_int_list(a), as_int_list(b)
    na, nb = len(la), len(lb)
    matches = 0
    vec_ops = 0
    cmp_ops = 0
    off_u = off_v = 0
    if na == 0 or nb == 0:
        if counter is not None:
            counter.invocations += 1
        return 0
    while True:
        while off_u + lanes < na:
            pivot = lb[off_v]
            bit_cnt = bisect_left(la, pivot, off_u, off_u + lanes) - off_u
            vec_ops += 1
            off_u += bit_cnt
            if bit_cnt < lanes:
                break
        if off_u + lanes >= na:
            break
        while off_v + lanes < nb:
            pivot = la[off_u]
            bit_cnt = bisect_left(lb, pivot, off_v, off_v + lanes) - off_v
            vec_ops += 1
            off_v += bit_cnt
            if bit_cnt < lanes:
                break
        if off_v + lanes >= nb:
            break
        cmp_ops += 1
        if la[off_u] == lb[off_v]:
            matches += 1
            off_u += 1
            off_v += 1
    while off_u < na and off_v < nb:
        x, y = la[off_u], lb[off_v]
        cmp_ops += 1
        if x < y:
            off_u += 1
        elif x > y:
            off_v += 1
        else:
            matches += 1
            off_u += 1
            off_v += 1
    if counter is not None:
        counter.invocations += 1
        counter.vector_ops += vec_ops
        counter.scalar_cmp += cmp_ops
    return matches


def pivot_compsim(
    a: Sequence[int],
    b: Sequence[int],
    min_cn: int,
    counter: OpCounter | None = None,
) -> bool:
    """Scalar pivot-based CompSim — Algorithm 6's fallback path only.

    Identical decisions to :func:`pivot_vectorized_compsim`; used as the
    ppSCAN-NO kernel when an explicitly pivot-flavoured (rather than
    merge-flavoured) scalar loop is wanted.
    """
    la, lb = as_int_list(a), as_int_list(b)
    na, nb = len(la), len(lb)
    du = na + 2
    dv = nb + 2
    cn = 2
    cmp_ops = 0
    bound_updates = 0
    early = False
    result: bool | None = None

    if cn >= min_cn:
        result, early = True, True
    elif du < min_cn or dv < min_cn:
        result, early = False, True
    else:
        i = j = 0
        while i < na and j < nb:
            x, y = la[i], lb[j]
            cmp_ops += 1
            if x < y:
                i += 1
                du -= 1
                bound_updates += 1
                if du < min_cn:
                    result, early = False, True
                    break
            elif x > y:
                j += 1
                dv -= 1
                bound_updates += 1
                if dv < min_cn:
                    result, early = False, True
                    break
            else:
                cn += 1
                i += 1
                j += 1
                bound_updates += 1
                if cn >= min_cn:
                    result, early = True, True
                    break
        if result is None:
            result = cn >= min_cn

    if counter is not None:
        counter.invocations += 1
        counter.scalar_cmp += cmp_ops
        counter.bound_updates += bound_updates
        counter.early_exits += 1 if early else 0
    return result
