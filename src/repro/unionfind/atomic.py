"""Wait-free-style union-find over a flat array (Anderson & Woll, STOC'91).

ppSCAN's core clustering uses a lock-free disjoint-set whose ``union`` is a
CAS loop on the parent slots.  Our execution substrate serializes the
actual memory operations (see DESIGN.md substitution table), so the CAS
always succeeds on the first attempt here — but the *algorithmic structure*
(link-by-index with retries, path halving on find) matches the wait-free
version, and every CAS attempt is tallied so the machine model can price
the contention overhead the paper observes at high thread counts (§6.3).
"""

from __future__ import annotations

import numpy as np

__all__ = ["AtomicUnionFind"]


class AtomicUnionFind:
    """Lock-free-structured disjoint sets with CAS accounting."""

    __slots__ = ("_parent", "cas_attempts", "num_finds", "num_unions")

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self.cas_attempts = 0
        self.num_finds = 0
        self.num_unions = 0

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, x: int) -> int:
        parent = self._parent
        self.num_finds += 1
        while parent[x] != x:
            # Path halving: a benign-race write in the wait-free original.
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> bool:
        """Link-by-index union via a CAS loop: the higher root is linked
        under the lower, retrying from fresh roots after a lost race."""
        parent = self._parent
        while True:
            rx, ry = self.find(x), self.find(y)
            if rx == ry:
                return False
            if rx > ry:
                rx, ry = ry, rx
            # CAS(&parent[ry], ry, rx) — always succeeds in the serialized
            # substrate, but is re-checked exactly like the wait-free code.
            self.cas_attempts += 1
            if parent[ry] == ry:
                parent[ry] = rx
                self.num_unions += 1
                return True
            x, y = rx, ry

    def same_set(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def component_labels(self) -> np.ndarray:
        return np.array([self.find(v) for v in range(len(self._parent))])

    def snapshot_parents(self) -> list[int]:
        """Copy of the parent array (for BSP shipping to worker processes)."""
        return list(self._parent)

    def snapshot(self) -> dict[str, np.ndarray]:
        """The full resumable state as checkpoint-ready arrays.

        Link-by-index needs no size array; the parent slots (including
        any path-halving compressions, which never change roots) are
        the whole state.
        """
        return {"parent": np.asarray(self._parent, dtype=np.int64)}

    def restore(self, state: dict[str, np.ndarray]) -> None:
        """Overwrite this forest with a :meth:`snapshot`."""
        parent = np.asarray(state["parent"], dtype=np.int64)
        if parent.shape != (len(self._parent),):
            raise ValueError("union-find snapshot shape mismatch")
        self._parent = parent.tolist()
