"""Disjoint-set forests: sequential and wait-free-structured variants."""

from .sequential import UnionFind
from .atomic import AtomicUnionFind

__all__ = ["UnionFind", "AtomicUnionFind"]
