"""Interleaving-level verification of the wait-free union-find design.

The paper's clustering correctness rests on Anderson & Woll's wait-free
union-find: CAS-loop unions and benign-race path halving remain correct
under *any* thread interleaving.  The serialized execution backends never
actually interleave, so this module provides the missing evidence: union
operations decomposed into primitive shared-memory steps (atomic reads,
benign writes, CAS), driven by an adversarial random scheduler.  The
concurrency test suite checks that every schedule yields exactly the
sequential partition and that every operation finishes in a bounded
number of steps (no livelock).
"""

from __future__ import annotations

from typing import Generator, Iterable

import numpy as np

__all__ = ["stepped_union", "run_interleaved", "InterleavedResult"]


def stepped_union(
    parent: list[int], x: int, y: int
) -> Generator[str, None, None]:
    """One union(x, y) as a state machine over primitive memory steps.

    Yields after every primitive shared-memory access; between yields the
    scheduler may run any other operation.  Each primitive is atomic:
    a single read, a single benign path-halving write, or one CAS.
    """
    while True:
        # find(x) with path halving, one primitive at a time.
        rx = x
        while True:
            p = parent[rx]
            yield "read"
            if p == rx:
                break
            gp = parent[p]
            yield "read"
            # Benign-race halving write (lost updates are harmless).
            parent[rx] = gp
            yield "write"
            rx = gp
        ry = y
        while True:
            p = parent[ry]
            yield "read"
            if p == ry:
                break
            gp = parent[p]
            yield "read"
            parent[ry] = gp
            yield "write"
            ry = gp

        if rx == ry:
            return
        if rx > ry:
            rx, ry = ry, rx
        # CAS(&parent[ry], ry, rx): atomic compare-and-swap primitive.
        if parent[ry] == ry:
            parent[ry] = rx
            yield "cas-success"
            return
        yield "cas-fail"
        # Lost the race: retry from the fresher roots.
        x, y = rx, ry


class InterleavedResult:
    """Outcome of one adversarial schedule."""

    def __init__(self, parent: list[int], steps: int, cas_fails: int) -> None:
        self.parent = parent
        self.steps = steps
        self.cas_fails = cas_fails

    def component_labels(self) -> list[int]:
        out = []
        for v in range(len(self.parent)):
            while self.parent[v] != v:
                v = self.parent[v]
            out.append(v)
        return out


def run_interleaved(
    n: int,
    pairs: Iterable[tuple[int, int]],
    seed: int = 0,
    max_steps: int | None = None,
) -> InterleavedResult:
    """Run all unions concurrently under a random adversarial schedule.

    Every pending operation is a live "thread"; each scheduler tick picks
    one uniformly at random and advances it by one primitive.  Raises
    ``RuntimeError`` if the step budget is exhausted (a livelock, which
    the wait-free design must never exhibit).
    """
    parent = list(range(n))
    ops = [stepped_union(parent, x, y) for x, y in pairs]
    if max_steps is None:
        max_steps = 2000 * max(len(ops), 1) * max(n, 1)
    rng = np.random.default_rng(seed)
    live = list(range(len(ops)))
    steps = 0
    cas_fails = 0
    while live:
        idx = live[int(rng.integers(len(live)))]
        steps += 1
        if steps > max_steps:
            raise RuntimeError("interleaved union-find exceeded step budget")
        try:
            event = next(ops[idx])
            if event == "cas-fail":
                cas_fails += 1
        except StopIteration:
            live.remove(idx)
    return InterleavedResult(parent, steps, cas_fails)
