"""Sequential disjoint-set forest (union by size, path halving)."""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Classic disjoint sets over ``0..n-1``.

    Used by the sequential pSCAN implementation and as the reference the
    wait-free variant is tested against.
    """

    __slots__ = ("_parent", "_size", "num_finds", "num_unions")

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._size = [1] * n
        self.num_finds = 0
        self.num_unions = 0

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, x: int) -> int:
        """Root of ``x``'s set, with path halving."""
        parent = self._parent
        self.num_finds += 1
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; returns whether a merge happened."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        self.num_unions += 1
        size = self._size
        if size[rx] < size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        size[rx] += size[ry]
        return True

    def same_set(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def component_labels(self) -> np.ndarray:
        """``labels[v]`` = root of ``v``'s set (fully compressed)."""
        return np.array([self.find(v) for v in range(len(self._parent))])

    def snapshot(self) -> dict[str, np.ndarray]:
        """The full resumable state as checkpoint-ready arrays.

        Path-halving compressions are part of the state (they only
        shorten future finds, never change roots), so a restored forest
        answers every ``find``/``union`` identically to the original.
        """
        return {
            "parent": np.asarray(self._parent, dtype=np.int64),
            "size": np.asarray(self._size, dtype=np.int64),
        }

    def restore(self, state: dict[str, np.ndarray]) -> None:
        """Overwrite this forest with a :meth:`snapshot`."""
        parent = np.asarray(state["parent"], dtype=np.int64)
        size = np.asarray(state["size"], dtype=np.int64)
        if parent.shape != (len(self._parent),) or size.shape != parent.shape:
            raise ValueError("union-find snapshot shape mismatch")
        self._parent = parent.tolist()
        self._size = size.tolist()
