"""Cross-algorithm validation and an independent brute-force oracle.

``brute_force_scan`` computes the clustering straight from the definitions
in §2 with Python sets — no shared kernels, no pruning, no CSR tricks —
so agreement with it is meaningful evidence that the optimized algorithms
are exact.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph.csr import CSRGraph
from ..similarity.threshold import min_cn_threshold
from ..types import CORE, NONCORE, ScanParams
from .result import ClusteringResult

__all__ = ["brute_force_scan", "assert_same_clustering", "validate_graph"]


def validate_graph(graph: CSRGraph) -> list[str]:
    """Structural invariant check; returns problem descriptions (empty = OK).

    Verifies what every algorithm in the repo assumes of a
    :class:`~repro.graph.csr.CSRGraph`: offsets form a monotonic prefix
    array over ``dst``, destinations are in range, adjacency lists are
    sorted and duplicate-free with no self-loops, and the arc set is
    symmetric (every ``u -> v`` has its ``v -> u`` mirror).
    """
    problems: list[str] = []
    offsets = np.asarray(graph.offsets, dtype=np.int64)
    dst = np.asarray(graph.dst, dtype=np.int64)
    n = graph.num_vertices
    if offsets.size != n + 1:
        problems.append(
            f"offsets has {offsets.size} entries, expected {n + 1}"
        )
        return problems  # nothing downstream is interpretable
    if offsets.size and int(offsets[0]) != 0:
        problems.append(f"offsets must start at 0, got {int(offsets[0])}")
    if int(offsets[-1]) != dst.size:
        problems.append(
            f"final offset {int(offsets[-1])} != arc count {dst.size}"
        )
    diffs = np.diff(offsets)
    if bool(np.any(diffs < 0)):
        bad = int(np.flatnonzero(diffs < 0)[0])
        problems.append(
            f"non-monotonic offsets at vertex {bad} "
            f"({int(offsets[bad])} -> {int(offsets[bad + 1])})"
        )
        return problems
    if dst.size:
        if int(dst.min()) < 0 or int(dst.max()) >= n:
            problems.append(
                f"destination id out of range [0, {n}): "
                f"min={int(dst.min())}, max={int(dst.max())}"
            )
            return problems
        src = np.repeat(np.arange(n, dtype=np.int64), diffs)
        loops = np.flatnonzero(src == dst)
        if loops.size:
            problems.append(
                f"{loops.size} self-loop arc(s), first at vertex "
                f"{int(src[loops[0]])}"
            )
        for u in range(n):
            row = dst[offsets[u] : offsets[u + 1]]
            if row.size > 1 and bool(np.any(np.diff(row) <= 0)):
                problems.append(
                    f"adjacency of vertex {u} is not strictly sorted "
                    "(unsorted or duplicate neighbors)"
                )
                break
        fwd = src * np.int64(n) + dst
        rev = dst * np.int64(n) + src
        if not np.array_equal(np.sort(fwd), np.sort(rev)):
            problems.append("arc set is not symmetric")
    return problems


def brute_force_scan(graph: CSRGraph, params: ScanParams) -> ClusteringResult:
    """Definition-level SCAN clustering (quadratic-ish; small graphs only)."""
    n = graph.num_vertices
    eps = params.eps_fraction
    mu = params.mu
    nbr_sets = [set(graph.neighbors(u).tolist()) for u in range(n)]
    deg = graph.degrees

    def similar(u: int, v: int) -> bool:
        overlap = len(nbr_sets[u] & nbr_sets[v]) + 2  # closed neighborhoods
        return overlap >= min_cn_threshold(eps, int(deg[u]), int(deg[v]))

    eps_nbrs: list[list[int]] = [
        [v for v in sorted(nbr_sets[u]) if similar(u, v)] for u in range(n)
    ]
    roles = np.array(
        [CORE if len(eps_nbrs[u]) >= mu else NONCORE for u in range(n)],
        dtype=np.int8,
    )

    # Clusters: connected components of cores under similar adjacency.
    labels = np.full(n, -1, dtype=np.int64)
    for seed in range(n):
        if roles[seed] != CORE or labels[seed] != -1:
            continue
        component = [seed]
        labels[seed] = seed
        queue = deque([seed])
        while queue:
            u = queue.popleft()
            for v in eps_nbrs[u]:
                if roles[v] == CORE and labels[v] == -1:
                    labels[v] = seed
                    component.append(v)
                    queue.append(v)
        cid = min(component)
        for v in component:
            labels[v] = cid

    pairs = sorted(
        {
            (int(labels[u]), v)
            for u in range(n)
            if roles[u] == CORE
            for v in eps_nbrs[u]
            if roles[v] != CORE
        }
    )
    return ClusteringResult(
        algorithm="brute-force",
        params=params,
        roles=roles,
        core_labels=labels,
        noncore_pairs=pairs,
    )


def assert_same_clustering(
    expected: ClusteringResult, actual: ClusteringResult
) -> None:
    """Raise ``AssertionError`` with a diagnostic diff on mismatch."""
    if expected.same_clustering(actual):
        return
    problems: list[str] = []
    if not np.array_equal(expected.roles, actual.roles):
        diff = np.flatnonzero(expected.roles != actual.roles)[:10]
        problems.append(f"roles differ at vertices {diff.tolist()}")
    if not np.array_equal(expected.core_labels, actual.core_labels):
        diff = np.flatnonzero(expected.core_labels != actual.core_labels)[:10]
        problems.append(f"core labels differ at vertices {diff.tolist()}")
    if not np.array_equal(expected.noncore_pairs, actual.noncore_pairs):
        exp = {tuple(r) for r in expected.noncore_pairs.tolist()}
        act = {tuple(r) for r in actual.noncore_pairs.tolist()}
        problems.append(
            f"membership pairs differ: missing={sorted(exp - act)[:10]}, "
            f"extra={sorted(act - exp)[:10]}"
        )
    raise AssertionError(
        f"{actual.algorithm} disagrees with {expected.algorithm} "
        f"({expected.params}): " + "; ".join(problems)
    )
