"""Cross-algorithm validation and an independent brute-force oracle.

``brute_force_scan`` computes the clustering straight from the definitions
in §2 with Python sets — no shared kernels, no pruning, no CSR tricks —
so agreement with it is meaningful evidence that the optimized algorithms
are exact.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph.csr import CSRGraph
from ..similarity.threshold import min_cn_threshold
from ..types import CORE, NONCORE, ScanParams
from .result import ClusteringResult

__all__ = ["brute_force_scan", "assert_same_clustering"]


def brute_force_scan(graph: CSRGraph, params: ScanParams) -> ClusteringResult:
    """Definition-level SCAN clustering (quadratic-ish; small graphs only)."""
    n = graph.num_vertices
    eps = params.eps_fraction
    mu = params.mu
    nbr_sets = [set(graph.neighbors(u).tolist()) for u in range(n)]
    deg = graph.degrees

    def similar(u: int, v: int) -> bool:
        overlap = len(nbr_sets[u] & nbr_sets[v]) + 2  # closed neighborhoods
        return overlap >= min_cn_threshold(eps, int(deg[u]), int(deg[v]))

    eps_nbrs: list[list[int]] = [
        [v for v in sorted(nbr_sets[u]) if similar(u, v)] for u in range(n)
    ]
    roles = np.array(
        [CORE if len(eps_nbrs[u]) >= mu else NONCORE for u in range(n)],
        dtype=np.int8,
    )

    # Clusters: connected components of cores under similar adjacency.
    labels = np.full(n, -1, dtype=np.int64)
    for seed in range(n):
        if roles[seed] != CORE or labels[seed] != -1:
            continue
        component = [seed]
        labels[seed] = seed
        queue = deque([seed])
        while queue:
            u = queue.popleft()
            for v in eps_nbrs[u]:
                if roles[v] == CORE and labels[v] == -1:
                    labels[v] = seed
                    component.append(v)
                    queue.append(v)
        cid = min(component)
        for v in component:
            labels[v] = cid

    pairs = sorted(
        {
            (int(labels[u]), v)
            for u in range(n)
            if roles[u] == CORE
            for v in eps_nbrs[u]
            if roles[v] != CORE
        }
    )
    return ClusteringResult(
        algorithm="brute-force",
        params=params,
        roles=roles,
        core_labels=labels,
        noncore_pairs=pairs,
    )


def assert_same_clustering(
    expected: ClusteringResult, actual: ClusteringResult
) -> None:
    """Raise ``AssertionError`` with a diagnostic diff on mismatch."""
    if expected.same_clustering(actual):
        return
    problems: list[str] = []
    if not np.array_equal(expected.roles, actual.roles):
        diff = np.flatnonzero(expected.roles != actual.roles)[:10]
        problems.append(f"roles differ at vertices {diff.tolist()}")
    if not np.array_equal(expected.core_labels, actual.core_labels):
        diff = np.flatnonzero(expected.core_labels != actual.core_labels)[:10]
        problems.append(f"core labels differ at vertices {diff.tolist()}")
    if not np.array_equal(expected.noncore_pairs, actual.noncore_pairs):
        exp = {tuple(r) for r in expected.noncore_pairs.tolist()}
        act = {tuple(r) for r in actual.noncore_pairs.tolist()}
        problems.append(
            f"membership pairs differ: missing={sorted(exp - act)[:10]}, "
            f"extra={sorted(act - exp)[:10]}"
        )
    raise AssertionError(
        f"{actual.algorithm} disagrees with {expected.algorithm} "
        f"({expected.params}): " + "; ".join(problems)
    )
