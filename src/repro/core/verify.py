"""Independent post-hoc verification of a clustering against §2's definitions.

``verify_clustering`` checks a :class:`ClusteringResult` — produced by any
algorithm, loaded from disk, or handed over by another system — directly
against the paper's definitions using only set arithmetic:

* role correctness (Definitions 2.3–2.5),
* cluster-id canonicalization (Definition 3.7: min core id per cluster),
* core-cluster connectivity and maximality (Definition 2.9),
* non-core membership = direct structural reachability from a core
  (Definition 2.6),
* disjointness of core clusters (Lemma 3.5).

It is the library-grade version of the checks the algorithm test-suite
runs, intended for downstream users integrating their own variants.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph.csr import CSRGraph
from ..similarity.threshold import min_cn_threshold
from ..types import CORE, ScanParams
from .result import ClusteringResult

__all__ = ["verify_clustering", "ClusteringVerificationError"]


class ClusteringVerificationError(AssertionError):
    """Raised when a clustering violates the SCAN definitions."""


def verify_clustering(
    graph: CSRGraph, result: ClusteringResult, params: ScanParams | None = None
) -> None:
    """Raise :class:`ClusteringVerificationError` unless ``result`` is the
    exact SCAN clustering of ``graph`` for ``params`` (defaults to
    ``result.params``)."""
    if params is None:
        params = result.params
    n = graph.num_vertices
    if result.num_vertices != n:
        raise ClusteringVerificationError(
            f"result covers {result.num_vertices} vertices, graph has {n}"
        )
    eps = params.eps_fraction
    mu = params.mu
    nbr_sets = [set(graph.neighbors(u).tolist()) for u in range(n)]
    deg = graph.degrees

    def similar(u: int, v: int) -> bool:
        overlap = len(nbr_sets[u] & nbr_sets[v]) + 2
        return overlap >= min_cn_threshold(eps, int(deg[u]), int(deg[v]))

    # -- roles (Definitions 2.3-2.5) -----------------------------------
    for u in range(n):
        sd = sum(1 for v in nbr_sets[u] if similar(u, v))
        expected_core = sd >= mu
        if (result.roles[u] == CORE) != expected_core:
            raise ClusteringVerificationError(
                f"vertex {u}: role {'Core' if expected_core else 'NonCore'} "
                f"expected, got the opposite (|N_eps|-1 = {sd}, mu = {mu})"
            )

    cores = [u for u in range(n) if result.roles[u] == CORE]
    core_set = set(cores)
    labels = result.core_labels

    # -- label hygiene + Lemma 3.5 ---------------------------------------
    for u in range(n):
        if u in core_set:
            if labels[u] < 0:
                raise ClusteringVerificationError(f"core {u} has no cluster")
        elif labels[u] != -1:
            raise ClusteringVerificationError(
                f"non-core {u} carries a core label {labels[u]}"
            )

    # -- connectivity & maximality (Definition 2.9) ---------------------
    # BFS over similar core-core edges yields the ground-truth partition.
    truth = np.full(n, -1, dtype=np.int64)
    for seed in cores:
        if truth[seed] != -1:
            continue
        component = [seed]
        truth[seed] = seed
        queue = deque([seed])
        while queue:
            u = queue.popleft()
            for v in nbr_sets[u]:
                if v in core_set and truth[v] == -1 and similar(u, v):
                    truth[v] = seed
                    component.append(v)
                    queue.append(v)
        cid = min(component)
        for v in component:
            truth[v] = cid
    for u in cores:
        if labels[u] != truth[u]:
            raise ClusteringVerificationError(
                f"core {u}: cluster {labels[u]} violates "
                f"connectivity/maximality (expected {truth[u]})"
            )

    # -- non-core membership (Definition 2.6) ----------------------------
    member = result.membership()
    for v in range(n):
        if v in core_set:
            if member[v] != {int(labels[v])}:
                raise ClusteringVerificationError(
                    f"core {v} membership {member[v]} != {{{labels[v]}}}"
                )
            continue
        expected = {
            int(labels[u])
            for u in nbr_sets[v]
            if u in core_set and similar(u, v)
        }
        if member[v] != expected:
            raise ClusteringVerificationError(
                f"non-core {v}: memberships {sorted(member[v])} != "
                f"expected {sorted(expected)}"
            )
