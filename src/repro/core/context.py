"""Shared mutable run state for the SCAN-family algorithms.

Materializes the graph's CSR arrays, the reverse-arc index (pSCAN's
similarity-reuse target, computed for the whole graph in one pass instead
of per-edge binary searches), the per-arc similarity thresholds, and the
mutable ``sim`` / ``role`` arrays.

The scalar algorithms consume plain Python lists — the fastest
representation for the data-dependent early-terminating inner loops on
this substrate (see the optimization guide: ndarray scalar access in tight
loops is several times slower than list access).  The batched execution
mode works on the NumPy forms exclusively, so every list view is a
``cached_property``: a batched run never pays the O(n + m) ``tolist``
materialization cost.
"""

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from ..graph.csr import CSRGraph
from ..similarity import SimilarityEngine, min_cn_arcs
from ..types import ROLE_UNKNOWN, UNKNOWN, ScanParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import SimilarityStore

__all__ = ["RunContext", "reverse_arc_index"]


def reverse_arc_index(graph: CSRGraph) -> np.ndarray:
    """``rev[i]`` = arc index of the reverse of arc ``i``.

    Arcs in natural order are sorted by ``(src, dst)``, so the combined
    key ``src * n + dst`` is a sorted array and the position of arc
    ``(dst, src)`` — which always exists in an undirected graph — is one
    vectorized binary search (cheaper than the lexsort this replaces).
    """
    src = graph.arc_source().astype(np.int64)
    dst = graph.dst.astype(np.int64)
    n = np.int64(graph.num_vertices)
    return np.searchsorted(src * n + dst, dst * n + src).astype(np.int64)


class RunContext:
    """Per-run working state shared by the phases of one algorithm."""

    def __init__(
        self,
        graph: CSRGraph,
        params: ScanParams,
        kernel: str = "vectorized",
        lanes: int = 16,
        store: "SimilarityStore | None" = None,
        sketch=None,
    ) -> None:
        self.graph = graph
        self.params = params
        self.engine = SimilarityEngine(
            graph, params, kernel=kernel, lanes=lanes, store=store,
            sketch=sketch,
        )

        self.n = graph.num_vertices
        self.num_arcs = graph.num_arcs
        #: NumPy forms, shared by both execution modes.
        self.rev_np: np.ndarray = reverse_arc_index(graph)
        self.src_np: np.ndarray = graph.arc_source()
        self.mcn_np: np.ndarray = min_cn_arcs(graph, params.eps_fraction)

    # -- lazily-materialized list views (scalar-mode hot-path state) --------

    @cached_property
    def off(self) -> list[int]:
        return self.graph.offsets.tolist()

    @cached_property
    def dst(self) -> list[int]:
        return self.graph.dst.tolist()

    @cached_property
    def deg(self) -> list[int]:
        return self.graph.degrees.tolist()

    @cached_property
    def adj(self) -> list[list[int]]:
        """Per-vertex adjacency lists (list slices; zero-copy kernel input)."""
        off = self.off
        dst = self.dst
        return [dst[off[u] : off[u + 1]] for u in range(self.n)]

    @cached_property
    def rev(self) -> list[int]:
        return self.rev_np.tolist()

    @cached_property
    def mcn(self) -> list[int]:
        return self.mcn_np.tolist()

    @cached_property
    def sim(self) -> list[int]:
        """Per-arc similarity states (Definition 2.12)."""
        return [UNKNOWN] * self.num_arcs

    @cached_property
    def roles(self) -> list[int]:
        """Per-vertex roles (Definition 2.5)."""
        return [ROLE_UNKNOWN] * self.n

    # -- convenience --------------------------------------------------------

    @property
    def mu(self) -> int:
        return self.params.mu

    def compsim_arc(self, u: int, arc: int) -> bool:
        """Run the configured CompSim kernel for arc ``(u, dst[arc])``."""
        return self.engine.kernel(
            self.adj[u], self.adj[self.dst[arc]], self.mcn[arc]
        )

    def roles_array(self) -> np.ndarray:
        return np.array(self.roles, dtype=np.int8)

    def sim_array(self) -> np.ndarray:
        return np.array(self.sim, dtype=np.int8)
