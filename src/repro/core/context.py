"""Shared mutable run state for the SCAN-family algorithms.

Materializes the graph's CSR arrays, the reverse-arc index (pSCAN's
similarity-reuse target, computed for the whole graph in one pass instead
of per-edge binary searches), the per-arc similarity thresholds, and the
mutable ``sim`` / ``role`` arrays, all as plain Python lists — the fastest
representation for the data-dependent early-terminating inner loops on
this substrate (see the optimization guide: ndarray scalar access in tight
loops is several times slower than list access).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..similarity import SimilarityEngine, min_cn_arcs
from ..types import ROLE_UNKNOWN, UNKNOWN, ScanParams

__all__ = ["RunContext", "reverse_arc_index"]


def reverse_arc_index(graph: CSRGraph) -> np.ndarray:
    """``rev[i]`` = arc index of the reverse of arc ``i``.

    Arcs in natural order are sorted by ``(src, dst)``; re-sorting them by
    ``(dst, src)`` enumerates exactly the reverse arcs in natural order,
    so one lexsort yields the whole mapping (each pair is unique in a
    simple graph).
    """
    src = graph.arc_source()
    order = np.lexsort((src, graph.dst))
    rev = np.empty(graph.num_arcs, dtype=np.int64)
    rev[order] = np.arange(graph.num_arcs, dtype=np.int64)
    return rev


class RunContext:
    """Per-run working state shared by the phases of one algorithm."""

    def __init__(
        self,
        graph: CSRGraph,
        params: ScanParams,
        kernel: str = "vectorized",
        lanes: int = 16,
    ) -> None:
        self.graph = graph
        self.params = params
        self.engine = SimilarityEngine(graph, params, kernel=kernel, lanes=lanes)

        self.n = graph.num_vertices
        self.num_arcs = graph.num_arcs
        self.off: list[int] = graph.offsets.tolist()
        self.dst: list[int] = graph.dst.tolist()
        self.deg: list[int] = graph.degrees.tolist()
        off = self.off
        dst = self.dst
        #: per-vertex adjacency lists (list slices; zero-copy kernel input).
        self.adj: list[list[int]] = [
            dst[off[u] : off[u + 1]] for u in range(self.n)
        ]
        self.rev: list[int] = reverse_arc_index(graph).tolist()
        self.mcn_np: np.ndarray = min_cn_arcs(graph, params.eps_fraction)
        self.mcn: list[int] = self.mcn_np.tolist()
        #: per-arc similarity states (Definition 2.12).
        self.sim: list[int] = [UNKNOWN] * self.num_arcs
        #: per-vertex roles (Definition 2.5).
        self.roles: list[int] = [ROLE_UNKNOWN] * self.n

    # -- convenience --------------------------------------------------------

    @property
    def mu(self) -> int:
        return self.params.mu

    def compsim_arc(self, u: int, arc: int) -> bool:
        """Run the configured CompSim kernel for arc ``(u, dst[arc])``."""
        return self.engine.kernel(
            self.adj[u], self.adj[self.dst[arc]], self.mcn[arc]
        )

    def roles_array(self) -> np.ndarray:
        return np.array(self.roles, dtype=np.int8)

    def sim_array(self) -> np.ndarray:
        return np.array(self.sim, dtype=np.int8)
