"""Hub/outlier classification as its own parallel phase.

The paper (§2, after Definition 2.10) notes that hubs and outliers "can be
found by exploring all the neighbors of vertices not in any cluster with a
time complexity O(|E| + |V|)".  :meth:`ClusteringResult.classify` does the
sequential version; this module provides the task-parallel phase in
ppSCAN's execution model — vertex-range tasks through an execution
backend, with per-task work records — so the post-processing step can be
costed alongside the clustering stages.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.csr import CSRGraph
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..parallel.backend import ExecutionBackend, SerialBackend
from ..parallel.scheduler import degree_based_tasks
from ..types import CORE, HUB, NONCORE, OUTLIER
from .ppscan import auto_task_threshold
from .result import ClusteringResult

__all__ = ["classify_peripherals"]


def classify_peripherals(
    graph: CSRGraph,
    result: ClusteringResult,
    backend: ExecutionBackend | None = None,
    task_threshold: int | None = None,
) -> tuple[np.ndarray, RunRecord]:
    """Parallel hub/outlier classification (Definition 2.10).

    Returns ``(classification, record)`` where ``classification`` matches
    :meth:`ClusteringResult.classify` exactly: CORE, cluster-member
    NONCORE, HUB, or OUTLIER per vertex.
    """
    t0 = time.perf_counter()
    if graph.num_vertices != result.num_vertices:
        raise ValueError("graph does not match this result")
    backend = backend if backend is not None else SerialBackend()
    threshold = (
        task_threshold
        if task_threshold is not None
        else auto_task_threshold(graph.num_arcs)
    )
    n = graph.num_vertices
    member = result.membership()
    roles = result.roles
    off = graph.offsets.tolist()
    dst = graph.dst.tolist()
    deg = graph.degrees.tolist()

    out = np.empty(n, dtype=np.int8)
    unclustered = [
        roles[v] != CORE and not member[v] for v in range(n)
    ]

    def run_task(beg: int, end: int):
        writes: list[tuple[int, int]] = []
        arcs = 0
        for v in range(beg, end):
            if roles[v] == CORE:
                writes.append((v, CORE))
                continue
            if member[v]:
                writes.append((v, NONCORE))
                continue
            # Unclustered: hub iff two distinct neighbors can supply two
            # distinct clusters.
            first: set[int] | None = None
            label = OUTLIER
            for arc in range(off[v], off[v + 1]):
                arcs += 1
                sets = member[dst[arc]]
                if not sets:
                    continue
                if first is None:
                    first = sets
                    continue
                if len(first) > 1 or len(sets) > 1 or first != sets:
                    label = HUB
                    break
            writes.append((v, label))
        return writes, TaskCost(arcs=arcs)

    def commit(writes) -> None:
        for v, label in writes:
            out[v] = label

    # Degree-based tasks over the whole vertex set; vertices that are
    # trivially classified contribute no degree (the needs mask mirrors
    # Algorithm 5's role check).
    tasks = degree_based_tasks(deg, unclustered, threshold)
    records = backend.run_phase(tasks, run_task, commit)
    record = RunRecord(
        algorithm="hub/outlier classification",
        stages=[
            StageRecord(
                "peripheral classification",
                records,
                time.perf_counter() - t0,
            )
        ],
        wall_seconds=time.perf_counter() - t0,
    )
    return out, record
