"""The original SCAN algorithm (Xu et al., KDD'07) — paper Algorithm 1.

Faithful to the cost semantics of Theorem 3.4: ``CheckCore(u)`` computes a
*full* merge intersection for every neighbor of ``u`` and caches the
result only on ``u``'s own arcs, so every undirected edge is intersected
exactly twice (once per endpoint) and the total similarity workload is
``2 * sum(d(v)^2)`` scalar comparisons.

Clusters are grown from unclustered cores by BFS (``ExpandCluster``);
non-core border vertices join every cluster that reaches them via a
similar core edge, matching the membership-pair semantics of the other
algorithms.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from ..graph.csr import CSRGraph
from ..intersect import merge_count
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..types import CORE, NONCORE, ROLE_UNKNOWN, SIM, NSIM, UNKNOWN, ScanParams
from .context import RunContext
from .result import ClusteringResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import SimilarityStore

__all__ = ["scan"]


def scan(
    graph: CSRGraph,
    params: ScanParams,
    store: "SimilarityStore | None" = None,
) -> ClusteringResult:
    """Run original SCAN; returns the canonical clustering result.

    The attached :class:`RunRecord` has two stages — ``similarity
    evaluation`` (all CompSim kernel work) and ``other computation`` (BFS
    traversal) — the Figure-1 breakdown buckets (SCAN has no workload
    -reduction machinery, so that bucket is absent).

    ``store`` attaches a :class:`~repro.cache.SimilarityStore`; covered
    arcs skip the merge intersection (and fresh overlaps are recorded,
    mirrored — so even a cold cached run intersects each edge once, not
    SCAN's canonical twice).  The clustering is bit-identical.
    """
    t0 = time.perf_counter()
    ctx = RunContext(graph, params, kernel="merge", store=store)
    counter = ctx.engine.counter
    off, dst, adj = ctx.off, ctx.dst, ctx.adj
    sim, roles, mcn = ctx.sim, ctx.roles, ctx.mcn
    mu = ctx.mu
    n = ctx.n
    use_store = store is not None
    if use_store:
        state0 = np.full(ctx.num_arcs, UNKNOWN, dtype=np.int8)
        ctx.engine.prefold_cached(state0, ctx.mcn_np)
        ctx.sim[:] = state0.tolist()
    cached_arc = ctx.engine.resolve_arc_cached

    other_arcs = 0

    def check_core_exhaustive(u: int) -> None:
        """Exhaustive CheckCore: full intersection per neighbor."""
        sd = 0
        nbrs_u = adj[u]
        for arc in range(off[u], off[u + 1]):
            v = dst[arc]
            common = merge_count(nbrs_u, adj[v], counter)
            state = SIM if common + 2 >= mcn[arc] else NSIM
            sim[arc] = state
            if state == SIM:
                sd += 1
        roles[u] = CORE if sd >= mu else NONCORE

    def check_core_cached(u: int) -> None:
        """CheckCore through the store: prefolded/mirrored arcs are
        already decided, the rest are exact merge counts that get
        recorded.  Same decisions, less intersection work."""
        sd = 0
        nbrs_u = adj[u]
        for arc in range(off[u], off[u + 1]):
            state = sim[arc]
            if state == UNKNOWN:
                state = cached_arc(arc, nbrs_u, adj[dst[arc]], mcn[arc])
                sim[arc] = state
            if state == SIM:
                sd += 1
        roles[u] = CORE if sd >= mu else NONCORE

    check_core = check_core_cached if use_store else check_core_exhaustive

    core_label = [-1] * n
    pairs: set[tuple[int, int]] = set()

    def expand_cluster(seed: int) -> None:
        nonlocal other_arcs
        core_label[seed] = seed
        queue: deque[int] = deque([seed])
        while queue:
            v = queue.popleft()
            for arc in range(off[v], off[v + 1]):
                other_arcs += 1
                if sim[arc] != SIM:
                    continue
                w = dst[arc]
                if roles[w] == ROLE_UNKNOWN:
                    check_core(w)
                if roles[w] == CORE:
                    if core_label[w] == -1:
                        core_label[w] = seed
                        queue.append(w)
                else:
                    pairs.add((seed, w))

    for u in range(n):
        if roles[u] == ROLE_UNKNOWN:
            check_core(u)
            if roles[u] == CORE:
                expand_cluster(u)

    # Canonicalize: cluster id = min core id of each BFS tree.
    min_id: dict[int, int] = {}
    for v in range(n):
        seed = core_label[v]
        if seed >= 0 and (seed not in min_id or v < min_id[seed]):
            min_id[seed] = v
    labels = [min_id[s] if s >= 0 else -1 for s in core_label]
    pair_rows = [(min_id[s], v) for s, v in pairs]

    wall = time.perf_counter() - t0
    sim_cost = TaskCost(
        scalar_cmp=counter.scalar_cmp,
        vector_ops=counter.vector_ops,
        bound_updates=counter.bound_updates,
        compsims=counter.invocations,
    )
    other_cost = TaskCost(arcs=other_arcs + n)
    record = RunRecord(
        algorithm="SCAN",
        stages=[
            StageRecord("similarity evaluation", [sim_cost]),
            StageRecord("other computation", [other_cost]),
        ],
        wall_seconds=wall,
    )
    # SCAN's two buckets interleave (CheckCore runs inside the BFS);
    # attribute the measured wall by modelled cost share.
    record.apportion_wall()
    return ClusteringResult(
        algorithm="SCAN",
        params=params,
        roles=ctx.roles_array(),
        core_labels=labels,
        noncore_pairs=pair_rows,
        record=record,
    )
