"""SCAN++ (Shiokawa et al., VLDB'15) — DTAR-based sequential baseline.

The paper's §3.3: "SCAN++ introduces a data structure called Directly
Two-hop Away Reachable vertices (DTAR) and shares intermediate
similarities within DTAR to reduce the workload.  However, maintaining
DTAR comes at a high cost." — in the paper's own experiments SCAN++
could not finish the twitter dataset within 24 hours.

This implementation keeps SCAN++'s structure — pivot selection over a
dominating set, per-pivot DTAR materialization, similarity sharing
through an edge cache — while remaining *exact* (identical clusters to
every other algorithm, enforced by the cross-validation tests):

* **Pivot expansion**: an uncovered vertex becomes a pivot; its full
  ε-neighborhood is evaluated (with similarity reuse) and its DTAR — the
  distinct two-hop neighbors — is materialized.  DTAR construction scans
  ``sum(d(v) for v in N(u))`` adjacency entries and allocates one
  candidate node per entry: exactly the cost the paper calls out, and it
  is charged as real work (``arcs``/``allocs``) in the run record.
* **Consolidation**: edges between two covered non-pivots are resolved
  lazily so every role is exact.
* **Clustering** reuses the standard union-find + membership-pair logic.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.csr import CSRGraph
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..types import CORE, NONCORE, NSIM, SIM, UNKNOWN, ScanParams
from ..unionfind import UnionFind
from .context import RunContext
from .result import ClusteringResult

__all__ = ["scanpp"]


def scanpp(graph: CSRGraph, params: ScanParams) -> ClusteringResult:
    """Run SCAN++; returns the canonical clustering result."""
    t0 = time.perf_counter()
    ctx = RunContext(graph, params, kernel="merge")
    counter = ctx.engine.counter
    off, dst, adj, deg = ctx.off, ctx.dst, ctx.adj, ctx.deg
    sim, roles, mcn, rev = ctx.sim, ctx.roles, ctx.mcn, ctx.rev
    kernel_fn = ctx.engine.kernel
    mu = ctx.mu
    n = ctx.n
    stages: list[StageRecord] = []

    def resolve_arc(u: int, arc: int) -> int:
        v = dst[arc]
        c = mcn[arc]
        if c <= 2:
            state = SIM
        elif (deg[u] if deg[u] < deg[v] else deg[v]) + 2 < c:
            state = NSIM
        else:
            state = SIM if kernel_fn(adj[u], adj[v], c) else NSIM
        sim[arc] = state
        sim[rev[arc]] = state
        return state

    # -- Phase 1: pivot expansion with DTAR maintenance --------------------

    t_stage = time.perf_counter()
    snap = (counter.scalar_cmp, counter.invocations)
    covered = [False] * n
    pivots: list[int] = []
    arcs_scanned = 0
    allocs = 0
    dtar_sizes: list[int] = []
    for u in range(n):
        if covered[u]:
            continue
        pivots.append(u)
        covered[u] = True
        # Evaluate the pivot's full neighborhood (with reuse).
        sd = 0
        for arc in range(off[u], off[u + 1]):
            arcs_scanned += 1
            state = sim[arc]
            if state == UNKNOWN:
                state = resolve_arc(u, arc)
            if state == SIM:
                sd += 1
            covered[dst[arc]] = True
        roles[u] = CORE if sd >= mu else NONCORE
        # Materialize DTAR(u): distinct two-hop neighbors.  This is the
        # data structure whose maintenance the paper identifies as
        # SCAN++'s bottleneck — built for real, charged for real.
        dtar: set[int] = set()
        for arc in range(off[u], off[u + 1]):
            v = dst[arc]
            for arc2 in range(off[v], off[v + 1]):
                arcs_scanned += 1
                allocs += 1  # candidate node insertion
                w = dst[arc2]
                if w != u:
                    dtar.add(w)
        dtar_sizes.append(len(dtar))
    cost = TaskCost(
        scalar_cmp=counter.scalar_cmp - snap[0],
        compsims=counter.invocations - snap[1],
        arcs=arcs_scanned,
        allocs=allocs,
    )
    stages.append(
        StageRecord("pivot expansion", [cost], time.perf_counter() - t_stage)
    )

    # -- Phase 2: consolidate remaining roles -----------------------------

    t_stage = time.perf_counter()
    snap = (counter.scalar_cmp, counter.invocations)
    arcs_scanned = 0
    for u in range(n):
        if roles[u] != 0:  # ROLE_UNKNOWN
            continue
        sd = 0
        for arc in range(off[u], off[u + 1]):
            arcs_scanned += 1
            state = sim[arc]
            if state == UNKNOWN:
                state = resolve_arc(u, arc)
            if state == SIM:
                sd += 1
                if sd >= mu:
                    break
        roles[u] = CORE if sd >= mu else NONCORE
    stages.append(
        StageRecord(
            "consolidation",
            [
                TaskCost(
                    scalar_cmp=counter.scalar_cmp - snap[0],
                    compsims=counter.invocations - snap[1],
                    arcs=arcs_scanned,
                )
            ],
            time.perf_counter() - t_stage,
        )
    )

    # -- Phase 3: clustering ------------------------------------------------

    t_stage = time.perf_counter()
    uf = UnionFind(n)
    arcs_scanned = 0
    snap = (counter.scalar_cmp, counter.invocations)
    for u in range(n):
        if roles[u] != CORE:
            continue
        for arc in range(off[u], off[u + 1]):
            arcs_scanned += 1
            v = dst[arc]
            if v <= u or roles[v] != CORE:
                continue
            state = sim[arc]
            if state == UNKNOWN:
                state = resolve_arc(u, arc)
            if state == SIM:
                uf.union(u, v)
    cluster_id: dict[int, int] = {}
    labels = np.full(n, -1, dtype=np.int64)
    for u in range(n):
        if roles[u] == CORE:
            root = uf.find(u)
            if root not in cluster_id:
                cluster_id[root] = u
            labels[u] = cluster_id[root]
    pairs: list[tuple[int, int]] = []
    for u in range(n):
        if roles[u] != CORE:
            continue
        cid = int(labels[u])
        for arc in range(off[u], off[u + 1]):
            arcs_scanned += 1
            v = dst[arc]
            if roles[v] != NONCORE:
                continue
            state = sim[arc]
            if state == UNKNOWN:
                state = resolve_arc(u, arc)
            if state == SIM:
                pairs.append((cid, v))
    stages.append(
        StageRecord(
            "clustering",
            [
                TaskCost(
                    scalar_cmp=counter.scalar_cmp - snap[0],
                    compsims=counter.invocations - snap[1],
                    arcs=arcs_scanned,
                    atomics=uf.num_unions,
                )
            ],
            time.perf_counter() - t_stage,
        )
    )

    record = RunRecord(
        algorithm="SCAN++",
        stages=stages,
        wall_seconds=time.perf_counter() - t0,
    )
    result = ClusteringResult(
        algorithm="SCAN++",
        params=params,
        roles=np.array(roles, dtype=np.int8),
        core_labels=labels,
        noncore_pairs=pairs,
        record=record,
    )
    # Expose the DTAR statistics for the baseline bench.
    record.dtar_sizes = dtar_sizes  # type: ignore[attr-defined]
    record.num_pivots = len(pivots)  # type: ignore[attr-defined]
    return result
