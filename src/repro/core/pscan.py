"""pSCAN (Chang et al., ICDE'16) — paper Algorithm 2.

The state-of-the-art *sequential* pruning-based algorithm ppSCAN
parallelizes, with all three pruning techniques of §3.2.1:

* min-max pruning — global ``sd`` / ``ed`` bounds per vertex, explored in
  non-increasing ``ed`` order (a lazy max-heap; the ordering's effect is
  ablatable via ``use_ed_order=False``, reproducing the paper's §4.1 claim
  that dropping it costs little);
* similarity reuse — every computed predicate is mirrored onto the
  reverse arc through the precomputed reverse-arc index;
* union-find pruning — ``ClusterCore`` skips neighbors already in the
  same set.

Like the reference C++ implementation, trivial predicates (``min_cn <= 2``
or unreachable thresholds) are resolved from degrees alone and are *not*
counted as set-intersection invocations — that convention makes the
Figure-4 invocation comparison against ppSCAN meaningful.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush

from ..graph.csr import CSRGraph
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..types import CORE, NONCORE, SIM, NSIM, UNKNOWN, ScanParams
from ..unionfind import UnionFind
from .context import RunContext
from .result import ClusteringResult

__all__ = ["pscan"]


def pscan(
    graph: CSRGraph,
    params: ScanParams,
    kernel: str = "merge",
    use_ed_order: bool = True,
) -> ClusteringResult:
    """Run sequential pSCAN; returns the canonical clustering result.

    The attached record carries the Figure-1 buckets: ``similarity
    evaluation`` (kernel work), ``workload reduction computation``
    (sd/ed maintenance, ordering, reuse bookkeeping) and ``other
    computation`` (iteration + clustering).
    """
    t0 = time.perf_counter()
    ctx = RunContext(graph, params, kernel=kernel)
    counter = ctx.engine.counter
    off, dst, adj, deg = ctx.off, ctx.dst, ctx.adj, ctx.deg
    sim, roles, mcn, rev = ctx.sim, ctx.roles, ctx.mcn, ctx.rev
    mu = ctx.mu
    n = ctx.n

    sd = [0] * n
    ed = deg[:]  # copy
    uf = UnionFind(n)

    reduction_ops = 0  # sd/ed updates + heap maintenance + reuse writes
    other_arcs = 0

    def resolve_arc(u: int, arc: int) -> int:
        """Compute sim for an unknown arc, mirror it, update both bounds.

        Returns the new state.  Trivial thresholds skip the kernel (and
        the invocation count), like the reference implementation.
        """
        nonlocal reduction_ops
        v = dst[arc]
        c = mcn[arc]
        if c <= 2:
            state = SIM
        elif (deg[u] if deg[u] < deg[v] else deg[v]) + 2 < c:
            state = NSIM
        else:
            state = SIM if ctx.engine.kernel(adj[u], adj[v], c) else NSIM
        sim[arc] = state
        sim[rev[arc]] = state
        reduction_ops += 2
        return state

    # -- core checking and clustering (Algorithm 2 lines 4-7) -------------

    heap: list[tuple[int, int]] = [(-deg[u], u) for u in range(n)]
    heapify(heap)
    processed = [False] * n
    order_static = sorted(range(n), key=lambda u: -deg[u])
    static_pos = 0

    def next_vertex() -> int | None:
        nonlocal static_pos, reduction_ops
        if use_ed_order:
            while heap:
                neg_ed, u = heappop(heap)
                reduction_ops += 1
                if processed[u] or -neg_ed != ed[u]:
                    continue  # stale entry
                return u
            return None
        while static_pos < n:
            u = order_static[static_pos]
            static_pos += 1
            if not processed[u]:
                return u
        return None

    def check_core(u: int) -> None:
        nonlocal reduction_ops, other_arcs
        if sd[u] < mu and ed[u] >= mu:
            for arc in range(off[u], off[u + 1]):
                other_arcs += 1
                if sim[arc] != UNKNOWN:
                    continue
                v = dst[arc]
                state = resolve_arc(u, arc)
                reduction_ops += 4
                if state == SIM:
                    sd[u] += 1
                    sd[v] += 1
                else:
                    ed[u] -= 1
                    ed[v] -= 1
                    if use_ed_order and not processed[v]:
                        heappush(heap, (-ed[v], v))
                        reduction_ops += 1
                if sd[u] >= mu or ed[u] < mu:
                    break
        roles[u] = CORE if sd[u] >= mu else NONCORE

    def cluster_core(u: int) -> None:
        nonlocal reduction_ops, other_arcs
        for arc in range(off[u], off[u + 1]):
            other_arcs += 1
            v = dst[arc]
            if sd[v] < mu or uf.same_set(u, v):
                continue
            if sim[arc] == UNKNOWN:
                state = resolve_arc(u, arc)
                reduction_ops += 2
                if state == SIM:
                    sd[v] += 1
                else:
                    ed[v] -= 1
                    if use_ed_order and not processed[v]:
                        heappush(heap, (-ed[v], v))
                        reduction_ops += 1
            if sim[arc] == SIM:
                uf.union(u, v)

    while (u := next_vertex()) is not None:
        processed[u] = True
        check_core(u)
        if roles[u] == CORE:
            cluster_core(u)

    # -- cluster id init + non-core clustering (Algorithm 2 line 8) -------

    cluster_id: dict[int, int] = {}
    labels = [-1] * n
    for u in range(n):
        if roles[u] == CORE:
            root = uf.find(u)
            if root not in cluster_id:
                cluster_id[root] = u  # ascending scan -> min core id
            labels[u] = cluster_id[root]

    pairs: set[tuple[int, int]] = set()
    for u in range(n):
        if roles[u] != CORE:
            continue
        cid = labels[u]
        for arc in range(off[u], off[u + 1]):
            other_arcs += 1
            v = dst[arc]
            if roles[v] != NONCORE:
                continue
            if sim[arc] == UNKNOWN:
                resolve_arc(u, arc)
            if sim[arc] == SIM:
                pairs.add((cid, v))

    wall = time.perf_counter() - t0
    sim_cost = TaskCost(
        scalar_cmp=counter.scalar_cmp,
        vector_ops=counter.vector_ops,
        bound_updates=counter.bound_updates,
        compsims=counter.invocations,
    )
    reduction_cost = TaskCost(bound_updates=reduction_ops)
    other_cost = TaskCost(
        arcs=other_arcs + n,
        atomics=uf.num_finds + uf.num_unions,
    )
    record = RunRecord(
        algorithm="pSCAN",
        stages=[
            StageRecord("similarity evaluation", [sim_cost]),
            StageRecord("workload reduction computation", [reduction_cost]),
            StageRecord("other computation", [other_cost]),
        ],
        wall_seconds=wall,
    )
    return ClusteringResult(
        algorithm="pSCAN",
        params=params,
        roles=ctx.roles_array(),
        core_labels=labels,
        noncore_pairs=sorted(pairs),
        record=record,
    )
