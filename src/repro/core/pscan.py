"""pSCAN (Chang et al., ICDE'16) — paper Algorithm 2.

The state-of-the-art *sequential* pruning-based algorithm ppSCAN
parallelizes, with all three pruning techniques of §3.2.1:

* min-max pruning — global ``sd`` / ``ed`` bounds per vertex, explored in
  non-increasing ``ed`` order (a lazy max-heap; the ordering's effect is
  ablatable via ``use_ed_order=False``, reproducing the paper's §4.1 claim
  that dropping it costs little);
* similarity reuse — every computed predicate is mirrored onto the
  reverse arc through the precomputed reverse-arc index;
* union-find pruning — ``ClusterCore`` skips neighbors already in the
  same set.

Like the reference C++ implementation, trivial predicates (``min_cn <= 2``
or unreachable thresholds) are resolved from degrees alone and are *not*
counted as set-intersection invocations — that convention makes the
Figure-4 invocation comparison against ppSCAN meaningful.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

from ..graph.csr import CSRGraph
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..obs.tracer import current_tracer
from ..parallel.backend import commit_arc_states
from ..similarity.engine import EXEC_MODES
from ..types import CORE, NONCORE, SIM, NSIM, UNKNOWN, ScanParams
from ..unionfind import UnionFind
from .context import RunContext
from .result import ClusteringResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import SimilarityStore
    from ..checkpoint import CheckpointManager
    from ..sketch import SketchParams

__all__ = ["pscan"]


def pscan(
    graph: CSRGraph,
    params: ScanParams,
    kernel: str = "merge",
    use_ed_order: bool = True,
    exec_mode: str = "scalar",
    store: "SimilarityStore | None" = None,
    checkpoint: "CheckpointManager | None" = None,
    sketch: "SketchParams | None" = None,
) -> ClusteringResult:
    """Run sequential pSCAN; returns the canonical clustering result.

    The attached record carries the Figure-1 buckets: ``similarity
    evaluation`` (kernel work), ``workload reduction computation``
    (sd/ed maintenance, ordering, reuse bookkeeping) and ``other
    computation`` (iteration + clustering).

    ``exec_mode="batched"`` keeps pSCAN's vertex ordering and pruning
    structure but resolves each vertex's unknown frontier through the
    batch API (:meth:`~repro.similarity.engine.SimilarityEngine.
    resolve_arcs`) instead of one kernel call per arc; the clustering is
    identical, though the per-arc early exits inside ``CheckCore`` are
    traded for whole-neighborhood batches.

    ``store`` attaches a :class:`~repro.cache.SimilarityStore`: covered
    arcs seed the sd/ed bounds before the first vertex is popped (the
    ed-order heap starts from the tightened bounds) and fresh overlaps
    are recorded for future runs.  Clustering is bit-identical.

    ``checkpoint`` attaches a :class:`~repro.checkpoint.CheckpointManager`.
    pSCAN is a single sequential vertex loop, so snapshots are taken every
    ``every`` processed vertices (cursor 0) and once at loop exit (cursor
    1); each snapshot captures the full loop state — sim/roles, sd/ed
    bounds, the lazy heap, processed flags, the union-find forest — so a
    resumed run pops the exact same vertex sequence and produces a
    bit-identical clustering.  The final labeling pass is pure derivation
    and is always recomputed.
    """
    if exec_mode not in EXEC_MODES:
        raise ValueError(
            f"unknown exec_mode {exec_mode!r}; known: {list(EXEC_MODES)}"
        )
    batched = exec_mode == "batched"
    t0 = time.perf_counter()
    tracer = current_tracer()
    root_span = (
        tracer.start_span(
            "pscan",
            lane=0,
            exec_mode=exec_mode,
            kernel=kernel,
            eps=params.eps,
            mu=params.mu,
            ed_order=use_ed_order,
        )
        if tracer.enabled
        else None
    )
    ctx = RunContext(graph, params, kernel=kernel, store=store, sketch=sketch)
    counter = ctx.engine.counter
    off, dst, adj, deg = ctx.off, ctx.dst, ctx.adj, ctx.deg
    sim, roles, mcn, rev = ctx.sim, ctx.roles, ctx.mcn, ctx.rev
    mu = ctx.mu
    n = ctx.n
    engine = ctx.engine
    use_store = store is not None
    cached_arc = engine.resolve_arc_cached
    dst_np, mcn_np, rev_np = graph.dst, ctx.mcn_np, ctx.rev_np
    # Batched mode mirrors the similarity states into int8 so frontier
    # selection is one vectorized comparison per neighborhood (the list
    # stays authoritative for the scalar bookkeeping above).
    sim_np = np.full(ctx.num_arcs, UNKNOWN, dtype=np.int8) if batched else None

    sd = [0] * n
    ed = deg[:]  # copy
    if use_store or engine.sketch is not None:
        # Fold store-covered and/or sketch-decided arcs up front and seed
        # the sd/ed bounds from them — the min-max pruning starts from
        # the tightened state, so a warm store (or a decisive sketch
        # pass) decides most roles without any kernel work.
        state0 = (
            sim_np
            if batched
            else np.full(ctx.num_arcs, UNKNOWN, dtype=np.int8)
        )
        folded = engine.prefold_cached(state0, mcn_np) if use_store else 0
        if engine.sketch is not None:
            folded += engine.sketch_prefold(state0, mcn_np)
        if folded:
            if not batched:
                ctx.sim[:] = state0.tolist()
            src_np = ctx.src_np
            sd = np.bincount(src_np[state0 == SIM], minlength=n).tolist()
            ed = (
                graph.degrees
                - np.bincount(src_np[state0 == NSIM], minlength=n)
            ).tolist()
    uf = UnionFind(n)

    reduction_ops = 0  # sd/ed updates + heap maintenance + reuse writes
    other_arcs = 0

    def resolve_arc(u: int, arc: int) -> int:
        """Compute sim for an unknown arc, mirror it, update both bounds.

        Returns the new state.  Trivial thresholds skip the kernel (and
        the invocation count), like the reference implementation.
        """
        nonlocal reduction_ops
        v = dst[arc]
        c = mcn[arc]
        if c <= 2:
            state = SIM
        elif (deg[u] if deg[u] < deg[v] else deg[v]) + 2 < c:
            state = NSIM
        elif use_store:
            state = cached_arc(arc, adj[u], adj[v], c)
        else:
            state = SIM if ctx.engine.kernel(adj[u], adj[v], c) else NSIM
        sim[arc] = state
        sim[rev[arc]] = state
        reduction_ops += 2
        return state

    def resolve_frontier(u: int, arcs_np: np.ndarray) -> np.ndarray:
        """Batch-resolve unknown arcs of one vertex (batched mode).

        Mirrors the states through the batch commit and applies the
        neighbor-side sd/ed updates (with lazy-heap re-insertions), the
        batched counterpart of ``resolve_arc``'s bookkeeping.  The
        caller folds the u-side aggregate.
        """
        nonlocal reduction_ops
        states = engine.resolve_arcs(arcs_np, mcn=mcn_np[arcs_np])
        commit_arc_states(sim_np, rev_np, arcs_np, states)
        reduction_ops += 2 * int(arcs_np.size)
        for v, s in zip(dst_np[arcs_np].tolist(), states.tolist()):
            if s == SIM:
                sd[v] += 1
            else:
                ed[v] -= 1
                if use_ed_order and not processed[v]:
                    heappush(heap, (-ed[v], v))
                    reduction_ops += 1
        return states

    # -- core checking and clustering (Algorithm 2 lines 4-7) -------------

    # Seeded from ed (== deg when no store tightened the bounds), so the
    # lazy-heap staleness check matches the live values from the start.
    heap: list[tuple[int, int]] = [(-ed[u], u) for u in range(n)]
    heapify(heap)
    processed = [False] * n
    order_static = sorted(range(n), key=lambda u: -deg[u])
    static_pos = 0

    # ==== Checkpoint/resume ==============================================
    # pSCAN has no phase barriers — the whole algorithm is one vertex
    # loop — so the cursor is binary: 0 while the loop runs (snapshots
    # carry the complete loop state), 1 once it has drained.  The final
    # labeling pass is pure derivation from sim/roles/uf and is always
    # recomputed on resume.
    ck = checkpoint
    restored_cursor = 0
    done = 0  # vertices processed so far (drives the snapshot cadence)

    def _save_ckpt(phase: str, cursor: int) -> int:
        arrays: dict[str, np.ndarray] = {
            "sim": (
                sim_np.copy()
                if batched
                else np.asarray(sim, dtype=np.int8)
            ),
            "roles": np.asarray(roles, dtype=np.int8),
            "sd": np.asarray(sd, dtype=np.int64),
            "ed": np.asarray(ed, dtype=np.int64),
            "processed": np.asarray(processed, dtype=bool),
            "heap": np.asarray(heap, dtype=np.int64).reshape(-1, 2),
        }
        uf_state = uf.snapshot()
        arrays["uf_parent"] = uf_state["parent"]
        arrays["uf_size"] = uf_state["size"]
        if use_store:
            entry = store.entry_for(graph)
            arrays["store_overlap"] = entry.overlap
            arrays["store_coverage"] = np.packbits(entry.coverage)
        meta = {
            "cursor": cursor,
            "static_pos": static_pos,
            "reduction_ops": reduction_ops,
            "other_arcs": other_arcs,
            "done": done,
            "counter": counter.as_dict(),
        }
        return ck.save(arrays=arrays, meta=meta, phase=phase)

    if ck is not None:
        ck.bind(
            graph,
            params,
            algorithm="pscan",
            exec_mode=exec_mode,
            extra={"kernel": kernel, "ed_order": bool(use_ed_order)}
            | (
                {"sketch": engine.sketch.key()}
                if engine.sketch is not None
                else {}
            ),
        )
        snap = ck.load_latest()
        if snap is not None:
            restored_cursor = int(snap.meta["cursor"])
            snap_sim = np.asarray(snap.arrays["sim"], dtype=np.int8)
            if batched:
                sim_np[:] = snap_sim
            else:
                sim[:] = snap_sim.tolist()
            roles[:] = np.asarray(
                snap.arrays["roles"], dtype=np.int8
            ).tolist()
            sd[:] = np.asarray(snap.arrays["sd"], dtype=np.int64).tolist()
            ed[:] = np.asarray(snap.arrays["ed"], dtype=np.int64).tolist()
            processed[:] = np.asarray(
                snap.arrays["processed"], dtype=bool
            ).tolist()
            heap[:] = [
                (int(a), int(b))
                for a, b in np.asarray(snap.arrays["heap"])
                .reshape(-1, 2)
                .tolist()
            ]
            uf.restore(
                {
                    "parent": snap.arrays["uf_parent"],
                    "size": snap.arrays["uf_size"],
                }
            )
            if use_store and "store_overlap" in snap.arrays:
                entry = store.entry_for(graph)
                entry.overlap = np.asarray(
                    snap.arrays["store_overlap"], dtype=np.int64
                ).copy()
                entry.coverage = np.unpackbits(
                    np.asarray(
                        snap.arrays["store_coverage"], dtype=np.uint8
                    ),
                    count=entry.num_arcs,
                ).astype(bool)
                entry.dirty = True
            static_pos = int(snap.meta["static_pos"])
            reduction_ops = int(snap.meta["reduction_ops"])
            other_arcs = int(snap.meta["other_arcs"])
            done = int(snap.meta["done"])
            saved_counter = snap.meta.get("counter")
            if isinstance(saved_counter, dict):
                for field, value in saved_counter.items():
                    if field in type(counter).__slots__:
                        setattr(counter, field, int(value))

    def next_vertex() -> int | None:
        nonlocal static_pos, reduction_ops
        if use_ed_order:
            while heap:
                neg_ed, u = heappop(heap)
                reduction_ops += 1
                if processed[u] or -neg_ed != ed[u]:
                    continue  # stale entry
                return u
            return None
        while static_pos < n:
            u = order_static[static_pos]
            static_pos += 1
            if not processed[u]:
                return u
        return None

    def check_core(u: int) -> None:
        nonlocal reduction_ops, other_arcs
        if sd[u] < mu and ed[u] >= mu:
            for arc in range(off[u], off[u + 1]):
                other_arcs += 1
                if sim[arc] != UNKNOWN:
                    continue
                v = dst[arc]
                state = resolve_arc(u, arc)
                reduction_ops += 4
                if state == SIM:
                    sd[u] += 1
                    sd[v] += 1
                else:
                    ed[u] -= 1
                    ed[v] -= 1
                    if use_ed_order and not processed[v]:
                        heappush(heap, (-ed[v], v))
                        reduction_ops += 1
                if sd[u] >= mu or ed[u] < mu:
                    break
        roles[u] = CORE if sd[u] >= mu else NONCORE

    def cluster_core(u: int) -> None:
        nonlocal reduction_ops, other_arcs
        for arc in range(off[u], off[u + 1]):
            other_arcs += 1
            v = dst[arc]
            if sd[v] < mu or uf.same_set(u, v):
                continue
            if sim[arc] == UNKNOWN:
                state = resolve_arc(u, arc)
                reduction_ops += 2
                if state == SIM:
                    sd[v] += 1
                else:
                    ed[v] -= 1
                    if use_ed_order and not processed[v]:
                        heappush(heap, (-ed[v], v))
                        reduction_ops += 1
            if sim[arc] == SIM:
                uf.union(u, v)

    def check_core_batched(u: int) -> None:
        nonlocal reduction_ops, other_arcs
        if sd[u] < mu and ed[u] >= mu:
            lo, hi = off[u], off[u + 1]
            other_arcs += hi - lo
            unknown = np.flatnonzero(sim_np[lo:hi] == UNKNOWN) + lo
            if unknown.size:
                states = resolve_frontier(u, unknown)
                n_sim = int(np.count_nonzero(states == SIM))
                sd[u] += n_sim
                ed[u] -= int(unknown.size) - n_sim
                reduction_ops += 4 * int(unknown.size)
        roles[u] = CORE if sd[u] >= mu else NONCORE

    def cluster_core_batched(u: int) -> None:
        nonlocal other_arcs
        lo, hi = off[u], off[u + 1]
        other_arcs += hi - lo
        vs = dst_np[lo:hi].tolist()
        unknown_flags = (sim_np[lo:hi] == UNKNOWN).tolist()
        # Gate with the pre-loop union-find state; unlike the scalar walk
        # the same-set check cannot observe this vertex's own unions, so
        # a few more arcs may be resolved — the unions are identical.
        eligible = [
            i
            for i, v in enumerate(vs)
            if sd[v] >= mu and not uf.same_set(u, v)
        ]
        to_resolve = [lo + i for i in eligible if unknown_flags[i]]
        if to_resolve:
            resolve_frontier(u, np.asarray(to_resolve, dtype=np.int64))
        seg = sim_np[lo:hi].tolist()
        for i in eligible:
            if seg[i] == SIM:
                uf.union(u, vs[i])

    do_check = check_core_batched if batched else check_core
    do_cluster = cluster_core_batched if batched else cluster_core

    if restored_cursor < 1:
        while (u := next_vertex()) is not None:
            processed[u] = True
            do_check(u)
            if roles[u] == CORE:
                do_cluster(u)
            done += 1
            if (
                ck is not None
                and ck.every is not None
                and done % ck.every == 0
            ):
                _save_ckpt("vertex loop", cursor=0)
        if ck is not None:
            _save_ckpt("vertex loop", cursor=1)

    # -- cluster id init + non-core clustering (Algorithm 2 line 8) -------

    cluster_id: dict[int, int] = {}
    labels = [-1] * n
    for u in range(n):
        if roles[u] == CORE:
            root = uf.find(u)
            if root not in cluster_id:
                cluster_id[root] = u  # ascending scan -> min core id
            labels[u] = cluster_id[root]

    pairs: set[tuple[int, int]] = set()
    if batched:
        roles_np = np.array(roles, dtype=np.int8)
        for u in range(n):
            if roles[u] != CORE:
                continue
            cid = labels[u]
            lo, hi = off[u], off[u + 1]
            other_arcs += hi - lo
            cand = np.flatnonzero(roles_np[dst_np[lo:hi]] == NONCORE) + lo
            if cand.size == 0:
                continue
            unknown = cand[sim_np[cand] == UNKNOWN]
            if unknown.size:
                states = engine.resolve_arcs(unknown, mcn=mcn_np[unknown])
                commit_arc_states(sim_np, rev_np, unknown, states)
                reduction_ops += 2 * int(unknown.size)
            similar = cand[sim_np[cand] == SIM]
            for v in dst_np[similar].tolist():
                pairs.add((cid, v))
    else:
        for u in range(n):
            if roles[u] != CORE:
                continue
            cid = labels[u]
            for arc in range(off[u], off[u + 1]):
                other_arcs += 1
                v = dst[arc]
                if roles[v] != NONCORE:
                    continue
                if sim[arc] == UNKNOWN:
                    resolve_arc(u, arc)
                if sim[arc] == SIM:
                    pairs.add((cid, v))

    wall = time.perf_counter() - t0
    sim_cost = TaskCost(
        scalar_cmp=counter.scalar_cmp,
        vector_ops=counter.vector_ops,
        bound_updates=counter.bound_updates,
        compsims=counter.invocations,
    )
    reduction_cost = TaskCost(bound_updates=reduction_ops)
    other_cost = TaskCost(
        arcs=other_arcs + n,
        atomics=uf.num_finds + uf.num_unions,
    )
    record = RunRecord(
        algorithm="pSCAN",
        stages=[
            StageRecord("similarity evaluation", [sim_cost]),
            StageRecord("workload reduction computation", [reduction_cost]),
            StageRecord("other computation", [other_cost]),
        ],
        wall_seconds=wall,
    )
    # pSCAN's semantic stages interleave in time; attribute the measured
    # wall to them by modelled cost share (Figure-1 style breakdown).
    record.apportion_wall()
    if root_span is not None:
        tracer.end_span(root_span)
        tracer.count("run.pscan", 1)
    return ClusteringResult(
        algorithm="pSCAN",
        params=params,
        roles=ctx.roles_array(),
        core_labels=labels,
        noncore_pairs=sorted(pairs),
        record=record,
    )
