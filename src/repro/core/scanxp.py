"""SCAN-XP (Takahashi et al., NDA'17) — exhaustive parallel baseline.

SCAN-XP exploits thread- and instruction-level parallelism on Xeon Phi but
performs *no pruning*: every arc's similarity is computed with a full
vectorized intersection, independently per arc (each undirected edge is
intersected twice — the synchronization-free design that lets it avoid
all shared writes).  Its workload is therefore independent of ε, the
property Figure 2/3 exposes (flat runtime while ppSCAN's falls).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from ..graph.csr import CSRGraph
from ..intersect import pivot_vectorized_count
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..obs.tracer import current_tracer
from ..parallel.backend import ExecutionBackend, SerialBackend
from ..parallel.scheduler import degree_based_tasks
from ..parallel.supervisor import ExecutionFaultError, ResumableAbort
from ..similarity.engine import EXEC_MODES
from ..types import CORE, NONCORE, NSIM, SIM, UNKNOWN, ScanParams
from ..unionfind import AtomicUnionFind
from .context import RunContext
from .ppscan import auto_batch_task_threshold, auto_task_threshold
from .result import ClusteringResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import SimilarityStore
    from ..checkpoint import CheckpointManager
    from ..sketch import SketchParams

__all__ = ["scanxp"]


def scanxp(
    graph: CSRGraph,
    params: ScanParams,
    *,
    lanes: int = 16,
    backend: ExecutionBackend | None = None,
    task_threshold: int | None = None,
    exec_mode: str = "scalar",
    store: "SimilarityStore | None" = None,
    checkpoint: "CheckpointManager | None" = None,
    sketch: "SketchParams | None" = None,
) -> ClusteringResult:
    """Run SCAN-XP; returns the canonical clustering result.

    ``exec_mode="batched"`` resolves each task's whole arc range through
    the batch intersector in one call — still exhaustive (every arc is
    fully counted with no pruning and no reverse-arc reuse, preserving
    SCAN-XP's ε-independent workload), just without the per-arc
    interpreted kernel dispatch.

    ``store`` attaches a :class:`~repro.cache.SimilarityStore`: covered
    arcs are folded before the similarity phase and fresh overlaps are
    recorded (mirrored, so even a cold cached run intersects each edge
    once instead of SCAN-XP's canonical twice).  Decisions — and the
    clustering — are bit-identical; only the work accounting changes,
    which is why caching is opt-in.
    """
    if exec_mode not in EXEC_MODES:
        raise ValueError(
            f"unknown exec_mode {exec_mode!r}; known: {list(EXEC_MODES)}"
        )
    batched = exec_mode == "batched"
    t0 = time.perf_counter()
    ctx = RunContext(
        graph,
        params,
        kernel="vectorized",
        lanes=lanes,
        store=store,
        sketch=sketch,
    )
    backend = backend if backend is not None else SerialBackend()
    tracer = current_tracer()
    root_span = (
        tracer.start_span(
            "scanxp",
            lane=0,
            exec_mode=exec_mode,
            vertices=graph.num_vertices,
            arcs=ctx.num_arcs,
            eps=params.eps,
            mu=params.mu,
        )
        if tracer.enabled
        else None
    )
    if task_threshold is not None:
        threshold = task_threshold
    elif batched:
        threshold = auto_batch_task_threshold(ctx.num_arcs)
    else:
        threshold = auto_task_threshold(ctx.num_arcs)
    counter = ctx.engine.counter
    engine = ctx.engine
    use_store = store is not None
    cached_arc = engine.resolve_arc_cached
    mu = ctx.mu
    n = ctx.n
    deg_np = graph.degrees
    off_np, dst_np = graph.offsets, graph.dst
    src_np, mcn_np = ctx.src_np, ctx.mcn_np
    # Every arc's state is computed in phase 1, so no UNKNOWN seed is
    # needed — unless a store or sketch gate is attached, in which case
    # decided arcs are prefolded and only the UNKNOWN remainder is
    # intersected.
    use_fold = use_store or engine.sketch is not None
    if batched:
        sim_np = (
            np.full(ctx.num_arcs, UNKNOWN, dtype=np.int8)
            if use_fold
            else np.empty(ctx.num_arcs, dtype=np.int8)
        )
    else:
        sim_np = None
    if use_fold:
        if batched:
            if use_store:
                engine.prefold_cached(sim_np, mcn_np)
            if engine.sketch is not None:
                engine.sketch_prefold(sim_np, mcn_np)
        else:
            state0 = np.full(ctx.num_arcs, UNKNOWN, dtype=np.int8)
            if use_store:
                engine.prefold_cached(state0, mcn_np)
            if engine.sketch is not None:
                engine.sketch_prefold(state0, mcn_np)
            ctx.sim[:] = state0.tolist()
    if not batched:
        off, dst, adj, deg = ctx.off, ctx.dst, ctx.adj, ctx.deg
        sim, roles, mcn = ctx.sim, ctx.roles, ctx.mcn
    stages: list[StageRecord] = []
    #: roles as int8 end-to-end; zeros until phase 2 computes (or a
    #: snapshot restores) them.
    roles_np = np.zeros(n, dtype=np.int8)
    uf = AtomicUnionFind(n)

    # ==== Checkpoint/resume (same protocol as ppscan) ====================
    ck = checkpoint
    restored_cursor = 0
    restored_pending: list[tuple[int, int]] | None = None
    partial_records: list[TaskCost] = []
    phase_no = 0

    def _save_ckpt(
        phase: str,
        pending: list[tuple[int, int]] | None = None,
        partial: list[TaskCost] | None = None,
    ) -> int:
        arrays: dict[str, np.ndarray] = {
            "sim": (
                sim_np.copy()
                if batched
                else np.asarray(ctx.sim, dtype=np.int8)
            ),
            "roles": roles_np.copy(),
            "uf_parent": uf.snapshot()["parent"],
        }
        if use_store:
            entry = store.entry_for(graph)
            arrays["store_overlap"] = entry.overlap
            arrays["store_coverage"] = np.packbits(entry.coverage)
        meta: dict = {
            "cursor": len(stages),
            "stage_records": [s.as_dict() for s in stages],
            "counter": counter.as_dict(),
        }
        if pending is not None:
            arrays["pending"] = np.asarray(
                pending, dtype=np.int64
            ).reshape(-1, 2)
            meta["partial_records"] = [
                r.as_dict() for r in (partial or [])
            ]
        return ck.save(arrays=arrays, meta=meta, phase=phase)

    if ck is not None:
        ck.bind(
            graph,
            params,
            algorithm="scanxp",
            exec_mode=exec_mode,
            extra={"threshold": int(threshold)}
            | (
                {"sketch": engine.sketch.key()}
                if engine.sketch is not None
                else {}
            ),
        )
        snap = ck.load_latest()
        if snap is not None:
            restored_cursor = int(snap.meta["cursor"])
            snap_sim = np.asarray(snap.arrays["sim"], dtype=np.int8)
            roles_np = np.asarray(
                snap.arrays["roles"], dtype=np.int8
            ).copy()
            if batched:
                sim_np = snap_sim.copy()
            else:
                ctx.sim[:] = snap_sim.tolist()
                sim = ctx.sim
                roles[:] = roles_np.tolist()
            uf.restore({"parent": snap.arrays["uf_parent"]})
            if use_store and "store_overlap" in snap.arrays:
                entry = store.entry_for(graph)
                entry.overlap = np.asarray(
                    snap.arrays["store_overlap"], dtype=np.int64
                ).copy()
                entry.coverage = np.unpackbits(
                    np.asarray(
                        snap.arrays["store_coverage"], dtype=np.uint8
                    ),
                    count=entry.num_arcs,
                ).astype(bool)
                entry.dirty = True
            stages.extend(
                StageRecord.from_dict(d)
                for d in snap.meta.get("stage_records", [])
            )
            saved_counter = snap.meta.get("counter")
            if isinstance(saved_counter, dict):
                for field, value in saved_counter.items():
                    if field in type(counter).__slots__:
                        setattr(counter, field, int(value))
            if "pending" in snap.arrays:
                restored_pending = [
                    (int(b), int(e))
                    for b, e in np.asarray(snap.arrays["pending"])
                    .reshape(-1, 2)
                    .tolist()
                ]
                partial_records = [
                    TaskCost.from_dict(d)
                    for d in snap.meta.get("partial_records", [])
                ]

    def _run_stage(name, needs, run_task, commit) -> None:
        nonlocal restored_pending, partial_records, phase_no
        this_phase = phase_no
        phase_no += 1
        if this_phase < restored_cursor:
            return  # effects and record restored from the snapshot
        t_stage = time.perf_counter()
        if this_phase == restored_cursor and restored_pending is not None:
            tasks = restored_pending
            records = list(partial_records)
            restored_pending = None
            partial_records = []
        else:
            tasks = degree_based_tasks(
                deg_np if batched else deg, needs, threshold
            )
            records = []
        chunk = (
            len(tasks)
            if ck is None or ck.every is None
            else max(1, ck.every)
        )
        pos = 0
        try:
            while pos < len(tasks):
                batch_tasks = tasks[pos : pos + chunk]
                if tracer.enabled:
                    with tracer.span(name, lane=0, tasks=len(batch_tasks)):
                        recs = backend.run_phase(
                            batch_tasks, run_task, commit
                        )
                else:
                    recs = backend.run_phase(batch_tasks, run_task, commit)
                records.extend(recs)
                pos += len(batch_tasks)
                if ck is not None and pos < len(tasks):
                    _save_ckpt(name, pending=tasks[pos:], partial=records)
        except ExecutionFaultError as exc:
            located = exc.locate(stage=name, algorithm="scanxp")
            if ck is not None:
                epoch = _save_ckpt(
                    name, pending=tasks[pos:], partial=records
                )
                raise ResumableAbort.from_fault(
                    located, epoch=epoch, directory=ck.directory
                )
            raise located
        stages.append(StageRecord(name, records, time.perf_counter() - t_stage))
        if ck is not None:
            _save_ckpt(name)

    # -- Phase 1: exhaustive similarity, one full intersection per arc ----

    def similarity_task(beg: int, end: int):
        snap = (counter.scalar_cmp, counter.vector_ops, counter.invocations)
        writes: list[tuple[int, int]] = []
        arcs = 0
        for u in range(beg, end):
            adj_u = adj[u]
            for arc in range(off[u], off[u + 1]):
                arcs += 1
                if use_fold:
                    # Prefolded arcs (store- or sketch-decided) are done;
                    # the rest go through the store when attached (a miss
                    # runs an exact merge count and records it, so the
                    # mirror arc becomes a hit) or a plain exact count.
                    if sim[arc] == UNKNOWN:
                        if use_store:
                            state = cached_arc(
                                arc, adj_u, adj[dst[arc]], mcn[arc]
                            )
                        else:
                            common = pivot_vectorized_count(
                                adj_u,
                                adj[dst[arc]],
                                lanes=lanes,
                                counter=counter,
                            )
                            state = SIM if common + 2 >= mcn[arc] else NSIM
                        writes.append((arc, state))
                    continue
                common = pivot_vectorized_count(
                    adj_u, adj[dst[arc]], lanes=lanes, counter=counter
                )
                writes.append((arc, SIM if common + 2 >= mcn[arc] else NSIM))
        cost = TaskCost(
            scalar_cmp=counter.scalar_cmp - snap[0],
            vector_ops=counter.vector_ops - snap[1],
            compsims=counter.invocations - snap[2],
            arcs=arcs,
        )
        return writes, cost

    def commit_similarity(writes) -> None:
        for arc, state in writes:
            sim[arc] = state

    def similarity_task_batched(beg: int, end: int):
        snap = (counter.scalar_cmp, counter.vector_ops, counter.invocations)
        a0, a1 = int(off_np[beg]), int(off_np[end])
        arcs_np = np.arange(a0, a1, dtype=np.int64)
        # Full counts for the whole range in one batch call — exhaustive
        # like the scalar task (no trivial-predicate skip, no mirroring),
        # so the workload stays independent of ε.
        counts = batch.arc_counts(arcs_np, counter=counter, lanes=lanes)
        states = np.where(counts + 2 >= mcn_np[a0:a1], SIM, NSIM).astype(
            np.int8
        )
        cost = TaskCost(
            scalar_cmp=counter.scalar_cmp - snap[0],
            vector_ops=counter.vector_ops - snap[1],
            compsims=counter.invocations - snap[2],
            arcs=a1 - a0,
        )
        return (a0, states), cost

    def commit_similarity_batched(writes) -> None:
        a0, states = writes
        sim_np[a0 : a0 + states.size] = states

    def similarity_task_batched_cached(beg: int, end: int):
        snap = (counter.scalar_cmp, counter.vector_ops, counter.invocations)
        a0, a1 = int(off_np[beg]), int(off_np[end])
        unknown = np.flatnonzero(sim_np[a0:a1] == UNKNOWN).astype(np.int64) + a0
        states = engine.resolve_arcs(unknown, mcn=mcn_np[unknown])
        cost = TaskCost(
            scalar_cmp=counter.scalar_cmp - snap[0],
            vector_ops=counter.vector_ops - snap[1],
            compsims=counter.invocations - snap[2],
            arcs=a1 - a0,
        )
        return (unknown, states), cost

    def commit_similarity_batched_cached(writes) -> None:
        unknown, states = writes
        sim_np[unknown] = states

    if batched:
        batch = ctx.engine.batch_intersector()
        _run_stage(
            "similarity computation",
            None,
            similarity_task_batched_cached if use_fold else similarity_task_batched,
            commit_similarity_batched_cached
            if use_fold
            else commit_similarity_batched,
        )
    else:
        _run_stage(
            "similarity computation", None, similarity_task, commit_similarity
        )

    # -- Phase 2: roles from exact similar-degree counts -------------------

    if phase_no >= restored_cursor:
        t_stage = time.perf_counter()
        if not batched:
            sim_np = ctx.sim_array()
        sd = np.bincount(src_np[sim_np == SIM], minlength=n)
        roles_np = np.where(sd >= mu, CORE, NONCORE).astype(np.int8)
        if not batched:
            roles[:] = roles_np.tolist()
        role_tasks = [
            TaskCost(arcs=int(off_np[end] - off_np[beg]))
            for beg, end in degree_based_tasks(
                deg_np if batched else deg, None, threshold
            )
        ]
        stages.append(
            StageRecord(
                "role computation", role_tasks, time.perf_counter() - t_stage
            )
        )
        if tracer.enabled:
            tracer.add_span(
                "role computation",
                t_stage,
                time.perf_counter(),
                lane=0,
                depth=1,
                tasks=len(role_tasks),
            )
        if ck is not None:
            _save_ckpt("role computation")
    elif not batched:
        sim_np = ctx.sim_array()
    phase_no += 1

    # -- Phase 3: core clustering over known similar edges ----------------

    def cluster_task(beg: int, end: int):
        unions: list[tuple[int, int]] = []
        arcs = 0
        atomics = 0
        for u in range(beg, end):
            if roles[u] != CORE:
                continue
            for arc in range(off[u], off[u + 1]):
                arcs += 1
                v = dst[arc]
                if v <= u or roles[v] != CORE or sim[arc] != SIM:
                    continue
                arcs += 2
                if not uf.same_set(u, v):
                    unions.append((u, v))
                    atomics += 1
        return unions, TaskCost(arcs=arcs, atomics=atomics)

    def cluster_task_batched(beg: int, end: int):
        a0, a1 = int(off_np[beg]), int(off_np[end])
        s_src, s_dst = src_np[a0:a1], dst_np[a0:a1]
        mask = (
            (s_dst > s_src)
            & (roles_np[s_src] == CORE)
            & (roles_np[s_dst] == CORE)
            & (sim_np[a0:a1] == SIM)
        )
        unions: list[tuple[int, int]] = []
        atomics = 0
        edges_u = s_src[mask].tolist()
        edges_v = s_dst[mask].tolist()
        arcs = int(deg_np[beg:end][roles_np[beg:end] == CORE].sum())
        arcs += 2 * len(edges_u)
        for u, v in zip(edges_u, edges_v):
            if not uf.same_set(u, v):
                unions.append((u, v))
                atomics += 1
        return unions, TaskCost(arcs=arcs, atomics=atomics)

    def commit_cluster(unions) -> None:
        for u, v in unions:
            uf.union(u, v)

    _run_stage(
        "core clustering",
        roles_np == CORE if batched else [r == CORE for r in roles],
        cluster_task_batched if batched else cluster_task,
        commit_cluster,
    )

    # -- Phase 4: cluster ids + non-core memberships ----------------------

    t_stage = time.perf_counter()
    cluster_id: dict[int, int] = {}
    labels = np.full(n, -1, dtype=np.int64)
    for u in np.flatnonzero(roles_np == CORE).tolist():
        root = uf.find(u)
        if root not in cluster_id:
            cluster_id[root] = u
        labels[u] = cluster_id[root]
    pairs: list[tuple[int, int]] = []
    if batched:
        sel = np.flatnonzero(
            (roles_np[src_np] == CORE)
            & (roles_np[dst_np] == NONCORE)
            & (sim_np == SIM)
        )
        pairs = list(
            zip(labels[src_np[sel]].tolist(), dst_np[sel].tolist())
        )
        pair_arcs = int(deg_np[roles_np == CORE].sum())
    else:
        pair_arcs = 0
        for u in range(n):
            if roles[u] != CORE:
                continue
            cid = int(labels[u])
            for arc in range(off[u], off[u + 1]):
                pair_arcs += 1
                v = dst[arc]
                if roles[v] == NONCORE and sim[arc] == SIM:
                    pairs.append((cid, v))
    stages.append(
        StageRecord(
            "non-core clustering",
            [TaskCost(arcs=pair_arcs, atomics=uf.num_finds)],
            time.perf_counter() - t_stage,
        )
    )
    if tracer.enabled:
        tracer.add_span(
            "non-core clustering", t_stage, time.perf_counter(), lane=0, depth=1
        )

    record = RunRecord(
        algorithm="SCAN-XP", stages=stages, wall_seconds=time.perf_counter() - t0
    )
    if root_span is not None:
        tracer.end_span(root_span)
        tracer.count("run.scanxp", 1)
    return ClusteringResult(
        algorithm="SCAN-XP",
        params=params,
        roles=roles_np,
        core_labels=labels,
        noncore_pairs=pairs,
        record=record,
    )
