"""Incrementally-maintained GS*-Index over a dynamic graph.

The GS*-Index paper supports edge updates with local index maintenance;
this module reproduces that capability on top of
:class:`~repro.graph.dynamic.DynamicGraph`:

* inserting/removing edge ``{u, v}`` updates exactly the affected state —
  the overlap of ``{u, v}`` itself, the overlaps of edges incident to
  ``u`` or ``v`` whose common-neighbor count changed (an O(d(u)+d(v))
  membership sweep), and the neighbor orders of ``{u, v} ∪ N(u) ∪ N(v)``
  (the only vertices whose similarity keys involve the changed degrees);
* queries are exact for any (ε, µ), verified against rebuilding a static
  :class:`~repro.core.gsindex.GSIndex` from a snapshot.

Similarity keys stay exact rationals (``overlap² / ((d(u)+1)(d(v)+1))``)
so boundary queries agree with every other implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.dynamic import DynamicGraph
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..types import CORE, NONCORE, ScanParams
from ..unionfind import UnionFind
from .result import ClusteringResult

__all__ = ["BatchMaintenance", "DynamicGSIndex"]


def _overlap_closed(adj_u: list[int], adj_v: list[int]) -> int:
    """Closed-neighborhood overlap of an *adjacent* pair: |N∩N| + 2."""
    i = j = common = 0
    na, nb = len(adj_u), len(adj_v)
    while i < na and j < nb:
        x, y = adj_u[i], adj_v[j]
        if x < y:
            i += 1
        elif x > y:
            j += 1
        else:
            common += 1
            i += 1
            j += 1
    return common + 2


def _contains(sorted_list: list[int], x: int) -> bool:
    from bisect import bisect_left

    i = bisect_left(sorted_list, x)
    return i < len(sorted_list) and sorted_list[i] == x


@dataclass(frozen=True)
class BatchMaintenance:
    """What one :meth:`DynamicGSIndex.apply_batch` call actually did.

    ``frontier`` is the affected-arc frontier — every undirected pair
    ``(u, v)`` with ``u < v`` whose closed-neighborhood overlap was
    recomputed because an endpoint's adjacency changed; ``touched`` is
    the set of vertices whose adjacency itself changed (endpoints of
    effective edits); ``dirty`` additionally includes their
    post-batch neighbors (the vertices whose neighbor orders must be
    refreshed, since their similarity keys involve changed degrees).
    """

    inserted: int
    removed: int
    skipped: int
    touched: tuple[int, ...]
    frontier: tuple[tuple[int, int], ...]
    dirty: tuple[int, ...] = field(default=())

    @property
    def effective(self) -> int:
        return self.inserted + self.removed


class DynamicGSIndex:
    """GS*-Index with incremental edge maintenance."""

    def __init__(self, graph: DynamicGraph) -> None:
        self.graph = graph
        self._overlap: dict[tuple[int, int], int] = {}
        self._order: list[list[int]] = [[] for _ in range(graph.num_vertices)]
        self._dirty: set[int] = set()
        self.maintenance_ops = 0
        for u in range(graph.num_vertices):
            adj_u = graph.neighbors(u)
            for v in adj_u:
                if u < v:
                    self._overlap[(u, v)] = _overlap_closed(
                        adj_u, graph.neighbors(v)
                    )
            self._dirty.add(u)

    # -- similarity keys -------------------------------------------------

    def _key(self, u: int, v: int) -> tuple[int, int]:
        """Exact similarity² of edge (u, v) as (numerator, denominator)."""
        edge = (u, v) if u < v else (v, u)
        overlap = self._overlap[edge]
        return (
            overlap * overlap,
            (self.graph.degree(u) + 1) * (self.graph.degree(v) + 1),
        )

    def _similar(self, u: int, v: int, eps_num: int, eps_den: int) -> bool:
        num, den = self._key(u, v)
        return num * eps_den >= eps_num * den

    # -- maintenance ------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert ``{u, v}`` and repair the index locally."""
        if not self.graph.insert_edge(u, v):
            return False
        adj_u, adj_v = self.graph.neighbors(u), self.graph.neighbors(v)
        # The new edge's own overlap.
        self._overlap[(min(u, v), max(u, v))] = _overlap_closed(adj_u, adj_v)
        self.maintenance_ops += len(adj_u) + len(adj_v)
        # N(u) gained v: every edge (u, w) with v in N(w) gains a common
        # neighbor; symmetrically for v.
        for a, b in ((u, v), (v, u)):
            adj_a = self.graph.neighbors(a)
            for w in adj_a:
                if w == b:
                    continue
                self.maintenance_ops += 1
                if _contains(self.graph.neighbors(w), b):
                    edge = (a, w) if a < w else (w, a)
                    self._overlap[edge] += 1
        self._mark_dirty(u, v)
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove ``{u, v}`` and repair the index locally.

        Validates ``(u, v)`` first so invalid endpoints raise exactly as
        :meth:`insert_edge` does (``IndexError`` out of range,
        ``ValueError`` on a self loop) instead of reporting the edge as
        merely absent.
        """
        self.graph._check(u, v)
        if not self.graph.has_edge(u, v):
            return False
        # Decrement overlaps before the removal mutates the lists.
        for a, b in ((u, v), (v, u)):
            for w in self.graph.neighbors(a):
                if w == b:
                    continue
                self.maintenance_ops += 1
                if _contains(self.graph.neighbors(w), b):
                    edge = (a, w) if a < w else (w, a)
                    self._overlap[edge] -= 1
        self.graph.remove_edge(u, v)
        del self._overlap[(min(u, v), max(u, v))]
        self._mark_dirty(u, v)
        return True

    def apply_batch(self, edits) -> BatchMaintenance:
        """Apply a batch of ``(insert, u, v)`` edits in one repair pass.

        Instead of repairing overlaps after every edit (the per-edge
        :meth:`insert_edge` / :meth:`remove_edge` path), the batch is
        applied to the graph first and the index is repaired once:

        * an arc's closed-neighborhood overlap can only change if one of
          its endpoints' adjacency changed, so the affected-arc frontier
          is exactly the arcs incident to the touched-vertex set ``T``;
        * each frontier arc's overlap is recomputed by a single sorted
          merge — once per arc, no matter how many edits touched its
          endpoints;
        * neighbor orders need refreshing only for ``T ∪ N(T)`` (the
          vertices whose similarity keys involve a changed degree).

        The whole batch is validated up front, so an invalid edit raises
        (``IndexError`` / ``ValueError``) before any mutation happens.
        Duplicate inserts and absent removes are counted as ``skipped``.
        """
        graph = self.graph
        ops: list[tuple[bool, int, int]] = []
        for op in edits:
            insert, u, v = bool(op[0]), int(op[1]), int(op[2])
            graph._check(u, v)
            ops.append((insert, u, v))

        inserted = removed = skipped = 0
        touched: set[int] = set()
        removed_pairs: set[tuple[int, int]] = set()
        for insert, u, v in ops:
            pair = (u, v) if u < v else (v, u)
            if insert:
                if graph.insert_edge(u, v):
                    inserted += 1
                    touched.update(pair)
                    removed_pairs.discard(pair)
                else:
                    skipped += 1
            else:
                if graph.remove_edge(u, v):
                    removed += 1
                    touched.update(pair)
                    removed_pairs.add(pair)
                else:
                    skipped += 1

        # Overlap keys of edges that no longer exist.
        for pair in removed_pairs:
            self._overlap.pop(pair, None)

        # Recompute every frontier arc's overlap exactly once.
        frontier: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for a in touched:
            for b in graph.neighbors(a):
                pair = (a, b) if a < b else (b, a)
                if pair in seen:
                    continue
                seen.add(pair)
                self._overlap[pair] = _overlap_closed(
                    graph.neighbors(pair[0]), graph.neighbors(pair[1])
                )
                self.maintenance_ops += graph.degree(pair[0]) + graph.degree(
                    pair[1]
                )
                frontier.append(pair)

        dirty = set(touched)
        for a in touched:
            dirty.update(graph.neighbors(a))
        self._dirty.update(dirty)
        return BatchMaintenance(
            inserted=inserted,
            removed=removed,
            skipped=skipped,
            touched=tuple(sorted(touched)),
            frontier=tuple(sorted(frontier)),
            dirty=tuple(sorted(dirty)),
        )

    def overlap(self, u: int, v: int) -> int:
        """Exact closed-neighborhood overlap of the existing edge ``{u, v}``."""
        return self._overlap[(u, v) if u < v else (v, u)]

    def overlaps(self):
        """Iterate ``((u, v), overlap)`` over every edge (``u < v``)."""
        return iter(self._overlap.items())

    def _mark_dirty(self, u: int, v: int) -> None:
        self._dirty.add(u)
        self._dirty.add(v)
        self._dirty.update(self.graph.neighbors(u))
        self._dirty.update(self.graph.neighbors(v))

    def _refresh_orders(self) -> None:
        graph = self.graph
        overlap = self._overlap
        for u in self._dirty:
            # Precompute each neighbor's exact key once: re-deriving it
            # per comparison dominates batched maintenance otherwise.
            du1 = graph.degree(u) + 1
            keyed = []
            for v in graph.neighbors(u):
                o = overlap[(u, v) if u < v else (v, u)]
                keyed.append((o * o, du1 * (graph.degree(v) + 1), v))
            keyed.sort(key=lambda t: -(t[0] / t[1]))
            # Exact repair of float-key near-ties (descending).
            for i in range(1, len(keyed)):
                j = i
                while j > 0:
                    na, da, _ = keyed[j - 1]
                    nb, db, _ = keyed[j]
                    if na * db < nb * da:
                        keyed[j - 1], keyed[j] = keyed[j], keyed[j - 1]
                        j -= 1
                    else:
                        break
            self._order[u] = [t[2] for t in keyed]
        self._dirty.clear()

    def refresh(self) -> None:
        """Re-sort every dirty vertex's neighbor order (idempotent)."""
        self._refresh_orders()

    def similar_prefix(
        self, u: int, eps_num: int, eps_den: int
    ) -> list[int]:
        """The ε-similar prefix of ``u``'s neighbor order (descending σ).

        Callers must :meth:`refresh` first; ``eps_num`` / ``eps_den``
        are the squared ε fraction's numerator and denominator (the same
        integers :meth:`query` compares against).
        """
        prefix: list[int] = []
        for v in self._order[u]:
            if not self._similar(u, v, eps_num, eps_den):
                break
            prefix.append(v)
        return prefix

    # -- queries ------------------------------------------------------------

    def query(self, params: ScanParams) -> ClusteringResult:
        """Exact SCAN clustering of the current graph state."""
        t0 = time.perf_counter()
        self._refresh_orders()
        graph = self.graph
        n = graph.num_vertices
        frac = params.eps_fraction
        eps_num = frac.numerator * frac.numerator
        eps_den = frac.denominator * frac.denominator

        arcs_walked = n
        roles = np.full(n, NONCORE, dtype=np.int8)
        for u in range(n):
            order = self._order[u]
            if len(order) >= params.mu and self._similar(
                u, order[params.mu - 1], eps_num, eps_den
            ):
                roles[u] = CORE

        uf = UnionFind(n)
        pairs: list[tuple[int, int]] = []
        for u in np.flatnonzero(roles == CORE).tolist():
            for v in self._order[u]:
                if not self._similar(u, v, eps_num, eps_den):
                    break
                arcs_walked += 1
                if roles[v] == CORE:
                    if u < v:
                        uf.union(u, v)
                else:
                    pairs.append((u, v))

        cluster_id: dict[int, int] = {}
        labels = np.full(n, -1, dtype=np.int64)
        for u in np.flatnonzero(roles == CORE).tolist():
            root = uf.find(u)
            if root not in cluster_id:
                cluster_id[root] = u
            labels[u] = cluster_id[root]
        pair_rows = [(int(labels[u]), v) for u, v in pairs]

        record = RunRecord(
            algorithm="DynamicGS*-Index (query)",
            stages=[
                StageRecord(
                    "index query",
                    [TaskCost(arcs=arcs_walked, atomics=uf.num_unions)],
                )
            ],
            wall_seconds=time.perf_counter() - t0,
        )
        record.apportion_wall()
        return ClusteringResult(
            algorithm="DynamicGS*-Index",
            params=params,
            roles=roles,
            core_labels=labels,
            noncore_pairs=pair_rows,
            record=record,
        )
