"""GS*-Index (Wen et al., VLDB'17) — index-based structural clustering.

The paper's related work (§3.3) positions ppSCAN against GS*-Index: an
index over *exact similarity values* answers SCAN queries for arbitrary
(ε, µ) quickly, but "the indexing phase involves exhaustive similarity
computations, which are prohibitively expensive for massive graphs".
This module implements both sides of that trade-off so the claim is
measurable:

* **Construction** computes the exact closed-neighborhood overlap of
  every edge (exhaustive, one full intersection per undirected edge) and
  stores, per vertex, its arcs sorted by descending similarity — the
  neighbor-order structure — plus the per-``k`` core thresholds — the
  core-order structure.
* **Query(ε, µ)** resolves every core in O(1) per vertex (is the µ-th
  best neighbor similarity ≥ ε?), walks only the similar prefix of each
  core's neighbor order, and reuses the library's union-find for
  clusters.  Results are bit-identical to ppSCAN for every (ε, µ).

Similarity values are kept exact: an edge's similarity is the rational
``overlap² / ((d(u)+1)(d(v)+1))``, compared to ``ε²`` in integer
arithmetic, so index queries agree with the online algorithms even at
threshold boundaries.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from ..graph.csr import CSRGraph
from ..intersect import OpCounter, merge_count
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..types import CORE, NONCORE, ScanParams
from ..unionfind import UnionFind
from .context import reverse_arc_index
from .result import ClusteringResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import SimilarityStore
    from ..sketch import SketchParams

__all__ = ["GSIndex"]

#: Core orders are materialized for µ up to this bound (beyond it the
#: per-vertex neighbor-order check answers in O(µ) anyway).
_CORE_ORDER_MAX_K = 64


class GSIndex:
    """Similarity index supporting exact SCAN queries at any (ε, µ).

    With ``sketch=SketchParams(error>0)`` the construction stores sketch
    *estimates* instead of exhaustive exact overlaps (see
    ``docs/approximate.md``): construction drops from O(Σ deg(u)+deg(v))
    to O(m · sketch) while queries keep their exact integer comparison
    machinery — against approximate values.  A conservative sketch
    (``error == 0``) keeps the construction exact and is a no-op.
    """

    def __init__(
        self,
        graph: CSRGraph,
        store: "SimilarityStore | None" = None,
        sketch: "SketchParams | None" = None,
    ) -> None:
        t0 = time.perf_counter()
        self.graph = graph
        n = graph.num_vertices
        counter = OpCounter()

        off = graph.offsets.tolist()
        dst = graph.dst.tolist()
        deg = graph.degrees.tolist()
        adj = [dst[off[u] : off[u + 1]] for u in range(n)]
        rev = reverse_arc_index(graph).tolist()

        #: With ``sketch`` and ``error > 0`` the stored overlaps are
        #: sketch *estimates*, so the whole index — and every query made
        #: through it — is approximate.  ``error == 0`` keeps the exact
        #: exhaustive construction: the index has no per-query ε to gate
        #: against, so a conservative sketch cannot certify its overlap
        #: values and the sketch is a documented no-op.
        self.approximate = sketch is not None and sketch.error > 0.0

        if self.approximate:
            # Estimate every undirected edge's overlap from the sketches
            # in one vectorized pass and mirror it.  The store is left
            # untouched in both directions: estimates must never be
            # recorded as exact overlaps, and folding cached exact values
            # into an approximate index would make its accuracy depend on
            # cache warmth.
            from ..sketch import build_sketches, estimate_overlaps

            src_np = graph.arc_source()
            upper = np.flatnonzero(src_np < graph.dst)
            est = estimate_overlaps(
                build_sketches(graph, sketch), graph, upper, src=src_np
            )
            overlap_np = np.zeros(graph.num_arcs, dtype=np.int64)
            overlap_np[upper] = est
            rev_np = reverse_arc_index(graph)
            overlap_np[rev_np[upper]] = est
            overlap = overlap_np.tolist()
            arcs_scanned = int(upper.size)
            counter.invocations += arcs_scanned
        else:
            # The exact index construction IS an exhaustive overlap pass,
            # so it both profits from and fully populates a similarity
            # store.
            entry = store.entry_for(graph) if store is not None else None
            cov = entry.coverage.tolist() if entry is not None else None
            cached = entry.overlap.tolist() if entry is not None else None
            missed_arcs: list[int] = []
            missed_over: list[int] = []
            hits = 0

            # Exact closed-neighborhood overlap per arc (computed once per
            # undirected edge, mirrored through the reverse-arc index).
            overlap = [0] * graph.num_arcs
            arcs_scanned = 0
            for u in range(n):
                adj_u = adj[u]
                for arc in range(off[u], off[u + 1]):
                    v = dst[arc]
                    if u < v:
                        arcs_scanned += 1
                        if cov is not None and cov[arc]:
                            common = cached[arc]
                            hits += 1
                        else:
                            common = merge_count(adj_u, adj[v], counter) + 2
                            if cov is not None:
                                missed_arcs.append(arc)
                                missed_over.append(common)
                        overlap[arc] = common
                        overlap[rev[arc]] = common
            if entry is not None:
                entry.hits += hits
                if missed_arcs:
                    entry.record(
                        np.asarray(missed_arcs, dtype=np.int64),
                        np.asarray(missed_over, dtype=np.int64),
                    )
                    entry.misses += len(missed_arcs)

        # Neighbor order: arcs of u sorted by descending similarity.
        # Exact sort key per arc: overlap^2 / ((d(u)+1)(d(v)+1)) compared
        # by cross multiplication — stored as the integer pair
        # (overlap^2, (d(u)+1)(d(v)+1)).
        self._overlap = overlap
        self._deg = deg
        self._off = off
        self._dst = dst
        neighbor_order: list[list[int]] = []
        sim_num: list[int] = [0] * graph.num_arcs  # overlap^2
        sim_den: list[int] = [1] * graph.num_arcs  # (du+1)(dv+1)
        for u in range(n):
            du1 = deg[u] + 1
            arcs = list(range(off[u], off[u + 1]))
            for arc in arcs:
                v = dst[arc]
                sim_num[arc] = overlap[arc] * overlap[arc]
                sim_den[arc] = du1 * (deg[v] + 1)
            # Descending by exact similarity: a >= b iff
            # num_a * den_b >= num_b * den_a.
            arcs.sort(key=lambda a: -(sim_num[a] / sim_den[a]))
            arcs = self._fix_float_sort(arcs, sim_num, sim_den)
            neighbor_order.append(arcs)
        self._sim_num = sim_num
        self._sim_den = sim_den
        self._neighbor_order = neighbor_order

        # Core orders (the index's second structure): for each k, the
        # vertices with >= k neighbors sorted by their k-th best
        # similarity, descending.  A (eps, mu) core query is then a
        # prefix of core_order[mu] instead of an O(n) scan.
        max_core_k = min(int(max(deg, default=0)), _CORE_ORDER_MAX_K)
        self._core_orders: list[list[int]] = [[] for _ in range(max_core_k + 1)]
        for k in range(1, max_core_k + 1):
            candidates = [
                u for u in range(n) if len(neighbor_order[u]) >= k
            ]
            def kth_arc(u: int, _k: int = k) -> int:
                return neighbor_order[u][_k - 1]

            candidates.sort(
                key=lambda u: -(sim_num[kth_arc(u)] / sim_den[kth_arc(u)])
            )
            # Exact repair of float-key near-ties (same invariant as the
            # neighbor orders: strictly descending by exact similarity).
            for i in range(1, len(candidates)):
                j = i
                while j > 0:
                    a = kth_arc(candidates[j - 1])
                    b = kth_arc(candidates[j])
                    if sim_num[a] * sim_den[b] < sim_num[b] * sim_den[a]:
                        candidates[j - 1], candidates[j] = (
                            candidates[j],
                            candidates[j - 1],
                        )
                        j -= 1
                    else:
                        break
            self._core_orders[k] = candidates

        cost = TaskCost(
            scalar_cmp=counter.scalar_cmp,
            compsims=counter.invocations,
            arcs=arcs_scanned + graph.num_arcs,
        )
        self.construction_record = RunRecord(
            algorithm="GS*-Index (construction)",
            stages=[StageRecord("index construction", [cost])],
            wall_seconds=time.perf_counter() - t0,
        )
        self.construction_record.apportion_wall()

    def memory_bytes(self) -> int:
        """Rough resident footprint of the index structures.

        Python-list ints cost far more than 8 bytes each; 28 bytes per
        element approximates the list-slot pointer plus a small-int
        object amortized over interning.  This is a budgeting estimate
        (for the service's LRU eviction), not an exact measurement.
        """
        per_element = 28
        count = len(self._overlap) + len(self._sim_num) + len(self._sim_den)
        count += sum(len(order) for order in self._neighbor_order)
        count += sum(len(order) for order in self._core_orders)
        return per_element * count

    @staticmethod
    def _fix_float_sort(
        arcs: list[int], num: list[int], den: list[int]
    ) -> list[int]:
        """Repair float-key sorting with exact adjacent-pair comparisons.

        Float keys order almost everything; a single insertion-sort pass
        with exact integer comparison fixes ties/near-ties, keeping the
        prefix-walk invariant exact.
        """
        for i in range(1, len(arcs)):
            j = i
            while j > 0:
                a, b = arcs[j - 1], arcs[j]
                # descending: swap if sim(a) < sim(b)
                if num[a] * den[b] < num[b] * den[a]:
                    arcs[j - 1], arcs[j] = b, a
                    j -= 1
                else:
                    break
        return arcs

    # -- predicates -------------------------------------------------------

    def _arc_similar(self, arc: int, eps_num: int, eps_den: int) -> bool:
        """Exact ``σ(arc) >= ε`` via cross multiplication of squares."""
        return (
            self._sim_num[arc] * eps_den >= eps_num * self._sim_den[arc]
        )

    def edge_similarity(self, u: int, v: int) -> float:
        """The raw σ(u, v) stored in the index (float view)."""
        arc = self.graph.edge_offset(u, v)
        return (self._sim_num[arc] / self._sim_den[arc]) ** 0.5

    def is_core(self, u: int, params: ScanParams) -> bool:
        """Core predicate in O(µ) from the neighbor order."""
        order = self._neighbor_order[u]
        if len(order) < params.mu:
            return False
        frac = params.eps_fraction
        eps_num = frac.numerator * frac.numerator
        eps_den = frac.denominator * frac.denominator
        arc = order[params.mu - 1]  # µ-th most similar neighbor
        return self._arc_similar(arc, eps_num, eps_den)

    # -- persistence ----------------------------------------------------

    def save(self, path) -> None:
        """Persist the index (overlaps, orders) to an ``.npz`` file.

        The file embeds a fingerprint of the graph (vertex count, arc
        count, adjacency checksum); :meth:`load` refuses a mismatched
        graph rather than answering queries about the wrong topology.
        """
        order_flat = np.concatenate(
            [np.array(o, dtype=np.int64) for o in self._neighbor_order]
            or [np.zeros(0, dtype=np.int64)]
        )
        order_offsets = np.zeros(len(self._neighbor_order) + 1, dtype=np.int64)
        np.cumsum(
            [len(o) for o in self._neighbor_order],
            out=order_offsets[1:],
        )
        core_flat = np.concatenate(
            [np.array(o, dtype=np.int64) for o in self._core_orders]
            or [np.zeros(0, dtype=np.int64)]
        )
        core_offsets = np.zeros(len(self._core_orders) + 1, dtype=np.int64)
        np.cumsum([len(o) for o in self._core_orders], out=core_offsets[1:])
        np.savez_compressed(
            path,
            approximate=np.array([int(self.approximate)], dtype=np.int64),
            fingerprint=self._fingerprint(self.graph),
            overlap=np.array(self._overlap, dtype=np.int64),
            sim_num=np.array(self._sim_num, dtype=np.int64),
            sim_den=np.array(self._sim_den, dtype=np.int64),
            order_flat=order_flat,
            order_offsets=order_offsets,
            core_flat=core_flat,
            core_offsets=core_offsets,
        )

    @classmethod
    def load(cls, path, graph: CSRGraph) -> "GSIndex":
        """Load an index saved by :meth:`save` for the *same* graph."""
        with np.load(path) as data:
            if not np.array_equal(data["fingerprint"], cls._fingerprint(graph)):
                raise ValueError(
                    "index fingerprint does not match the supplied graph"
                )
            index = cls.__new__(cls)
            index.graph = graph
            index.approximate = bool(
                "approximate" in data.files and int(data["approximate"][0])
            )
            index._overlap = data["overlap"].tolist()
            index._sim_num = data["sim_num"].tolist()
            index._sim_den = data["sim_den"].tolist()
            index._deg = graph.degrees.tolist()
            index._off = graph.offsets.tolist()
            index._dst = graph.dst.tolist()
            oo = data["order_offsets"]
            flat = data["order_flat"]
            index._neighbor_order = [
                flat[oo[i] : oo[i + 1]].tolist() for i in range(len(oo) - 1)
            ]
            co = data["core_offsets"]
            cflat = data["core_flat"]
            index._core_orders = [
                cflat[co[i] : co[i + 1]].tolist() for i in range(len(co) - 1)
            ]
            index.construction_record = RunRecord(
                algorithm="GS*-Index (loaded)", stages=[]
            )
            return index

    @staticmethod
    def _fingerprint(graph: CSRGraph) -> np.ndarray:
        import zlib

        return np.array(
            [
                graph.num_vertices,
                graph.num_arcs,
                zlib.adler32(np.ascontiguousarray(graph.dst).tobytes()),
            ],
            dtype=np.int64,
        )

    def cores(self, params: ScanParams) -> list[int]:
        """All core vertices for (ε, µ) via the core order.

        Walks the descending µ-th-best-similarity prefix of
        ``core_order[µ]``; cost is proportional to the number of cores
        (plus the exact boundary checks), not to |V|.
        """
        frac = params.eps_fraction
        eps_num = frac.numerator * frac.numerator
        eps_den = frac.denominator * frac.denominator
        mu = params.mu
        if mu < len(self._core_orders):
            out: list[int] = []
            for u in self._core_orders[mu]:
                arc = self._neighbor_order[u][mu - 1]
                if not self._arc_similar(arc, eps_num, eps_den):
                    break  # descending prefix ends here
                out.append(u)
            out.sort()
            return out
        # Degenerate µ beyond the materialized orders: per-vertex check.
        return [
            u
            for u in range(self.graph.num_vertices)
            if len(self._neighbor_order[u]) >= mu
            and self._arc_similar(
                self._neighbor_order[u][mu - 1], eps_num, eps_den
            )
        ]

    # -- query ------------------------------------------------------------

    def query(self, params: ScanParams) -> ClusteringResult:
        """Exact SCAN clustering for (ε, µ) from the index."""
        t0 = time.perf_counter()
        graph = self.graph
        n = graph.num_vertices
        frac = params.eps_fraction
        eps_num = frac.numerator * frac.numerator
        eps_den = frac.denominator * frac.denominator
        dst = self._dst

        arcs_walked = 0
        roles = np.full(n, NONCORE, dtype=np.int8)
        for u in range(n):
            order = self._neighbor_order[u]
            if len(order) >= params.mu and self._arc_similar(
                order[params.mu - 1], eps_num, eps_den
            ):
                roles[u] = CORE
        arcs_walked += n

        uf = UnionFind(n)
        pairs: list[tuple[int, int]] = []
        core_vertices = np.flatnonzero(roles == CORE)
        # Core clustering + membership from the similar prefix only.
        for u in core_vertices.tolist():
            for arc in self._neighbor_order[u]:
                if not self._arc_similar(arc, eps_num, eps_den):
                    break  # descending order: the prefix ends here
                arcs_walked += 1
                v = dst[arc]
                if roles[v] == CORE:
                    if u < v:
                        uf.union(u, v)
                else:
                    pairs.append((u, v))

        cluster_id: dict[int, int] = {}
        labels = np.full(n, -1, dtype=np.int64)
        for u in core_vertices.tolist():
            root = uf.find(u)
            if root not in cluster_id:
                cluster_id[root] = u
            labels[u] = cluster_id[root]
        pair_rows = [(int(labels[u]), v) for u, v in pairs]

        cost = TaskCost(arcs=arcs_walked, atomics=uf.num_unions)
        record = RunRecord(
            algorithm="GS*-Index (query)",
            stages=[StageRecord("index query", [cost])],
            wall_seconds=time.perf_counter() - t0,
        )
        record.apportion_wall()
        return ClusteringResult(
            algorithm="GS*-Index",
            params=params,
            roles=roles,
            core_labels=labels,
            noncore_pairs=pair_rows,
            record=record,
        )
