"""anySCAN (Mai et al., ICDE'17) — block-iterative parallel baseline.

anySCAN grows clusters from "super-nodes" in α-sized blocks of vertices,
processing each block in parallel and synchronizing between blocks.  The
paper uses it as the strongest parallel competitor and attributes its gap
to ppSCAN to two structural causes, both modelled here:

* *dynamic memory allocation* — per-vertex candidate lists and state
  transitions allocate on the hot path (charged to ``TaskCost.allocs``;
  the machine model prices an allocation like a contended atomic), and
  the per-vertex footprint is large enough that paper-scale webbase /
  friendster exceed the 64 GB server (``estimated_memory_bytes``
  reproduces exactly that RE pattern);
* *block-synchronous execution* — one barrier per α-block instead of
  ppSCAN's seven phases, which caps scalability on big graphs.

This implementation is exact (identical clusters to SCAN/pSCAN/ppSCAN):
each block computes the full ε-neighborhood of its vertices with
similarity reuse, after which clustering proceeds over known predicates.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from ..graph.csr import CSRGraph
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..parallel.backend import ExecutionBackend, SerialBackend
from ..parallel.scheduler import degree_based_tasks
from ..parallel.supervisor import ExecutionFaultError, ResumableAbort
from ..types import CORE, NONCORE, NSIM, SIM, UNKNOWN, ScanParams
from ..unionfind import AtomicUnionFind
from .context import RunContext
from .result import ClusteringResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..checkpoint import CheckpointManager
    from ..sketch import SketchParams

__all__ = [
    "anyscan",
    "anyscan_progressive",
    "ProgressSnapshot",
    "estimated_memory_bytes",
]

#: Modelled per-vertex footprint: state machine, super-node candidate
#: vectors and allocator slack (bytes).
BYTES_PER_VERTEX = 400
#: Modelled per-undirected-edge footprint: adjacency + similarity +
#: candidate duplication (bytes).
BYTES_PER_EDGE = 40


def estimated_memory_bytes(num_vertices: int, num_edges: int) -> int:
    """anySCAN's modelled resident set for a graph of the given size.

    Calibrated so the paper's observed out-of-memory pattern on the 64 GB
    server reproduces: twitter (41.6M/684.5M) fits, webbase
    (118.1M/525.0M) and friendster (124.8M/1806.1M) do not.
    """
    return BYTES_PER_VERTEX * num_vertices + BYTES_PER_EDGE * num_edges


def anyscan(
    graph: CSRGraph,
    params: ScanParams,
    *,
    alpha: int = 512,
    backend: ExecutionBackend | None = None,
    task_threshold: int | None = None,
    memory_limit_bytes: int | None = None,
    checkpoint: "CheckpointManager | None" = None,
    sketch: "SketchParams | None" = None,
) -> ClusteringResult:
    """Run anySCAN; returns the canonical clustering result.

    Raises ``MemoryError`` when the modelled footprint exceeds
    ``memory_limit_bytes`` (used by the figure benches to reproduce the
    paper's RE entries at paper scale; ``None`` disables the check).

    ``checkpoint`` attaches a :class:`~repro.checkpoint.CheckpointManager`.
    anySCAN's natural barriers are its α-blocks: each summarization block
    and the merging pass is one checkpoint site (plus mid-site snapshots
    every ``every`` tasks), and the final labeling is pure derivation that
    is always recomputed.  Resume is bit-identical.
    """
    if alpha < 1:
        raise ValueError("alpha must be >= 1")
    if memory_limit_bytes is not None:
        need = estimated_memory_bytes(graph.num_vertices, graph.num_edges)
        if need > memory_limit_bytes:
            raise MemoryError(
                f"anySCAN footprint {need / 1e9:.1f} GB exceeds limit "
                f"{memory_limit_bytes / 1e9:.1f} GB"
            )
    t0 = time.perf_counter()
    ctx = RunContext(graph, params, kernel="merge", sketch=sketch)
    backend = backend if backend is not None else SerialBackend()
    counter = ctx.engine.counter
    off, dst, adj, deg = ctx.off, ctx.dst, ctx.adj, ctx.deg
    sim, roles, mcn, rev = ctx.sim, ctx.roles, ctx.mcn, ctx.rev
    if ctx.engine.sketch is not None:
        # Prefold every sketch-decidable arc before the α-block loop; the
        # block tasks already skip non-UNKNOWN arcs, so only the exact
        # fallback remainder reaches the merge kernel.
        state0 = np.full(ctx.num_arcs, UNKNOWN, dtype=np.int8)
        if ctx.engine.sketch_prefold(state0, ctx.mcn_np):
            sim[:] = state0.tolist()
    kernel_fn = ctx.engine.kernel
    mu = ctx.mu
    n = ctx.n
    threshold = (
        task_threshold
        if task_threshold is not None
        else max(64, ctx.num_arcs // 2048)
    )
    stages: list[StageRecord] = []
    uf = AtomicUnionFind(n)

    # ==== Checkpoint/resume (same site protocol as ppscan) ===============
    # Sites in execution order: one per α-block of summarization, then
    # merging.  cursor == len(stages) == number of completed sites.
    ck = checkpoint
    restored_cursor = 0
    restored_pending: list[tuple[int, int]] | None = None
    partial_records: list[TaskCost] = []
    phase_no = 0

    def _save_ckpt(
        phase: str,
        pending: list[tuple[int, int]] | None = None,
        partial: list[TaskCost] | None = None,
    ) -> int:
        arrays: dict[str, np.ndarray] = {
            "sim": np.asarray(sim, dtype=np.int8),
            "roles": np.asarray(roles, dtype=np.int8),
            "uf_parent": uf.snapshot()["parent"],
        }
        meta: dict = {
            "cursor": len(stages),
            "stage_records": [s.as_dict() for s in stages],
            "counter": counter.as_dict(),
        }
        if pending is not None:
            arrays["pending"] = np.asarray(
                pending, dtype=np.int64
            ).reshape(-1, 2)
            meta["partial_records"] = [
                r.as_dict() for r in (partial or [])
            ]
        return ck.save(arrays=arrays, meta=meta, phase=phase)

    if ck is not None:
        ck.bind(
            graph,
            params,
            algorithm="anyscan",
            exec_mode="scalar",
            extra={"alpha": int(alpha), "threshold": int(threshold)}
            | (
                {"sketch": ctx.engine.sketch.key()}
                if ctx.engine.sketch is not None
                else {}
            ),
        )
        snap = ck.load_latest()
        if snap is not None:
            restored_cursor = int(snap.meta["cursor"])
            sim[:] = np.asarray(snap.arrays["sim"], dtype=np.int8).tolist()
            roles[:] = np.asarray(
                snap.arrays["roles"], dtype=np.int8
            ).tolist()
            uf.restore({"parent": snap.arrays["uf_parent"]})
            stages.extend(
                StageRecord.from_dict(d)
                for d in snap.meta.get("stage_records", [])
            )
            saved_counter = snap.meta.get("counter")
            if isinstance(saved_counter, dict):
                for field, value in saved_counter.items():
                    if field in type(counter).__slots__:
                        setattr(counter, field, int(value))
            if "pending" in snap.arrays:
                restored_pending = [
                    (int(b), int(e))
                    for b, e in np.asarray(snap.arrays["pending"])
                    .reshape(-1, 2)
                    .tolist()
                ]
                partial_records = [
                    TaskCost.from_dict(d)
                    for d in snap.meta.get("partial_records", [])
                ]

    def _run_site(name, derive_tasks, run_task, commit) -> None:
        nonlocal restored_pending, partial_records, phase_no
        this_phase = phase_no
        phase_no += 1
        if this_phase < restored_cursor:
            return  # effects and record restored from the snapshot
        t_stage = time.perf_counter()
        if this_phase == restored_cursor and restored_pending is not None:
            tasks = restored_pending
            records = list(partial_records)
            restored_pending = None
            partial_records = []
        else:
            tasks = derive_tasks()
            records = []
        chunk = (
            len(tasks)
            if ck is None or ck.every is None
            else max(1, ck.every)
        )
        pos = 0
        try:
            while pos < len(tasks):
                batch = tasks[pos : pos + chunk]
                records.extend(backend.run_phase(batch, run_task, commit))
                pos += len(batch)
                if ck is not None and pos < len(tasks):
                    _save_ckpt(name, pending=tasks[pos:], partial=records)
        except ExecutionFaultError as exc:
            located = exc.locate(stage=name, algorithm="anyscan")
            if ck is not None:
                epoch = _save_ckpt(
                    name, pending=tasks[pos:], partial=records
                )
                raise ResumableAbort.from_fault(
                    located, epoch=epoch, directory=ck.directory
                )
            raise located
        stages.append(StageRecord(name, records, time.perf_counter() - t_stage))
        if ck is not None:
            _save_ckpt(name)

    # -- Summarization: α-blocks of full ε-neighborhood evaluations -------

    def block_task(beg: int, end: int):
        snap = (
            counter.scalar_cmp,
            counter.bound_updates,
            counter.invocations,
        )
        sim_writes: list[tuple[int, int]] = []
        role_writes: list[tuple[int, int]] = []
        arcs = 0
        allocs = 0
        for u in range(beg, end):
            allocs += 2  # super-node descriptor + candidate vector
            sd = 0
            adj_u = adj[u]
            for arc in range(off[u], off[u + 1]):
                arcs += 1
                allocs += 1  # untouched-list / candidate node per neighbor
                state = sim[arc]
                if state == UNKNOWN:
                    c = mcn[arc]
                    v = dst[arc]
                    if c <= 2:
                        state = SIM
                    elif (deg[u] if deg[u] < deg[v] else deg[v]) + 2 < c:
                        state = NSIM
                    else:
                        state = SIM if kernel_fn(adj_u, adj[v], c) else NSIM
                    sim_writes.append((arc, state))
                    sim_writes.append((rev[arc], state))
                if state == SIM:
                    sd += 1
                    allocs += 1  # candidate push_back
            role_writes.append((u, CORE if sd >= mu else NONCORE))
        cost = TaskCost(
            scalar_cmp=counter.scalar_cmp - snap[0],
            bound_updates=counter.bound_updates - snap[1],
            compsims=counter.invocations - snap[2],
            arcs=arcs,
            allocs=allocs,
        )
        return (sim_writes, role_writes), cost

    def commit_block(writes) -> None:
        sim_writes, role_writes = writes
        for arc, state in sim_writes:
            sim[arc] = state
        for u, role in role_writes:
            roles[u] = role

    def block_tasks(block_beg: int, block_end: int):
        block_deg = deg[block_beg:block_end]
        return [
            (beg + block_beg, end + block_beg)
            for beg, end in degree_based_tasks(block_deg, None, threshold)
        ]

    for block_beg in range(0, n, alpha):
        block_end = min(block_beg + alpha, n)
        _run_site(
            "summarization",
            lambda b=block_beg, e=block_end: block_tasks(b, e),
            block_task,
            commit_block,
        )

    # -- Merging: union cores over known similar edges ---------------------

    def merge_task(beg: int, end: int):
        unions: list[tuple[int, int]] = []
        arcs = 0
        atomics = 0
        allocs = 0
        for u in range(beg, end):
            if roles[u] != CORE:
                continue
            allocs += 1  # transition record
            for arc in range(off[u], off[u + 1]):
                arcs += 1
                v = dst[arc]
                if v <= u or roles[v] != CORE or sim[arc] != SIM:
                    continue
                arcs += 2
                if not uf.same_set(u, v):
                    unions.append((u, v))
                    atomics += 1
        return unions, TaskCost(arcs=arcs, atomics=atomics, allocs=allocs)

    def commit_merge(unions) -> None:
        for u, v in unions:
            uf.union(u, v)

    _run_site(
        "merging",
        lambda: degree_based_tasks(
            deg, [r == CORE for r in roles], threshold
        ),
        merge_task,
        commit_merge,
    )

    # -- Final: cluster ids + non-core memberships ------------------------

    t_stage = time.perf_counter()
    cluster_id: dict[int, int] = {}
    labels = np.full(n, -1, dtype=np.int64)
    for u in range(n):
        if roles[u] == CORE:
            root = uf.find(u)
            if root not in cluster_id:
                cluster_id[root] = u
            labels[u] = cluster_id[root]
    pairs: list[tuple[int, int]] = []
    pair_arcs = 0
    for u in range(n):
        if roles[u] != CORE:
            continue
        cid = int(labels[u])
        for arc in range(off[u], off[u + 1]):
            pair_arcs += 1
            v = dst[arc]
            if roles[v] == NONCORE and sim[arc] == SIM:
                pairs.append((cid, v))
    stages.append(
        StageRecord(
            "labeling",
            [TaskCost(arcs=pair_arcs, atomics=uf.num_finds)],
            time.perf_counter() - t_stage,
        )
    )

    record = RunRecord(
        algorithm="anySCAN", stages=stages, wall_seconds=time.perf_counter() - t0
    )
    return ClusteringResult(
        algorithm="anySCAN",
        params=params,
        roles=np.array(roles, dtype=np.int8),
        core_labels=labels,
        noncore_pairs=pairs,
        record=record,
    )

from dataclasses import dataclass


@dataclass(frozen=True)
class ProgressSnapshot:
    """One anytime checkpoint of :func:`anyscan_progressive`.

    ``roles[v]`` is final for every processed vertex (ROLE_UNKNOWN
    otherwise); ``core_labels`` are the provisional clusters among the
    cores processed so far (they only merge as processing continues —
    never split).
    """

    processed: int
    total: int
    roles: "np.ndarray"
    core_labels: "np.ndarray"

    @property
    def fraction(self) -> float:
        return self.processed / self.total if self.total else 1.0


def anyscan_progressive(
    graph: CSRGraph, params: ScanParams, alpha: int = 256
):
    """anySCAN's *anytime* mode: yield a snapshot after every α-block.

    The ICDE'17 paper's interactive selling point — usable intermediate
    results that refine monotonically — reproduced exactly: each
    snapshot's determined roles are final, provisional clusters only ever
    merge, and the final snapshot equals :func:`anyscan`'s exact output
    (enforced by the tests).
    """
    if alpha < 1:
        raise ValueError("alpha must be >= 1")
    ctx = RunContext(graph, params, kernel="merge")
    off, dst, adj, deg = ctx.off, ctx.dst, ctx.adj, ctx.deg
    sim, roles, mcn, rev = ctx.sim, ctx.roles, ctx.mcn, ctx.rev
    kernel_fn = ctx.engine.kernel
    mu = ctx.mu
    n = ctx.n
    uf = AtomicUnionFind(n)

    def resolve_arc(u: int, arc: int) -> int:
        v = dst[arc]
        c = mcn[arc]
        if c <= 2:
            state = SIM
        elif (deg[u] if deg[u] < deg[v] else deg[v]) + 2 < c:
            state = NSIM
        else:
            state = SIM if kernel_fn(adj[u], adj[v], c) else NSIM
        sim[arc] = state
        sim[rev[arc]] = state
        return state

    def snapshot(processed: int) -> ProgressSnapshot:
        labels = np.full(n, -1, dtype=np.int64)
        cluster_id: dict[int, int] = {}
        for u in range(n):
            if roles[u] == CORE:
                root = uf.find(u)
                if root not in cluster_id:
                    cluster_id[root] = u
                labels[u] = cluster_id[root]
        return ProgressSnapshot(
            processed=processed,
            total=n,
            roles=np.array(roles, dtype=np.int8),
            core_labels=labels,
        )

    for block_beg in range(0, n, alpha):
        block_end = min(block_beg + alpha, n)
        for u in range(block_beg, block_end):
            sd = 0
            for arc in range(off[u], off[u + 1]):
                state = sim[arc]
                if state == UNKNOWN:
                    state = resolve_arc(u, arc)
                if state == SIM:
                    sd += 1
            roles[u] = CORE if sd >= mu else NONCORE
            # Merge with already-determined similar core neighbors.
            if roles[u] == CORE:
                for arc in range(off[u], off[u + 1]):
                    v = dst[arc]
                    if roles[v] == CORE and sim[arc] == SIM:
                        uf.union(u, v)
        yield snapshot(block_end)
