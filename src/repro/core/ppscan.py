"""ppSCAN — the paper's contribution (Algorithms 3, 4 and 5).

The computation is decomposed into barrier-separated phases, each a set of
degree-bundled vertex-range tasks executed through an
:class:`~repro.parallel.backend.ExecutionBackend`:

====  =============================  ===============================
step  phase                           paper reference
====  =============================  ===============================
1     similarity pruning              Alg. 3 ``PruneSim`` (vectorized
                                      whole-graph arithmetic)
2     core checking                   Alg. 3 ``CheckCore`` (u < v)
3     core consolidating              Alg. 3 ``ConsolidateCore``
4     core clustering (no compsim)    Alg. 4 lines 9-11
5     core clustering (compsim)       Alg. 4 lines 12-16
6     cluster id init                 Alg. 4 lines 17-23 (CAS min)
7     non-core clustering             Alg. 4 lines 24-29
====  =============================  ===============================

Task bodies buffer their writes and the backend commits them — after each
task (serial backend: the canonical lock-free interleaving) or at the
phase barrier (process backend: bulk-synchronous, the weakest visibility
the paper's Theorems 4.1–4.5 admit).  Either way every similarity value is
computed at most once (Theorem 4.1) and the final roles/clusters are
exact (Theorems 4.2, 4.5).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..graph.csr import CSRGraph
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..parallel.backend import ExecutionBackend, SerialBackend
from ..parallel.scheduler import degree_based_tasks
from ..similarity.bulk import predicate_prune_arcs
from ..types import CORE, NONCORE, NSIM, ROLE_UNKNOWN, SIM, UNKNOWN, ScanParams
from ..unionfind import AtomicUnionFind
from .context import RunContext
from .result import ClusteringResult

__all__ = ["ppscan", "auto_task_threshold", "PPSCAN_STAGES"]

#: Stage names in execution order (benchmarks group them into the paper's
#: four Figure-6 stages).
PPSCAN_STAGES = (
    "similarity pruning",
    "core checking",
    "core consolidating",
    "core clustering (no compsim)",
    "core clustering (compsim)",
    "cluster id init",
    "non-core clustering",
)


def auto_task_threshold(num_arcs: int) -> int:
    """Scale the paper's 32768 degree-sum threshold to the graph size.

    The paper tunes 32768 for billion-edge graphs (~10^5 tasks); scaling
    by arc count keeps the task count in the load-balanceable range for
    the laptop-scale graphs this reproduction runs.
    """
    return max(64, min(32768, num_arcs // 1024))


def ppscan(
    graph: CSRGraph,
    params: ScanParams,
    *,
    kernel: str = "vectorized",
    lanes: int = 16,
    backend: ExecutionBackend | None = None,
    task_threshold: int | None = None,
    prune_phase: bool = True,
    two_phase_clustering: bool = True,
    algorithm_name: str | None = None,
) -> ClusteringResult:
    """Run ppSCAN and return the canonical clustering result.

    Parameters mirror the paper's design choices so the ablation benches
    can switch them off: ``prune_phase`` (the PruneSim pre-processing),
    ``two_phase_clustering`` (core clustering split into no-compsim /
    compsim passes), ``kernel``/``lanes`` (``"merge"`` gives ppSCAN-NO,
    ``"vectorized"`` with 8 or 16 lanes models AVX2/AVX512), and
    ``task_threshold`` (Algorithm 5's degree-sum cut, auto-scaled by
    default).
    """
    t0 = time.perf_counter()
    ctx = RunContext(graph, params, kernel=kernel, lanes=lanes)
    backend = backend if backend is not None else SerialBackend()
    threshold = (
        task_threshold
        if task_threshold is not None
        else auto_task_threshold(ctx.num_arcs)
    )

    counter = ctx.engine.counter
    off, dst, adj, deg = ctx.off, ctx.dst, ctx.adj, ctx.deg
    sim, roles, mcn, rev = ctx.sim, ctx.roles, ctx.mcn, ctx.rev
    kernel_fn = ctx.engine.kernel
    mu = ctx.mu
    n = ctx.n
    uf = AtomicUnionFind(n)
    stages: list[StageRecord] = []

    def _snap() -> tuple[int, int, int, int]:
        return (
            counter.scalar_cmp,
            counter.vector_ops,
            counter.bound_updates,
            counter.invocations,
        )

    def _cost(
        snap: tuple[int, int, int, int], arcs: int = 0, atomics: int = 0
    ) -> TaskCost:
        return TaskCost(
            scalar_cmp=counter.scalar_cmp - snap[0],
            vector_ops=counter.vector_ops - snap[1],
            bound_updates=counter.bound_updates - snap[2],
            compsims=counter.invocations - snap[3],
            arcs=arcs,
            atomics=atomics,
        )

    def _run_stage(
        name: str,
        needs_role: int | None,
        run_task: Callable[[int, int], tuple[object, TaskCost]],
        commit: Callable[[object], None],
    ) -> None:
        """Schedule (Algorithm 5), execute, commit, and record one phase."""
        t_stage = time.perf_counter()
        if needs_role is None:
            needs = None
        else:
            needs = [r == needs_role for r in roles]
        tasks = degree_based_tasks(deg, needs, threshold)
        records = backend.run_phase(tasks, run_task, commit)
        stages.append(
            StageRecord(name, records, time.perf_counter() - t_stage)
        )

    # ==== Step 1: role computing (Algorithm 3) ==========================

    # -- Phase 1: similarity pruning --------------------------------------
    t_stage = time.perf_counter()
    if prune_phase:
        prune_state = predicate_prune_arcs(graph, ctx.mcn_np)
        ctx.sim[:] = prune_state.tolist()
        sim = ctx.sim
        src = graph.arc_source()
        sd0 = np.bincount(src[prune_state == SIM], minlength=n)
        nsim0 = np.bincount(src[prune_state == NSIM], minlength=n)
        ed0 = graph.degrees - nsim0
        roles_np = np.full(n, ROLE_UNKNOWN, dtype=np.int8)
        roles_np[ed0 < mu] = NONCORE
        roles_np[sd0 >= mu] = CORE
        ctx.roles[:] = roles_np.tolist()
        roles = ctx.roles
    # The phase is pure per-arc arithmetic executed as one data-parallel
    # kernel; its per-task costs are synthesized from the same ranges the
    # scheduler would cut (1 arc scan + 1 bound update per arc).
    prune_tasks: list[TaskCost] = []
    for beg, end in degree_based_tasks(deg, None, threshold):
        arcs_in_range = off[end] - off[beg]
        prune_tasks.append(
            TaskCost(arcs=arcs_in_range, bound_updates=arcs_in_range)
        )
    stages.append(
        StageRecord(
            "similarity pruning", prune_tasks, time.perf_counter() - t_stage
        )
    )

    # -- Phases 2 & 3: core checking, core consolidating -----------------

    def make_role_task(ordered: bool):
        def run_task(beg: int, end: int):
            snap = _snap()
            sim_writes: list[tuple[int, int]] = []
            role_writes: list[tuple[int, int]] = []
            arcs = 0
            for u in range(beg, end):
                if roles[u] != ROLE_UNKNOWN:
                    continue
                lo, hi = off[u], off[u + 1]
                sd = 0
                ed = deg[u]
                determined = False
                # First pass: fold in already-known similarity values.
                for arc in range(lo, hi):
                    s = sim[arc]
                    arcs += 1
                    if s == SIM:
                        sd += 1
                        if sd >= mu:
                            role_writes.append((u, CORE))
                            determined = True
                            break
                    elif s == NSIM:
                        ed -= 1
                        if ed < mu:
                            role_writes.append((u, NONCORE))
                            determined = True
                            break
                if determined:
                    continue
                # Second pass: compute unknown similarities (u < v when
                # ordered — the vertex-order constraint of §4.1).
                adj_u = adj[u]
                for arc in range(lo, hi):
                    if sim[arc] != UNKNOWN:
                        continue
                    v = dst[arc]
                    if ordered and u >= v:
                        continue
                    arcs += 1
                    state = SIM if kernel_fn(adj_u, adj[v], mcn[arc]) else NSIM
                    sim_writes.append((arc, state))
                    sim_writes.append((rev[arc], state))
                    if state == SIM:
                        sd += 1
                        if sd >= mu:
                            role_writes.append((u, CORE))
                            determined = True
                            break
                    else:
                        ed -= 1
                        if ed < mu:
                            role_writes.append((u, NONCORE))
                            determined = True
                            break
                if not determined and not ordered:
                    # Consolidation saw every similarity: sd is exact.
                    role_writes.append((u, CORE if sd >= mu else NONCORE))
            return (sim_writes, role_writes), _cost(snap, arcs=arcs)

        return run_task

    def commit_role(writes) -> None:
        sim_writes, role_writes = writes
        for arc, state in sim_writes:
            sim[arc] = state
        for u, role in role_writes:
            roles[u] = role

    _run_stage("core checking", ROLE_UNKNOWN, make_role_task(True), commit_role)
    _run_stage(
        "core consolidating", ROLE_UNKNOWN, make_role_task(False), commit_role
    )

    # ==== Step 2: core and non-core clustering (Algorithm 4) ============

    def cluster_no_compsim_task(beg: int, end: int):
        unions: list[tuple[int, int]] = []
        arcs = 0
        atomics = 0
        for u in range(beg, end):
            if roles[u] != CORE:
                continue
            for arc in range(off[u], off[u + 1]):
                arcs += 1
                v = dst[arc]
                if v <= u or roles[v] != CORE or sim[arc] != SIM:
                    continue
                arcs += 2  # IsSameSet = two pointer-chasing finds
                if not uf.same_set(u, v):
                    unions.append((u, v))
                    atomics += 1  # the union's CAS
        return (unions, []), TaskCost(arcs=arcs, atomics=atomics)

    def cluster_compsim_task(beg: int, end: int):
        snap = _snap()
        unions: list[tuple[int, int]] = []
        sim_writes: list[tuple[int, int]] = []
        arcs = 0
        atomics = 0
        for u in range(beg, end):
            if roles[u] != CORE:
                continue
            adj_u = adj[u]
            for arc in range(off[u], off[u + 1]):
                arcs += 1
                v = dst[arc]
                if v <= u or roles[v] != CORE:
                    continue
                unknown = sim[arc] == UNKNOWN
                if not unknown and not two_phase_clustering:
                    # Single-phase ablation: handle known-SIM edges here.
                    if sim[arc] == SIM:
                        arcs += 2
                        if not uf.same_set(u, v):
                            unions.append((u, v))
                            atomics += 1
                    continue
                if not unknown:
                    continue
                arcs += 2
                if uf.same_set(u, v):
                    continue  # union-find pruning
                state = SIM if kernel_fn(adj_u, adj[v], mcn[arc]) else NSIM
                sim_writes.append((arc, state))
                sim_writes.append((rev[arc], state))
                if state == SIM:
                    unions.append((u, v))
                    atomics += 1
        return (unions, sim_writes), _cost(snap, arcs=arcs, atomics=atomics)

    def commit_cluster(writes) -> None:
        unions, sim_writes = writes
        for arc, state in sim_writes:
            sim[arc] = state
        for u, v in unions:
            uf.union(u, v)

    if two_phase_clustering:
        _run_stage(
            "core clustering (no compsim)",
            CORE,
            cluster_no_compsim_task,
            commit_cluster,
        )
    else:
        stages.append(StageRecord("core clustering (no compsim)", []))
    _run_stage(
        "core clustering (compsim)", CORE, cluster_compsim_task, commit_cluster
    )

    # -- Phase 6: cluster id initialization (CAS-min per root) ------------

    cluster_id: dict[int, int] = {}

    def init_cluster_id_task(beg: int, end: int):
        mins: dict[int, int] = {}
        atomics = 0
        arcs = 0
        for u in range(beg, end):
            if roles[u] != CORE:
                continue
            arcs += 2  # find = pointer chases
            root = uf.find(u)
            cur = mins.get(root)
            if cur is None or u < cur:
                mins[root] = u
                atomics += 1  # the CAS attempt of Algorithm 4 line 23
        return (mins, None), TaskCost(arcs=arcs, atomics=atomics)

    def commit_cluster_id(writes) -> None:
        mins, _ = writes
        for root, vid in mins.items():
            cur = cluster_id.get(root)
            if cur is None or vid < cur:
                cluster_id[root] = vid

    _run_stage("cluster id init", CORE, init_cluster_id_task, commit_cluster_id)

    # -- Phase 7: non-core clustering --------------------------------------

    pairs: list[tuple[int, int]] = []

    def noncore_task(beg: int, end: int):
        snap = _snap()
        local_pairs: list[tuple[int, int]] = []
        sim_writes: list[tuple[int, int]] = []
        arcs = 0
        atomics = 0
        for u in range(beg, end):
            if roles[u] != CORE:
                continue
            cid = cluster_id[uf.find(u)]
            arcs += 2
            adj_u = adj[u]
            for arc in range(off[u], off[u + 1]):
                arcs += 1
                v = dst[arc]
                if roles[v] != NONCORE:
                    continue
                state = sim[arc]
                if state == UNKNOWN:
                    state = SIM if kernel_fn(adj_u, adj[v], mcn[arc]) else NSIM
                    sim_writes.append((arc, state))
                    sim_writes.append((rev[arc], state))
                if state == SIM:
                    local_pairs.append((cid, v))
        return (local_pairs, sim_writes), _cost(snap, arcs=arcs, atomics=atomics)

    def commit_noncore(writes) -> None:
        local_pairs, sim_writes = writes
        for arc, state in sim_writes:
            sim[arc] = state
        pairs.extend(local_pairs)

    _run_stage("non-core clustering", CORE, noncore_task, commit_noncore)

    # ==== Result assembly ================================================

    labels = np.full(n, -1, dtype=np.int64)
    for u in range(n):
        if roles[u] == CORE:
            labels[u] = cluster_id[uf.find(u)]

    name = algorithm_name or (
        "ppSCAN" if kernel == "vectorized" else "ppSCAN-NO"
    )
    record = RunRecord(
        algorithm=name, stages=stages, wall_seconds=time.perf_counter() - t0
    )
    return ClusteringResult(
        algorithm=name,
        params=params,
        roles=ctx.roles_array(),
        core_labels=labels,
        noncore_pairs=pairs,
        record=record,
    )
