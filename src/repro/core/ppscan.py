"""ppSCAN — the paper's contribution (Algorithms 3, 4 and 5).

The computation is decomposed into barrier-separated phases, each a set of
degree-bundled vertex-range tasks executed through an
:class:`~repro.parallel.backend.ExecutionBackend`:

====  =============================  ===============================
step  phase                           paper reference
====  =============================  ===============================
1     similarity pruning              Alg. 3 ``PruneSim`` (vectorized
                                      whole-graph arithmetic)
2     core checking                   Alg. 3 ``CheckCore`` (u < v)
3     core consolidating              Alg. 3 ``ConsolidateCore``
4     core clustering (no compsim)    Alg. 4 lines 9-11
5     core clustering (compsim)       Alg. 4 lines 12-16
6     cluster id init                 Alg. 4 lines 17-23 (CAS min)
7     non-core clustering             Alg. 4 lines 24-29
====  =============================  ===============================

Task bodies buffer their writes and the backend commits them — after each
task (serial backend: the canonical lock-free interleaving) or at the
phase barrier (process backend: bulk-synchronous, the weakest visibility
the paper's Theorems 4.1–4.5 admit).  Either way every similarity value is
computed at most once (Theorem 4.1) and the final roles/clusters are
exact (Theorems 4.2, 4.5).

Two execution modes share the phase structure:

* ``exec_mode="scalar"`` — the counted reference: one early-terminating
  kernel call per UNKNOWN arc, per-vertex early exit, exactly the paper's
  control flow.
* ``exec_mode="batched"`` — the throughput path: each task body folds the
  known similarity states with vectorized segment reductions, *collects*
  its unresolved frontier arcs, and resolves them through
  :meth:`~repro.similarity.engine.SimilarityEngine.resolve_arcs`, whose
  adaptive dispatcher routes each arc between the mark-and-count bulk
  kernel and the early-terminating scalar kernels.  Roles, labels and
  non-core memberships are identical to the scalar mode (enforced by the
  batched-mode test suite); only *which* arcs get resolved may differ,
  because batching trades per-vertex early exit for vector throughput.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..graph.csr import CSRGraph
from ..intersect.batch import concat_ranges
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..obs.tracer import current_tracer
from ..parallel.backend import ExecutionBackend, SerialBackend, commit_arc_states
from ..parallel.scheduler import degree_based_tasks
from ..parallel.supervisor import ExecutionFaultError, ResumableAbort
from ..similarity.bulk import predicate_prune_arcs
from ..similarity.engine import EXEC_MODES
from ..types import CORE, NONCORE, NSIM, ROLE_UNKNOWN, SIM, UNKNOWN, ScanParams
from ..unionfind import AtomicUnionFind
from .context import RunContext
from .result import ClusteringResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import SimilarityStore
    from ..checkpoint import CheckpointManager
    from ..sketch import SketchParams

__all__ = [
    "ppscan",
    "auto_task_threshold",
    "auto_batch_task_threshold",
    "PPSCAN_STAGES",
]

#: Stage names in execution order (benchmarks group them into the paper's
#: four Figure-6 stages).
PPSCAN_STAGES = (
    "similarity pruning",
    "core checking",
    "core consolidating",
    "core clustering (no compsim)",
    "core clustering (compsim)",
    "cluster id init",
    "non-core clustering",
)

_EMPTY_ARCS = np.empty(0, dtype=np.int64)
_EMPTY_STATES = np.empty(0, dtype=np.int8)


def auto_task_threshold(num_arcs: int) -> int:
    """Scale the paper's 32768 degree-sum threshold to the graph size.

    The paper tunes 32768 for billion-edge graphs (~10^5 tasks); scaling
    by arc count keeps the task count in the load-balanceable range for
    the laptop-scale graphs this reproduction runs.
    """
    return max(64, min(32768, num_arcs // 1024))


def auto_batch_task_threshold(num_arcs: int) -> int:
    """Default degree-sum threshold for the batched execution mode.

    Batched task bodies pay a fixed NumPy dispatch cost per task, so the
    throughput sweet spot is far coarser than the scalar mode's cut: the
    batch must amortize the call overhead, but tasks past ~32k arcs start
    losing intra-phase similarity reuse (later tasks inherit mirror
    writes from earlier commits under the serial backend).
    """
    return max(auto_task_threshold(num_arcs), min(32768, num_arcs // 16))


def ppscan(
    graph: CSRGraph,
    params: ScanParams,
    *,
    kernel: str = "vectorized",
    lanes: int = 16,
    backend: ExecutionBackend | None = None,
    task_threshold: int | None = None,
    prune_phase: bool = True,
    two_phase_clustering: bool = True,
    algorithm_name: str | None = None,
    exec_mode: str = "scalar",
    store: "SimilarityStore | None" = None,
    checkpoint: "CheckpointManager | None" = None,
    sketch: "SketchParams | None" = None,
) -> ClusteringResult:
    """Run ppSCAN and return the canonical clustering result.

    Parameters mirror the paper's design choices so the ablation benches
    can switch them off: ``prune_phase`` (the PruneSim pre-processing),
    ``two_phase_clustering`` (core clustering split into no-compsim /
    compsim passes), ``kernel``/``lanes`` (``"merge"`` gives ppSCAN-NO,
    ``"vectorized"`` with 8 or 16 lanes models AVX2/AVX512),
    ``task_threshold`` (Algorithm 5's degree-sum cut, auto-scaled by
    default), and ``exec_mode`` (``"scalar"`` per-arc kernels vs
    ``"batched"`` whole-frontier resolution — see the module docstring).

    ``store`` attaches a :class:`~repro.cache.SimilarityStore`: covered
    arcs are folded into the similarity-pruning phase from their cached
    exact overlaps and every freshly computed overlap is recorded, so
    repeated runs (and (ε, µ) sweeps) skip the intersections.  Decisions
    are bit-identical with or without it.

    ``checkpoint`` attaches a
    :class:`~repro.checkpoint.CheckpointManager`: the full resumable
    state (similarity/role arrays, union-find parents, cluster ids,
    non-core pairs, store coverage, stage records) is snapshotted at
    every phase barrier — and, with ``checkpoint.every`` set, after
    every N scheduler tasks inside a phase — so a killed run resumed
    from the same directory reproduces the uninterrupted clustering
    bit-for-bit (the phase commits are deterministic facts, so
    re-running the un-committed suffix is Theorems 4.1–4.5 territory).
    A fatal :class:`~repro.parallel.supervisor.ExecutionFaultError`
    first writes a final snapshot and re-raises as
    :class:`~repro.parallel.supervisor.ResumableAbort`.
    """
    if exec_mode not in EXEC_MODES:
        raise ValueError(
            f"unknown exec_mode {exec_mode!r}; known: {list(EXEC_MODES)}"
        )
    t0 = time.perf_counter()
    ctx = RunContext(
        graph, params, kernel=kernel, lanes=lanes, store=store, sketch=sketch
    )
    backend = backend if backend is not None else SerialBackend()
    batched = exec_mode == "batched"
    tracer = current_tracer()
    root_span = (
        tracer.start_span(
            "ppscan",
            lane=0,
            exec_mode=exec_mode,
            kernel=kernel,
            vertices=graph.num_vertices,
            arcs=ctx.num_arcs,
            eps=params.eps,
            mu=params.mu,
        )
        if tracer.enabled
        else None
    )
    if task_threshold is not None:
        threshold = task_threshold
    elif batched:
        threshold = auto_batch_task_threshold(ctx.num_arcs)
    else:
        threshold = auto_task_threshold(ctx.num_arcs)

    counter = ctx.engine.counter
    engine = ctx.engine
    kernel_fn = ctx.engine.kernel
    use_store = store is not None
    cached_arc = engine.resolve_arc_cached
    mu = ctx.mu
    n = ctx.n
    deg_np = graph.degrees
    off_np, dst_np = graph.offsets, graph.dst
    src_np, rev_np, mcn_np = ctx.src_np, ctx.rev_np, ctx.mcn_np
    if not batched:
        # The scalar mode's tight loops run on plain lists (materialized
        # lazily by the context; the batched mode never builds them).
        off, dst, adj, deg = ctx.off, ctx.dst, ctx.adj, ctx.deg
        sim, mcn, rev = ctx.sim, ctx.mcn, ctx.rev
    #: roles stay a NumPy int8 array end-to-end; the per-stage "needs
    #: work" mask is a single vectorized comparison instead of an O(n)
    #: Python list comprehension per phase.
    roles = np.full(n, ROLE_UNKNOWN, dtype=np.int8)
    #: batched mode keeps similarity states in int8 as well (the scalar
    #: mode's data-dependent inner loops stay on the faster plain list).
    sim_np = np.full(ctx.num_arcs, UNKNOWN, dtype=np.int8)
    uf = AtomicUnionFind(n)
    stages: list[StageRecord] = []
    cluster_id: dict[int, int] = {}  # phase 6 (CAS-min per root)
    pairs: list[tuple[int, int]] = []  # phase 7 (cid, non-core vertex)

    # ==== Checkpoint/resume ==============================================
    # Each phase appends exactly one StageRecord, in order, so the resume
    # cursor is simply len(stages): a snapshot taken mid-phase (before the
    # append) says "re-run this phase's remaining tasks", one at a barrier
    # (after the append) says "start the next phase".
    ck = checkpoint
    restored_cursor = 0
    restored_pending: list[tuple[int, int]] | None = None
    partial_records: list[TaskCost] = []
    phase_no = 0  # index of the next phase *site* in execution order

    def _save_ckpt(
        phase: str,
        pending: list[tuple[int, int]] | None = None,
        partial: list[TaskCost] | None = None,
    ) -> int:
        arrays: dict[str, np.ndarray] = {
            "roles": roles.copy(),
            "sim": (
                sim_np.copy()
                if batched
                else np.asarray(ctx.sim, dtype=np.int8)
            ),
            "uf_parent": uf.snapshot()["parent"],
            "pairs": np.asarray(pairs, dtype=np.int64).reshape(-1, 2),
        }
        if cluster_id:
            roots = sorted(cluster_id)
            arrays["cid_roots"] = np.asarray(roots, dtype=np.int64)
            arrays["cid_vids"] = np.asarray(
                [cluster_id[r] for r in roots], dtype=np.int64
            )
        if use_store:
            entry = store.entry_for(graph)
            arrays["store_overlap"] = entry.overlap
            arrays["store_coverage"] = np.packbits(entry.coverage)
        meta: dict = {
            "cursor": len(stages),
            "stage_records": [s.as_dict() for s in stages],
            "counter": counter.as_dict(),
        }
        if pending is not None:
            arrays["pending"] = np.asarray(
                pending, dtype=np.int64
            ).reshape(-1, 2)
            meta["partial_records"] = [
                r.as_dict() for r in (partial or [])
            ]
        return ck.save(arrays=arrays, meta=meta, phase=phase)

    if ck is not None:
        extra = {
            "kernel": kernel,
            "prune_phase": bool(prune_phase),
            "two_phase_clustering": bool(two_phase_clustering),
            "threshold": int(threshold),
        }
        if engine.sketch is not None:
            # Part of the resume identity: a run folded through sketches
            # must not resume a snapshot from a different sketch config
            # (or from an exact run, and vice versa).
            extra["sketch"] = engine.sketch.key()
        ck.bind(
            graph,
            params,
            algorithm="ppscan",
            exec_mode=exec_mode,
            extra=extra,
        )
        snap = ck.load_latest()
        if snap is not None:
            restored_cursor = int(snap.meta["cursor"])
            roles[:] = np.asarray(snap.arrays["roles"], dtype=np.int8)
            snap_sim = np.asarray(snap.arrays["sim"], dtype=np.int8)
            if batched:
                sim_np = snap_sim.copy()
            else:
                ctx.sim[:] = snap_sim.tolist()
                sim = ctx.sim
            uf.restore({"parent": snap.arrays["uf_parent"]})
            if "cid_roots" in snap.arrays:
                cluster_id.update(
                    zip(
                        np.asarray(snap.arrays["cid_roots"]).tolist(),
                        np.asarray(snap.arrays["cid_vids"]).tolist(),
                    )
                )
            pairs.extend(
                (int(a), int(b))
                for a, b in np.asarray(snap.arrays["pairs"])
                .reshape(-1, 2)
                .tolist()
            )
            if use_store and "store_overlap" in snap.arrays:
                entry = store.entry_for(graph)
                entry.overlap = np.asarray(
                    snap.arrays["store_overlap"], dtype=np.int64
                ).copy()
                entry.coverage = np.unpackbits(
                    np.asarray(
                        snap.arrays["store_coverage"], dtype=np.uint8
                    ),
                    count=entry.num_arcs,
                ).astype(bool)
                entry.dirty = True
            stages.extend(
                StageRecord.from_dict(d)
                for d in snap.meta.get("stage_records", [])
            )
            saved_counter = snap.meta.get("counter")
            if isinstance(saved_counter, dict):
                for field, value in saved_counter.items():
                    if field in type(counter).__slots__:
                        setattr(counter, field, int(value))
            if "pending" in snap.arrays:
                restored_pending = [
                    (int(b), int(e))
                    for b, e in np.asarray(snap.arrays["pending"])
                    .reshape(-1, 2)
                    .tolist()
                ]
                partial_records = [
                    TaskCost.from_dict(d)
                    for d in snap.meta.get("partial_records", [])
                ]

    def _snap() -> tuple[int, int, int, int]:
        return (
            counter.scalar_cmp,
            counter.vector_ops,
            counter.bound_updates,
            counter.invocations,
        )

    def _cost(
        snap: tuple[int, int, int, int], arcs: int = 0, atomics: int = 0
    ) -> TaskCost:
        return TaskCost(
            scalar_cmp=counter.scalar_cmp - snap[0],
            vector_ops=counter.vector_ops - snap[1],
            bound_updates=counter.bound_updates - snap[2],
            compsims=counter.invocations - snap[3],
            arcs=arcs,
            atomics=atomics,
        )

    def _run_stage(
        name: str,
        needs_role: int | None,
        run_task: Callable[[int, int], tuple[object, TaskCost]],
        commit: Callable[[object], None],
    ) -> None:
        """Schedule (Algorithm 5), execute, commit, and record one phase.

        With a checkpoint manager attached the phase's task list is
        executed in chunks of ``checkpoint.every`` tasks (the whole
        phase when unset), snapshotting between chunks with the
        *remaining* tasks stored explicitly — they cannot be re-derived
        on resume because committed chunks already mutated the roles
        the schedule was cut from.
        """
        nonlocal restored_pending, partial_records, phase_no
        this_phase = phase_no
        phase_no += 1
        if this_phase < restored_cursor:
            return  # effects and record restored from the snapshot
        t_stage = time.perf_counter()
        if this_phase == restored_cursor and restored_pending is not None:
            tasks = restored_pending
            records = list(partial_records)
            restored_pending = None
            partial_records = []
        else:
            needs = None if needs_role is None else roles == needs_role
            tasks = degree_based_tasks(deg_np, needs, threshold)
            records = []
        chunk = (
            len(tasks)
            if ck is None or ck.every is None
            else max(1, ck.every)
        )
        pos = 0
        try:
            while pos < len(tasks):
                batch = tasks[pos : pos + chunk]
                if tracer.enabled:
                    with tracer.span(name, lane=0, tasks=len(batch)):
                        recs = backend.run_phase(batch, run_task, commit)
                else:
                    recs = backend.run_phase(batch, run_task, commit)
                records.extend(recs)
                pos += len(batch)
                if ck is not None and pos < len(tasks):
                    _save_ckpt(name, pending=tasks[pos:], partial=records)
        except ExecutionFaultError as exc:
            located = exc.locate(stage=name, algorithm="ppscan")
            if ck is not None:
                # Everything committed so far is durable; the failed
                # chunk never committed, so its tasks stay pending.
                epoch = _save_ckpt(
                    name, pending=tasks[pos:], partial=records
                )
                raise ResumableAbort.from_fault(
                    located, epoch=epoch, directory=ck.directory
                )
            raise located
        stages.append(
            StageRecord(name, records, time.perf_counter() - t_stage)
        )
        if ck is not None:
            _save_ckpt(name)

    # ==== Step 1: role computing (Algorithm 3) ==========================

    # -- Phase 1: similarity pruning --------------------------------------
    # The phase is one inline data-parallel kernel with no task barrier
    # inside, so resume granularity is the whole phase: it runs only when
    # no snapshot covers it (a crash mid-prune replays it from scratch).
    phase_no += 1  # this is site 0, restored iff any snapshot exists
    if restored_cursor == 0:
        t_stage = time.perf_counter()
        state0: np.ndarray | None = None
        if prune_phase:
            state0 = predicate_prune_arcs(graph, mcn_np)
        if use_store:
            # Fold store-covered arcs alongside the degree-pruned ones: one
            # vectorized overlap-vs-threshold comparison per covered arc, so
            # a warm store resolves the similarity work before any kernel
            # runs.  Bounds only get tighter; the role fold below stays
            # exact.
            if state0 is None:
                state0 = sim_np
            engine.prefold_cached(state0, mcn_np)
        if engine.sketch is not None:
            # Sketch prefold after the exact folds (degrees, store): one
            # vectorized classification of every still-unknown arc; only
            # the uncertain remainder reaches the exact kernels below.
            if state0 is None:
                state0 = sim_np
            engine.sketch_prefold(state0, mcn_np)
        if state0 is not None:
            if batched:
                sim_np = state0
            else:
                ctx.sim[:] = state0.tolist()
                sim = ctx.sim
            sd0 = np.bincount(src_np[state0 == SIM], minlength=n)
            nsim0 = np.bincount(src_np[state0 == NSIM], minlength=n)
            ed0 = graph.degrees - nsim0
            roles[ed0 < mu] = NONCORE
            roles[sd0 >= mu] = CORE
        # The phase is pure per-arc arithmetic executed as one data-parallel
        # kernel; its per-task costs are synthesized from the same ranges the
        # scheduler would cut (1 arc scan + 1 bound update per arc).
        prune_tasks: list[TaskCost] = []
        for beg, end in degree_based_tasks(deg_np, None, threshold):
            arcs_in_range = int(off_np[end] - off_np[beg])
            prune_tasks.append(
                TaskCost(arcs=arcs_in_range, bound_updates=arcs_in_range)
            )
        stages.append(
            StageRecord(
                "similarity pruning", prune_tasks, time.perf_counter() - t_stage
            )
        )
        if tracer.enabled:
            tracer.add_span(
                "similarity pruning",
                t_stage,
                time.perf_counter(),
                lane=0,
                depth=1,
                tasks=len(prune_tasks),
                enabled=prune_phase,
            )
        if ck is not None:
            _save_ckpt("similarity pruning")

    # -- Phases 2 & 3: core checking, core consolidating -----------------

    def make_role_task(ordered: bool):
        def run_task(beg: int, end: int):
            snap = _snap()
            sim_writes: list[tuple[int, int]] = []
            role_writes: list[tuple[int, int]] = []
            arcs = 0
            for u in range(beg, end):
                if roles[u] != ROLE_UNKNOWN:
                    continue
                lo, hi = off[u], off[u + 1]
                sd = 0
                ed = deg[u]
                determined = False
                # First pass: fold in already-known similarity values.
                for arc in range(lo, hi):
                    s = sim[arc]
                    arcs += 1
                    if s == SIM:
                        sd += 1
                        if sd >= mu:
                            role_writes.append((u, CORE))
                            determined = True
                            break
                    elif s == NSIM:
                        ed -= 1
                        if ed < mu:
                            role_writes.append((u, NONCORE))
                            determined = True
                            break
                if determined:
                    continue
                # Second pass: compute unknown similarities (u < v when
                # ordered — the vertex-order constraint of §4.1).
                adj_u = adj[u]
                for arc in range(lo, hi):
                    if sim[arc] != UNKNOWN:
                        continue
                    v = dst[arc]
                    if ordered and u >= v:
                        continue
                    arcs += 1
                    if use_store:
                        state = cached_arc(arc, adj_u, adj[v], mcn[arc])
                    else:
                        state = SIM if kernel_fn(adj_u, adj[v], mcn[arc]) else NSIM
                    sim_writes.append((arc, state))
                    sim_writes.append((rev[arc], state))
                    if state == SIM:
                        sd += 1
                        if sd >= mu:
                            role_writes.append((u, CORE))
                            determined = True
                            break
                    else:
                        ed -= 1
                        if ed < mu:
                            role_writes.append((u, NONCORE))
                            determined = True
                            break
                if not determined and not ordered:
                    # Consolidation saw every similarity: sd is exact.
                    role_writes.append((u, CORE if sd >= mu else NONCORE))
            return (sim_writes, role_writes), _cost(snap, arcs=arcs)

        return run_task

    def commit_role(writes) -> None:
        sim_writes, role_writes = writes
        for arc, state in sim_writes:
            sim[arc] = state
        for u, role in role_writes:
            roles[u] = role

    def make_role_task_batched(ordered: bool):
        def run_task(beg: int, end: int):
            snap = _snap()
            a0, a1 = int(off_np[beg]), int(off_np[end])
            active = np.flatnonzero(roles[beg:end] == ROLE_UNKNOWN) + beg
            f_arcs, f_states = _EMPTY_ARCS, _EMPTY_STATES
            det_v, det_r = _EMPTY_ARCS, _EMPTY_STATES
            if active.size == 0:
                return (f_arcs, f_states, det_v, det_r), _cost(snap)
            # Pass 1: fold known states — per-vertex SIM/NSIM tallies via
            # bincount over the task's arc slice (cost scales with the
            # number of *known* arcs, which early phases keep small).
            width = end - beg
            seg = sim_np[a0:a1]
            s_rel = src_np[a0:a1] - beg
            sim_known = np.bincount(s_rel[seg == SIM], minlength=width)
            nsim_known = np.bincount(s_rel[seg == NSIM], minlength=width)
            rel_active = active - beg
            sd = sim_known[rel_active]
            ed = deg_np[active] - nsim_known[rel_active]
            arcs = int(deg_np[active].sum())
            is_core = sd >= mu
            settled = is_core | (ed < mu)
            det_v = active[settled]
            det_r = np.where(is_core[settled], CORE, NONCORE).astype(np.int8)
            undetermined = active[~settled]
            if undetermined.size:
                # Pass 2: collect the unresolved frontier and resolve it
                # through the adaptive batch API.
                frontier = concat_ranges(
                    off_np[undetermined], off_np[undetermined + 1]
                )
                mask = sim_np[frontier] == UNKNOWN
                if ordered:
                    mask &= dst_np[frontier] > src_np[frontier]
                frontier = frontier[mask]
                if not ordered and frontier.size:
                    # Resolve each undirected edge once per task: drop the
                    # (v, u) direction when (u, v) is also in the frontier
                    # (the mirror write restores it at commit).  The
                    # frontier is ascending (concatenated ascending
                    # ranges), so membership is a binary search.
                    mirrors = rev_np[frontier]
                    pos = np.searchsorted(frontier, mirrors)
                    pos_clamped = np.minimum(pos, frontier.size - 1)
                    mirror_present = frontier[pos_clamped] == mirrors
                    keep = (src_np[frontier] < dst_np[frontier]) | ~mirror_present
                    frontier = frontier[keep]
                if frontier.size:
                    f_states = engine.resolve_arcs(frontier, mcn=mcn_np[frontier])
                    f_arcs = frontier
                arcs += int(frontier.size)
                # Recount by folding the resolved states as per-vertex
                # bincount deltas: a resolved arc (u, v) updates u's tally
                # directly and v's through its mirror when v is in-range.
                sim_f = f_states == SIM
                own = src_np[f_arcs] - beg
                sim_add = np.bincount(own[sim_f], minlength=width)
                nsim_add = np.bincount(own[~sim_f], minlength=width)
                mirror_v = dst_np[f_arcs]
                in_range = (mirror_v >= beg) & (mirror_v < end)
                if in_range.any():
                    sim_add += np.bincount(
                        mirror_v[in_range & sim_f] - beg, minlength=width
                    )
                    nsim_add += np.bincount(
                        mirror_v[in_range & ~sim_f] - beg, minlength=width
                    )
                rel_un = undetermined - beg
                sd2 = sd[~settled] + sim_add[rel_un]
                ed2 = ed[~settled] - nsim_add[rel_un]
                core2 = sd2 >= mu
                if ordered:
                    settled2 = core2 | (ed2 < mu)
                else:
                    # Consolidation saw every similarity: sd2 is exact.
                    settled2 = np.ones(undetermined.size, dtype=bool)
                det_v = np.concatenate([det_v, undetermined[settled2]])
                det_r = np.concatenate(
                    [
                        det_r,
                        np.where(core2[settled2], CORE, NONCORE).astype(np.int8),
                    ]
                )
            return (f_arcs, f_states, det_v, det_r), _cost(snap, arcs=arcs)

        return run_task

    def commit_role_batched(writes) -> None:
        arcs, states, det_v, det_r = writes
        commit_arc_states(sim_np, rev_np, arcs, states)
        roles[det_v] = det_r

    if batched:
        _run_stage(
            "core checking",
            ROLE_UNKNOWN,
            make_role_task_batched(True),
            commit_role_batched,
        )
        _run_stage(
            "core consolidating",
            ROLE_UNKNOWN,
            make_role_task_batched(False),
            commit_role_batched,
        )
    else:
        _run_stage(
            "core checking", ROLE_UNKNOWN, make_role_task(True), commit_role
        )
        _run_stage(
            "core consolidating",
            ROLE_UNKNOWN,
            make_role_task(False),
            commit_role,
        )

    # ==== Step 2: core and non-core clustering (Algorithm 4) ============

    def _core_arc_budget(beg: int, end: int) -> int:
        """Adjacency entries belonging to core vertices of the range (the
        scalar mode's per-arc scan count, computed vectorized)."""
        return int(deg_np[beg:end][roles[beg:end] == CORE].sum())

    def cluster_no_compsim_task(beg: int, end: int):
        unions: list[tuple[int, int]] = []
        arcs = 0
        atomics = 0
        for u in range(beg, end):
            if roles[u] != CORE:
                continue
            for arc in range(off[u], off[u + 1]):
                arcs += 1
                v = dst[arc]
                if v <= u or roles[v] != CORE or sim[arc] != SIM:
                    continue
                arcs += 2  # IsSameSet = two pointer-chasing finds
                if not uf.same_set(u, v):
                    unions.append((u, v))
                    atomics += 1  # the union's CAS
        return (unions, []), TaskCost(arcs=arcs, atomics=atomics)

    def cluster_no_compsim_task_batched(beg: int, end: int):
        a0, a1 = int(off_np[beg]), int(off_np[end])
        s_src, s_dst = src_np[a0:a1], dst_np[a0:a1]
        mask = (
            (s_dst > s_src)
            & (roles[s_src] == CORE)
            & (roles[s_dst] == CORE)
            & (sim_np[a0:a1] == SIM)
        )
        unions: list[tuple[int, int]] = []
        atomics = 0
        edges_u = s_src[mask].tolist()
        edges_v = s_dst[mask].tolist()
        arcs = _core_arc_budget(beg, end) + 2 * len(edges_u)
        for u, v in zip(edges_u, edges_v):
            if not uf.same_set(u, v):
                unions.append((u, v))
                atomics += 1
        return (
            (unions, (_EMPTY_ARCS, _EMPTY_STATES)),
            TaskCost(arcs=arcs, atomics=atomics),
        )

    def cluster_compsim_task(beg: int, end: int):
        snap = _snap()
        unions: list[tuple[int, int]] = []
        sim_writes: list[tuple[int, int]] = []
        arcs = 0
        atomics = 0
        for u in range(beg, end):
            if roles[u] != CORE:
                continue
            adj_u = adj[u]
            for arc in range(off[u], off[u + 1]):
                arcs += 1
                v = dst[arc]
                if v <= u or roles[v] != CORE:
                    continue
                unknown = sim[arc] == UNKNOWN
                if not unknown and not two_phase_clustering:
                    # Single-phase ablation: handle known-SIM edges here.
                    if sim[arc] == SIM:
                        arcs += 2
                        if not uf.same_set(u, v):
                            unions.append((u, v))
                            atomics += 1
                    continue
                if not unknown:
                    continue
                arcs += 2
                if uf.same_set(u, v):
                    continue  # union-find pruning
                if use_store:
                    state = cached_arc(arc, adj_u, adj[v], mcn[arc])
                else:
                    state = SIM if kernel_fn(adj_u, adj[v], mcn[arc]) else NSIM
                sim_writes.append((arc, state))
                sim_writes.append((rev[arc], state))
                if state == SIM:
                    unions.append((u, v))
                    atomics += 1
        return (unions, sim_writes), _cost(snap, arcs=arcs, atomics=atomics)

    def cluster_compsim_task_batched(beg: int, end: int):
        snap = _snap()
        a0, a1 = int(off_np[beg]), int(off_np[end])
        s_src, s_dst = src_np[a0:a1], dst_np[a0:a1]
        seg = sim_np[a0:a1]
        pair = (s_dst > s_src) & (roles[s_src] == CORE) & (roles[s_dst] == CORE)
        unions: list[tuple[int, int]] = []
        atomics = 0
        arcs = _core_arc_budget(beg, end)
        if not two_phase_clustering:
            # Single-phase ablation: handle known-SIM edges here.
            known = np.flatnonzero(pair & (seg == SIM))
            for u, v in zip(s_src[known].tolist(), s_dst[known].tolist()):
                arcs += 2
                if not uf.same_set(u, v):
                    unions.append((u, v))
                    atomics += 1
        unknown = np.flatnonzero(pair & (seg == UNKNOWN)) + a0
        survivors: list[int] = []
        for arc, u, v in zip(
            unknown.tolist(),
            src_np[unknown].tolist(),
            dst_np[unknown].tolist(),
        ):
            arcs += 2
            if not uf.same_set(u, v):  # union-find pruning
                survivors.append(arc)
        f_arcs = np.asarray(survivors, dtype=np.int64)
        f_states = engine.resolve_arcs(f_arcs, mcn=mcn_np[f_arcs])
        similar = f_arcs[f_states == SIM]
        for u, v in zip(src_np[similar].tolist(), dst_np[similar].tolist()):
            unions.append((u, v))
            atomics += 1
        return (
            (unions, (f_arcs, f_states)),
            _cost(snap, arcs=arcs, atomics=atomics),
        )

    def commit_cluster(writes) -> None:
        unions, sim_writes = writes
        for arc, state in sim_writes:
            sim[arc] = state
        for u, v in unions:
            uf.union(u, v)

    def commit_cluster_batched(writes) -> None:
        unions, (arcs, states) = writes
        commit_arc_states(sim_np, rev_np, arcs, states)
        for u, v in unions:
            uf.union(u, v)

    no_compsim_task = (
        cluster_no_compsim_task_batched if batched else cluster_no_compsim_task
    )
    compsim_task = (
        cluster_compsim_task_batched if batched else cluster_compsim_task
    )
    cluster_commit = commit_cluster_batched if batched else commit_cluster

    if two_phase_clustering:
        _run_stage(
            "core clustering (no compsim)",
            CORE,
            no_compsim_task,
            cluster_commit,
        )
    else:
        # Single-phase ablation: the placeholder record still occupies a
        # phase slot so the resume cursor arithmetic stays uniform.
        if phase_no >= restored_cursor:
            stages.append(StageRecord("core clustering (no compsim)", []))
            if ck is not None:
                _save_ckpt("core clustering (no compsim)")
        phase_no += 1
    _run_stage(
        "core clustering (compsim)", CORE, compsim_task, cluster_commit
    )

    # -- Phase 6: cluster id initialization (CAS-min per root) ------------
    # (``cluster_id`` itself is declared with the run state above so a
    # resumed run repopulates it from the snapshot.)

    def init_cluster_id_task(beg: int, end: int):
        mins: dict[int, int] = {}
        atomics = 0
        arcs = 0
        cores = np.flatnonzero(roles[beg:end] == CORE) + beg
        for u in cores.tolist():
            arcs += 2  # find = pointer chases
            root = uf.find(u)
            cur = mins.get(root)
            if cur is None or u < cur:
                mins[root] = u
                atomics += 1  # the CAS attempt of Algorithm 4 line 23
        return (mins, None), TaskCost(arcs=arcs, atomics=atomics)

    def commit_cluster_id(writes) -> None:
        mins, _ = writes
        for root, vid in mins.items():
            cur = cluster_id.get(root)
            if cur is None or vid < cur:
                cluster_id[root] = vid

    _run_stage("cluster id init", CORE, init_cluster_id_task, commit_cluster_id)

    # -- Phase 7: non-core clustering --------------------------------------
    # (``pairs`` is declared with the run state above for the same reason.)

    def noncore_task(beg: int, end: int):
        snap = _snap()
        local_pairs: list[tuple[int, int]] = []
        sim_writes: list[tuple[int, int]] = []
        arcs = 0
        atomics = 0
        for u in range(beg, end):
            if roles[u] != CORE:
                continue
            cid = cluster_id[uf.find(u)]
            arcs += 2
            adj_u = adj[u]
            for arc in range(off[u], off[u + 1]):
                arcs += 1
                v = dst[arc]
                if roles[v] != NONCORE:
                    continue
                state = sim[arc]
                if state == UNKNOWN:
                    if use_store:
                        state = cached_arc(arc, adj_u, adj[v], mcn[arc])
                    else:
                        state = SIM if kernel_fn(adj_u, adj[v], mcn[arc]) else NSIM
                    sim_writes.append((arc, state))
                    sim_writes.append((rev[arc], state))
                if state == SIM:
                    local_pairs.append((cid, v))
        return (local_pairs, sim_writes), _cost(snap, arcs=arcs, atomics=atomics)

    def noncore_task_batched(beg: int, end: int):
        snap = _snap()
        a0, a1 = int(off_np[beg]), int(off_np[end])
        s_src, s_dst = src_np[a0:a1], dst_np[a0:a1]
        candidates = np.flatnonzero(
            (roles[s_src] == CORE) & (roles[s_dst] == NONCORE)
        )
        local_pairs: list[tuple[int, int]] = []
        f_arcs, f_states = _EMPTY_ARCS, _EMPTY_STATES
        arcs = _core_arc_budget(beg, end)
        arcs += 2 * int(np.count_nonzero(roles[beg:end] == CORE))
        if candidates.size:
            cand = candidates + a0
            state = sim_np[cand].copy()
            unknown = state == UNKNOWN
            f_arcs = cand[unknown]
            f_states = engine.resolve_arcs(f_arcs, mcn=mcn_np[f_arcs])
            state[unknown] = f_states
            similar = cand[state == SIM]
            cids: dict[int, int] = {}
            for u, v in zip(
                src_np[similar].tolist(), dst_np[similar].tolist()
            ):
                cid = cids.get(u)
                if cid is None:
                    cid = cluster_id[uf.find(u)]
                    cids[u] = cid
                local_pairs.append((cid, v))
        return (local_pairs, (f_arcs, f_states)), _cost(snap, arcs=arcs)

    def commit_noncore(writes) -> None:
        local_pairs, sim_writes = writes
        for arc, state in sim_writes:
            sim[arc] = state
        pairs.extend(local_pairs)

    def commit_noncore_batched(writes) -> None:
        local_pairs, (arcs, states) = writes
        commit_arc_states(sim_np, rev_np, arcs, states)
        pairs.extend(local_pairs)

    if batched:
        _run_stage(
            "non-core clustering", CORE, noncore_task_batched, commit_noncore_batched
        )
    else:
        _run_stage("non-core clustering", CORE, noncore_task, commit_noncore)

    # ==== Result assembly ================================================

    labels = np.full(n, -1, dtype=np.int64)
    for u in np.flatnonzero(roles == CORE).tolist():
        labels[u] = cluster_id[uf.find(u)]

    name = algorithm_name or (
        "ppSCAN" if kernel == "vectorized" else "ppSCAN-NO"
    )
    record = RunRecord(
        algorithm=name, stages=stages, wall_seconds=time.perf_counter() - t0
    )
    if root_span is not None:
        root_span.attrs["algorithm"] = name
        tracer.end_span(root_span)
        tracer.count("run.ppscan", 1)
    return ClusteringResult(
        algorithm=name,
        params=params,
        roles=roles,
        core_labels=labels,
        noncore_pairs=pairs,
        record=record,
    )
