"""Fast exact structural clustering via whole-graph NumPy kernels.

The counted kernels in :mod:`repro.core.ppscan` exist to *study* the
paper's algorithms (operation counts drive the machine models).  When the
goal is simply the clustering of a large graph on this substrate, the
idiomatic-NumPy path below is the fastest way to the exact same result:

* thresholds and predicate pruning for all arcs at once (§3.2.2 as array
  arithmetic),
* one bulk common-neighbor pass over the surviving ``u < v`` arcs (each
  undirected edge intersected exactly once — Theorem 4.1's bound, met
  trivially),
* roles, core unions and membership pairs by masked array reductions.

Exactness against every other implementation is enforced by the
cross-validation tests.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.csr import CSRGraph
from ..intersect.bulk import common_neighbor_counts
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..similarity.bulk import min_cn_arcs, predicate_prune_arcs
from ..types import CORE, SIM, UNKNOWN, ScanParams
from ..unionfind import UnionFind
from .context import reverse_arc_index
from .result import ClusteringResult

__all__ = ["fast_structural_clustering"]


def fast_structural_clustering(
    graph: CSRGraph, params: ScanParams
) -> ClusteringResult:
    """Exact SCAN clustering, vectorized end to end."""
    t0 = time.perf_counter()
    n = graph.num_vertices
    mu = params.mu
    src = graph.arc_source()
    dst = graph.dst

    # -- similarity of every arc ------------------------------------------
    mcn = min_cn_arcs(graph, params.eps_fraction)
    state = predicate_prune_arcs(graph, mcn)
    forward_unknown = np.flatnonzero((state == UNKNOWN) & (src < dst))
    edges = np.column_stack([src[forward_unknown], dst[forward_unknown]])
    counts = common_neighbor_counts(graph, edges) + 2  # closed overlap
    similar = counts >= mcn[forward_unknown]
    state[forward_unknown] = np.where(similar, SIM, 2).astype(np.int8)
    rev = reverse_arc_index(graph)
    state[rev[forward_unknown]] = state[forward_unknown]

    # -- roles ---------------------------------------------------------------
    sim_mask = state == SIM
    sd = np.bincount(src[sim_mask], minlength=n)
    roles = np.where(sd >= mu, CORE, 2).astype(np.int8)  # 2 = NONCORE

    # -- core clustering -------------------------------------------------
    is_core = roles == CORE
    core_edge_mask = (
        sim_mask & (src < dst) & is_core[src] & is_core[dst]
    )
    uf = UnionFind(n)
    for u, v in zip(
        src[core_edge_mask].tolist(), dst[core_edge_mask].tolist()
    ):
        uf.union(u, v)
    labels = np.full(n, -1, dtype=np.int64)
    cluster_id: dict[int, int] = {}
    for u in np.flatnonzero(is_core).tolist():
        root = uf.find(u)
        if root not in cluster_id:
            cluster_id[root] = u
        labels[u] = cluster_id[root]

    # -- non-core memberships -----------------------------------------------
    member_mask = sim_mask & is_core[src] & ~is_core[dst]
    pairs = np.column_stack(
        [labels[src[member_mask]], dst[member_mask]]
    )

    record = RunRecord(
        algorithm="fast-exact",
        stages=[
            StageRecord(
                "bulk clustering",
                [
                    TaskCost(
                        arcs=graph.num_arcs,
                        compsims=int(forward_unknown.size),
                        atomics=uf.num_unions,
                    )
                ],
            )
        ],
        wall_seconds=time.perf_counter() - t0,
    )
    record.apportion_wall()
    return ClusteringResult(
        algorithm="fast-exact",
        params=params,
        roles=roles,
        core_labels=labels,
        noncore_pairs=pairs,
        record=record,
    )
