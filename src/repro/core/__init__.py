"""SCAN-family clustering algorithms."""

from .result import ClusteringResult
from .context import RunContext, reverse_arc_index
from .scan import scan
from .pscan import pscan
from .ppscan import PPSCAN_STAGES, auto_task_threshold, ppscan
from .scanxp import scanxp
from .anyscan import (
    ProgressSnapshot,
    anyscan,
    anyscan_progressive,
    estimated_memory_bytes,
)
from .scanpp import scanpp
from .gsindex import GSIndex
from .dynamic_index import DynamicGSIndex
from .fastscan import fast_structural_clustering
from .hubs import classify_peripherals
from .validate import assert_same_clustering, brute_force_scan, validate_graph
from .verify import ClusteringVerificationError, verify_clustering

__all__ = [
    "ClusteringResult",
    "RunContext",
    "reverse_arc_index",
    "scan",
    "pscan",
    "ppscan",
    "PPSCAN_STAGES",
    "auto_task_threshold",
    "scanxp",
    "anyscan",
    "anyscan_progressive",
    "ProgressSnapshot",
    "scanpp",
    "GSIndex",
    "DynamicGSIndex",
    "fast_structural_clustering",
    "classify_peripherals",
    "estimated_memory_bytes",
    "brute_force_scan",
    "assert_same_clustering",
    "validate_graph",
    "verify_clustering",
    "ClusteringVerificationError",
]
