"""Clustering results in the canonical form shared by every algorithm.

A SCAN clustering is fully described by three pieces (Definitions 2.5,
2.9, 2.10 and Lemma 3.5):

* the role of every vertex (core / non-core),
* for every core, the id of its (unique) cluster — canonically the
  smallest core id in the cluster (Definition 3.7),
* the set of ``(cluster_id, non_core)`` membership pairs — a non-core
  border vertex may belong to several clusters, which is why ppSCAN's
  non-core stage emits pairs rather than a label array.

Two algorithms produce the same clustering iff these three pieces match,
which is what :meth:`ClusteringResult.same_clustering` compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..metrics.records import RunRecord
from ..types import CORE, HUB, NONCORE, OUTLIER, ScanParams

__all__ = ["ClusteringResult"]


@dataclass
class ClusteringResult:
    """Output of one SCAN-family clustering run."""

    algorithm: str
    params: ScanParams
    roles: np.ndarray
    core_labels: np.ndarray
    noncore_pairs: np.ndarray
    record: RunRecord | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.roles = np.asarray(self.roles, dtype=np.int8)
        self.core_labels = np.asarray(self.core_labels, dtype=np.int64)
        pairs = np.asarray(self.noncore_pairs, dtype=np.int64).reshape(-1, 2)
        # Canonical order + dedup so results compare bytewise.
        if pairs.size:
            pairs = np.unique(pairs, axis=0)
        self.noncore_pairs = pairs

    # -- shape ----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.roles.size

    @property
    def num_cores(self) -> int:
        return int(np.count_nonzero(self.roles == CORE))

    @property
    def cluster_ids(self) -> np.ndarray:
        """Sorted array of distinct cluster ids."""
        core_ids = self.core_labels[self.core_labels >= 0]
        pair_ids = self.noncore_pairs[:, 0]
        return np.unique(np.concatenate([core_ids, pair_ids]))

    @property
    def num_clusters(self) -> int:
        return self.cluster_ids.size

    # -- membership -------------------------------------------------------

    def clusters(self) -> dict[int, np.ndarray]:
        """``cluster_id -> sorted member vertex array`` (cores + non-cores)."""
        members: dict[int, list[int]] = {}
        for v in np.flatnonzero(self.core_labels >= 0):
            members.setdefault(int(self.core_labels[v]), []).append(int(v))
        for cid, v in self.noncore_pairs:
            members.setdefault(int(cid), []).append(int(v))
        return {
            cid: np.unique(np.array(vs, dtype=np.int64))
            for cid, vs in sorted(members.items())
        }

    def membership(self) -> list[set[int]]:
        """Per-vertex set of cluster ids (empty for unclustered vertices)."""
        out: list[set[int]] = [set() for _ in range(self.num_vertices)]
        for v in np.flatnonzero(self.core_labels >= 0):
            out[v].add(int(self.core_labels[v]))
        for cid, v in self.noncore_pairs:
            out[int(v)].add(int(cid))
        return out

    def classify(self, graph: CSRGraph) -> np.ndarray:
        """Extended roles: CORE / NONCORE(member) / HUB / OUTLIER.

        Per Definition 2.10, an unclustered vertex is a hub iff two of its
        neighbors belong to different clusters (two *distinct* neighbors,
        drawing one cluster each).
        """
        if graph.num_vertices != self.num_vertices:
            raise ValueError("graph does not match this result")
        member = self.membership()
        out = np.empty(self.num_vertices, dtype=np.int8)
        for v in range(self.num_vertices):
            if self.roles[v] == CORE:
                out[v] = CORE
            elif member[v]:
                out[v] = NONCORE
            else:
                out[v] = (
                    HUB if _is_hub(graph.neighbors(v), member) else OUTLIER
                )
        return out

    # -- comparison -------------------------------------------------------

    def canonical(self) -> tuple[bytes, bytes, bytes]:
        """Bytes triple that is equal iff two clusterings are identical."""
        return (
            self.roles.tobytes(),
            self.core_labels.tobytes(),
            self.noncore_pairs.tobytes(),
        )

    def same_clustering(self, other: "ClusteringResult") -> bool:
        return self.canonical() == other.canonical()

    def summary(self) -> str:
        return (
            f"{self.algorithm}({self.params}): |V|={self.num_vertices}, "
            f"cores={self.num_cores}, clusters={self.num_clusters}, "
            f"noncore memberships={len(self.noncore_pairs)}"
        )

    # -- persistence --------------------------------------------------------

    def save(self, path) -> None:
        """Persist the clustering to an ``.npz`` file (records excluded —
        they describe the run, not the clustering)."""
        np.savez_compressed(
            path,
            algorithm=np.bytes_(self.algorithm.encode()),
            eps=np.float64(self.params.eps),
            mu=np.int64(self.params.mu),
            roles=self.roles,
            core_labels=self.core_labels,
            noncore_pairs=self.noncore_pairs,
        )

    @classmethod
    def load(cls, path) -> "ClusteringResult":
        """Load a clustering persisted by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                algorithm=bytes(data["algorithm"]).decode(),
                params=ScanParams(
                    eps=float(data["eps"]), mu=int(data["mu"])
                ),
                roles=data["roles"],
                core_labels=data["core_labels"],
                noncore_pairs=data["noncore_pairs"],
            )


def _is_hub(neighbors: np.ndarray, member: list[set[int]]) -> bool:
    """Does this unclustered vertex bridge two different clusters?

    True iff among its clustered neighbors there exist two distinct
    neighbors ``v != w`` and clusters ``c1 in member[v]``,
    ``c2 in member[w]`` with ``c1 != c2`` — equivalently, the clustered
    neighbors do not all share one identical singleton membership.
    """
    first: set[int] | None = None
    for v in neighbors:
        sets = member[int(v)]
        if not sets:
            continue
        if first is None:
            first = sets
            continue
        if len(first) > 1 or len(sets) > 1 or first != sets:
            return True
    return False
