"""Plain-text table and series rendering for the experiment harness.

The paper's figures become ASCII tables: one row per x-value (ε, thread
count, …) and one column per series (algorithm, dataset, µ, …), which is
the most diff-friendly way to record "the same rows/series the paper
reports" without a plotting stack.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "format_seconds"]


def format_seconds(value: float | None) -> str:
    """Human-scaled time cell; ``None`` renders as the paper's RE/TLE."""
    if value is None:
        return "RE"
    if value == float("inf"):
        return "TLE"
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    """Render a right-aligned ASCII table with a separator under headers."""
    table = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    ncols = max(len(r) for r in table)
    for r in table:
        r.extend([""] * (ncols - len(r)))
    widths = [max(len(r[c]) for r in table) for c in range(ncols)]
    lines = [title]
    for i, r in enumerate(table):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence],
    fmt=lambda v: str(v),
) -> str:
    """Render ``{series_name: values-over-xs}`` as a table (x as rows)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([str(x)] + [fmt(series[name][i]) for name in series])
    return format_table(title, headers, rows)
