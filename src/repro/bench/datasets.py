"""Dataset and run registries for the benchmark harness.

Graphs and clustering runs are cached per process: the figure benches
share runs aggressively (e.g. Figures 2 and 3 price the *same*
machine-independent work records on the CPU and KNL models; Figure 4
reuses Figure 2's pSCAN/ppSCAN runs), which keeps a full harness pass
tractable in pure Python.

``REPRO_SCALE`` (env var, default 0.4) scales every evaluation graph.
"""

from __future__ import annotations

import os
from typing import Callable

from ..core import anyscan, ppscan, pscan, scan, scanxp
from ..core.result import ClusteringResult
from ..graph.csr import CSRGraph
from ..graph.generators import real_world_standin, roll_graph
from ..types import ScanParams

__all__ = [
    "bench_scale",
    "standin",
    "roll",
    "run_algorithm",
    "clear_caches",
    "PAPER_GRAPH_SIZES",
    "EVAL_DATASETS",
    "ROLL_DEGREES",
]

#: The paper's Table-1 graph sizes (|V|, |E|), used for paper-scale memory
#: feasibility checks (anySCAN's RE entries).
PAPER_GRAPH_SIZES: dict[str, tuple[int, int]] = {
    "orkut": (3_072_627, 117_185_083),
    "webbase": (118_142_143, 525_013_368),
    "twitter": (41_652_230, 684_500_375),
    "friendster": (124_836_180, 1_806_067_135),
}

#: The four evaluation graphs of Figures 2-7.
EVAL_DATASETS = ("orkut", "webbase", "twitter", "friendster")

#: Table-2 / Figure-8 ROLL average degrees.
ROLL_DEGREES = (40, 80, 120, 160)

_GRAPHS: dict[tuple, CSRGraph] = {}
_RUNS: dict[tuple, ClusteringResult] = {}

_ALGORITHMS: dict[str, Callable] = {
    "SCAN": scan,
    "pSCAN": pscan,
    "anySCAN": anyscan,
    "SCAN-XP": scanxp,
    "ppSCAN": ppscan,
}


def bench_scale() -> float:
    """Evaluation graph scale factor (``REPRO_SCALE`` env var)."""
    return float(os.environ.get("REPRO_SCALE", "0.4"))


def standin(name: str, scale: float | None = None) -> CSRGraph:
    """Cached real-world stand-in graph."""
    if scale is None:
        scale = bench_scale()
    key = ("standin", name, scale)
    if key not in _GRAPHS:
        _GRAPHS[key] = real_world_standin(name, scale=scale)
    return _GRAPHS[key]


def roll(avg_degree: int, scale: float | None = None) -> CSRGraph:
    """Cached ROLL graph with ~equal edge count across degrees.

    Mirrors Table 2: all four graphs share the edge budget while the
    average degree varies, so ``n = 2 * |E| / d``.
    """
    if scale is None:
        scale = bench_scale()
    target_edges = int(200_000 * scale)
    m_attach = avg_degree // 2
    # The repeated-endpoints construction yields m_attach * (n - m_attach)
    # edges pre-dedup; solve n for the shared edge budget, then compensate
    # for duplicate-collapse losses (worst for high degree at small n)
    # with up to two deterministic re-sizes.
    n = max(avg_degree + 1, target_edges // m_attach + m_attach)
    key = ("roll", avg_degree, scale)
    if key not in _GRAPHS:
        graph = roll_graph(n, avg_degree, seed=7 + avg_degree)
        for _ in range(2):
            if graph.num_edges >= 0.93 * target_edges:
                break
            # Deficit is duplicate collapse: inflate the pre-dedup budget
            # by the measured survival ratio.
            survival = graph.num_edges / (m_attach * (n - m_attach))
            n = int(target_edges / (m_attach * survival)) + m_attach
            graph = roll_graph(n, avg_degree, seed=7 + avg_degree)
        _GRAPHS[key] = graph
    return _GRAPHS[key]


def run_algorithm(
    algo: str,
    graph_key: str,
    graph: CSRGraph,
    params: ScanParams,
    **kwargs,
) -> ClusteringResult:
    """Cached clustering run (records are machine-independent, so one run
    serves every machine model and thread count)."""
    cache_key = (
        algo,
        graph_key,
        params.eps,
        params.mu,
        tuple(sorted(kwargs.items())),
    )
    if cache_key not in _RUNS:
        _RUNS[cache_key] = _ALGORITHMS[algo](graph, params, **kwargs)
    return _RUNS[cache_key]


def clear_caches() -> None:
    _GRAPHS.clear()
    _RUNS.clear()
