"""One experiment per paper table/figure (and per DESIGN.md ablation).

Every function returns an :class:`ExperimentResult` whose ``text`` is the
paper-shaped table and whose ``data`` holds the raw numbers the benchmark
assertions check.  Simulated seconds come from pricing machine-independent
work records on the documented CPU/KNL machine models; counts (Figure 4)
are direct measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.anyscan import estimated_memory_bytes
from ..core.ppscan import PPSCAN_STAGES
from ..graph.stats import format_stats_table, graph_stats
from ..metrics.records import RunRecord, TaskCost
from ..parallel.machine import CPU_SERVER, KNL_SERVER, MachineSpec
from ..types import ScanParams
from .datasets import (
    EVAL_DATASETS,
    PAPER_GRAPH_SIZES,
    ROLL_DEGREES,
    roll,
    run_algorithm,
    standin,
)
from .reporting import format_seconds, format_series, format_table

__all__ = ["ExperimentResult", "EXPERIMENTS"] + [
    name
    for name in (
        "table1_real_graphs",
        "table2_roll_graphs",
        "fig1_breakdown",
        "fig2_overall_cpu",
        "fig3_overall_knl",
        "fig4_invocations",
        "fig5_vectorization",
        "fig6_scalability",
        "fig7_robustness",
        "fig8_roll",
        "kernel_design_space",
        "related_baselines",
        "ablate_task_threshold",
        "ablate_two_phase_clustering",
        "ablate_prune_phase",
        "ablate_ed_order",
        "ablate_lane_width",
    )
]

DEFAULT_EPS = (0.2, 0.4, 0.6, 0.8)
DEFAULT_MU = 5
#: The paper's 64 GB anySCAN memory budget.
MEMORY_LIMIT_64GB = 64 * 10**9


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


# ---------------------------------------------------------------------------
# Tables 1 and 2
# ---------------------------------------------------------------------------


def table1_real_graphs(scale: float | None = None) -> ExperimentResult:
    """Table 1: real-world graph statistics (stand-in scale)."""
    rows = [
        graph_stats(name, standin(name, scale)) for name in EVAL_DATASETS
    ]
    text = format_stats_table(
        rows, "Table 1: real-world stand-in graph statistics"
    )
    return ExperimentResult(
        "table1", "Real-world graph statistics", text, {"rows": rows}
    )


def table2_roll_graphs(scale: float | None = None) -> ExperimentResult:
    """Table 2: synthetic ROLL graph statistics (equal |E|, varying d)."""
    rows = [
        graph_stats(f"ROLL-d{d}", roll(d, scale)) for d in ROLL_DEGREES
    ]
    text = format_stats_table(rows, "Table 2: synthetic ROLL graph statistics")
    return ExperimentResult(
        "table2", "Synthetic ROLL graph statistics", text, {"rows": rows}
    )


# ---------------------------------------------------------------------------
# Figure 1: SCAN vs pSCAN time breakdown
# ---------------------------------------------------------------------------


def fig1_breakdown(
    scale: float | None = None,
    eps_values: tuple[float, ...] = DEFAULT_EPS,
    datasets: tuple[str, ...] = ("livejournal", "orkut", "twitter"),
    machine: MachineSpec = CPU_SERVER,
) -> ExperimentResult:
    """Figure 1: per-bucket time breakdown of SCAN and pSCAN, µ = 5.

    Buckets: similarity evaluation / workload reduction / other, priced on
    the CPU model single-threaded (both algorithms are sequential).
    """
    buckets = (
        "similarity evaluation",
        "workload reduction computation",
        "other computation",
    )
    rows = []
    data: dict = {}
    for name in datasets:
        graph = standin(name, scale)
        for algo in ("SCAN", "pSCAN"):
            for eps in eps_values:
                params = ScanParams(eps, DEFAULT_MU)
                record = run_algorithm(algo, name, graph, params).record
                cells = {}
                for bucket in buckets:
                    try:
                        stage = record.stage(bucket)
                    except KeyError:
                        cells[bucket] = 0.0
                        continue
                    cells[bucket] = machine.stage_seconds(stage, 1)
                data[(name, algo, eps)] = cells
                rows.append(
                    [name, algo, f"{eps}"]
                    + [format_seconds(cells[b]) for b in buckets]
                    + [format_seconds(sum(cells.values()))]
                )
    text = format_table(
        f"Figure 1: time breakdown of SCAN and pSCAN (mu={DEFAULT_MU}, "
        f"{machine.name})",
        ["dataset", "algorithm", "eps", *buckets, "total"],
        rows,
    )
    return ExperimentResult("fig1", "SCAN/pSCAN breakdown", text, data)


# ---------------------------------------------------------------------------
# Figures 2 and 3: overall comparison on CPU and KNL
# ---------------------------------------------------------------------------


def _overall(
    machine: MachineSpec,
    threads: int,
    scale: float | None,
    eps_values: tuple[float, ...],
    datasets: tuple[str, ...],
) -> tuple[str, dict]:
    algos = ("SCAN", "pSCAN", "anySCAN", "SCAN-XP", "ppSCAN")
    data: dict = {}
    blocks = []
    for name in datasets:
        graph = standin(name, scale)
        # anySCAN ran out of memory on the paper's 64 GB server for the
        # paper-scale webbase/friendster; reproduce the RE entries.
        paper_v, paper_e = PAPER_GRAPH_SIZES[name]
        anyscan_re = estimated_memory_bytes(paper_v, paper_e) > MEMORY_LIMIT_64GB
        series: dict[str, list] = {a: [] for a in algos}
        # SCAN and SCAN-XP workloads are ε-independent (Theorem 3.4 /
        # exhaustive computation): run once per dataset and reuse.
        fixed_eps = eps_values[0]
        for eps in eps_values:
            params = ScanParams(eps, DEFAULT_MU)
            for algo in algos:
                if algo == "anySCAN" and anyscan_re:
                    series[algo].append(None)
                    continue
                kwargs = {}
                if algo in ("SCAN-XP", "ppSCAN"):
                    kwargs["lanes"] = machine.lanes
                run_params = (
                    ScanParams(fixed_eps, DEFAULT_MU)
                    if algo in ("SCAN", "SCAN-XP")
                    else params
                )
                record = run_algorithm(
                    algo, name, graph, run_params, **kwargs
                ).record
                t = 1 if algo in ("SCAN", "pSCAN") else threads
                series[algo].append(machine.run_seconds(record, t))
        data[name] = series
        blocks.append(
            format_series(
                f"dataset = {name}"
                + (" (anySCAN: RE at paper scale, >64 GB)" if anyscan_re else ""),
                "eps",
                eps_values,
                series,
                fmt=format_seconds,
            )
        )
    header = (
        f"Overall comparison on {machine.name}, mu={DEFAULT_MU} "
        f"(SCAN/pSCAN sequential; parallel algorithms at {threads} threads)"
    )
    return header + "\n\n" + "\n\n".join(blocks), data


def fig2_overall_cpu(
    scale: float | None = None,
    eps_values: tuple[float, ...] = DEFAULT_EPS,
    datasets: tuple[str, ...] = EVAL_DATASETS,
) -> ExperimentResult:
    """Figure 2: comparison with existing algorithms on the CPU server."""
    text, data = _overall(CPU_SERVER, 64, scale, eps_values, datasets)
    return ExperimentResult("fig2", "Overall comparison (CPU)", text, data)


def fig3_overall_knl(
    scale: float | None = None,
    eps_values: tuple[float, ...] = DEFAULT_EPS,
    datasets: tuple[str, ...] = EVAL_DATASETS,
) -> ExperimentResult:
    """Figure 3: comparison with existing algorithms on the KNL server."""
    text, data = _overall(KNL_SERVER, 256, scale, eps_values, datasets)
    return ExperimentResult("fig3", "Overall comparison (KNL)", text, data)


# ---------------------------------------------------------------------------
# Figure 4: set-intersection invocation reduction
# ---------------------------------------------------------------------------


def fig4_invocations(
    scale: float | None = None,
    eps_values: tuple[float, ...] = DEFAULT_EPS,
    datasets: tuple[str, ...] = EVAL_DATASETS,
) -> ExperimentResult:
    """Figure 4: normalized CompSim invocation count, pSCAN vs ppSCAN."""
    data: dict = {}
    blocks = []
    for name in datasets:
        graph = standin(name, scale)
        m = graph.num_edges
        series: dict[str, list] = {"pSCAN": [], "ppSCAN": []}
        for eps in eps_values:
            params = ScanParams(eps, DEFAULT_MU)
            for algo in series:
                result = run_algorithm(algo, name, graph, params)
                series[algo].append(result.record.compsim_invocations / m)
        data[name] = series
        blocks.append(
            format_series(
                f"dataset = {name} (|E| = {m:,})",
                "eps",
                eps_values,
                series,
                fmt=lambda v: f"{v:.3f}",
            )
        )
    text = (
        f"Figure 4: normalized set-intersection invocations "
        f"(invocations / |E|), mu={DEFAULT_MU}\n\n" + "\n\n".join(blocks)
    )
    return ExperimentResult("fig4", "Invocation reduction", text, data)


# ---------------------------------------------------------------------------
# Figure 5: vectorization speedup of core checking
# ---------------------------------------------------------------------------


def _core_check_seconds(record: RunRecord, machine: MachineSpec, threads: int) -> float:
    return machine.stage_seconds(
        record.stage("core checking"), threads
    ) + machine.stage_seconds(record.stage("core consolidating"), threads)


def fig5_vectorization(
    scale: float | None = None,
    eps_values: tuple[float, ...] = DEFAULT_EPS,
    datasets: tuple[str, ...] = EVAL_DATASETS,
) -> ExperimentResult:
    """Figure 5: core-checking speedup of the pivot-vectorized kernel over
    ppSCAN-NO (scalar merge), on the CPU (AVX2) and KNL (AVX512) models."""
    data: dict = {}
    blocks = []
    for name in datasets:
        graph = standin(name, scale)
        series: dict[str, list] = {"CPU (AVX2)": [], "KNL (AVX512)": []}
        for eps in eps_values:
            params = ScanParams(eps, DEFAULT_MU)
            rec_no = run_algorithm(
                "ppSCAN", name, graph, params, kernel="merge"
            ).record
            for label, machine, threads in (
                ("CPU (AVX2)", CPU_SERVER, 64),
                ("KNL (AVX512)", KNL_SERVER, 256),
            ):
                rec_vec = run_algorithm(
                    "ppSCAN", name, graph, params, lanes=machine.lanes
                ).record
                series[label].append(
                    _core_check_seconds(rec_no, machine, threads)
                    / _core_check_seconds(rec_vec, machine, threads)
                )
        data[name] = series
        blocks.append(
            format_series(
                f"dataset = {name}",
                "eps",
                eps_values,
                series,
                fmt=lambda v: f"{v:.2f}x",
            )
        )
    text = (
        f"Figure 5: core-checking speedup of ppSCAN over ppSCAN-NO "
        f"(pivot-vectorized vs scalar merge), mu={DEFAULT_MU}\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult("fig5", "Vectorization speedup", text, data)


# ---------------------------------------------------------------------------
# Figure 6: scalability with thread count (KNL)
# ---------------------------------------------------------------------------

#: Mapping from the paper's four Figure-6 stage groups to our phase names.
FIG6_GROUPS: dict[str, tuple[str, ...]] = {
    "1. Similarity Pruning": ("similarity pruning",),
    "2. Core Checking and Consolidating": (
        "core checking",
        "core consolidating",
    ),
    "3. Core Clustering": (
        "core clustering (no compsim)",
        "core clustering (compsim)",
        "cluster id init",
    ),
    "4. Non-Core Clustering": ("non-core clustering",),
}

DEFAULT_THREADS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def fig6_scalability(
    scale: float | None = None,
    datasets: tuple[str, ...] = EVAL_DATASETS,
    threads: tuple[int, ...] = DEFAULT_THREADS,
    eps: float = 0.2,
) -> ExperimentResult:
    """Figure 6: per-stage runtime of ppSCAN vs thread count on KNL."""
    machine = KNL_SERVER
    data: dict = {}
    blocks = []
    for name in datasets:
        graph = standin(name, scale)
        params = ScanParams(eps, DEFAULT_MU)
        record = run_algorithm(
            "ppSCAN", name, graph, params, lanes=machine.lanes
        ).record
        series: dict[str, list] = {g: [] for g in FIG6_GROUPS}
        series["The Whole ppSCAN"] = []
        for t in threads:
            breakdown = machine.stage_breakdown(record, t)
            total = 0.0
            for group, stage_names in FIG6_GROUPS.items():
                sec = sum(breakdown[s] for s in stage_names)
                series[group].append(sec)
                total += sec
            series["The Whole ppSCAN"].append(total)
        data[name] = series
        blocks.append(
            format_series(
                f"dataset = {name}",
                "threads",
                threads,
                series,
                fmt=format_seconds,
            )
        )
    text = (
        f"Figure 6: ppSCAN stage scalability on {machine.name}, "
        f"eps={eps}, mu={DEFAULT_MU}\n\n" + "\n\n".join(blocks)
    )
    return ExperimentResult("fig6", "Thread scalability", text, data)


# ---------------------------------------------------------------------------
# Figure 7: robustness to mu and eps
# ---------------------------------------------------------------------------


def fig7_robustness(
    scale: float | None = None,
    eps_values: tuple[float, ...] = DEFAULT_EPS,
    mu_values: tuple[int, ...] = (2, 5, 10, 15),
    datasets: tuple[str, ...] = EVAL_DATASETS,
) -> ExperimentResult:
    """Figure 7: ppSCAN runtime for µ in {2, 5, 10, 15} on KNL."""
    machine, threads = KNL_SERVER, 256
    data: dict = {}
    blocks = []
    for name in datasets:
        graph = standin(name, scale)
        series: dict[str, list] = {f"mu={mu}": [] for mu in mu_values}
        for eps in eps_values:
            for mu in mu_values:
                record = run_algorithm(
                    "ppSCAN",
                    name,
                    graph,
                    ScanParams(eps, mu),
                    lanes=machine.lanes,
                ).record
                series[f"mu={mu}"].append(machine.run_seconds(record, threads))
        data[name] = series
        blocks.append(
            format_series(
                f"dataset = {name}",
                "eps",
                eps_values,
                series,
                fmt=format_seconds,
            )
        )
    text = (
        f"Figure 7: ppSCAN robustness over mu on {machine.name} "
        f"({threads} threads)\n\n" + "\n\n".join(blocks)
    )
    return ExperimentResult("fig7", "Robustness over mu", text, data)


# ---------------------------------------------------------------------------
# Figure 8: ROLL graphs, runtime and self-speedup
# ---------------------------------------------------------------------------


def fig8_roll(
    scale: float | None = None,
    eps_values: tuple[float, ...] = DEFAULT_EPS,
    degrees: tuple[int, ...] = ROLL_DEGREES,
) -> ExperimentResult:
    """Figure 8: ppSCAN on ROLL graphs — runtime and self-speedup on both
    servers, µ = 5."""
    data: dict = {}
    blocks = []
    for machine, threads in ((CPU_SERVER, 64), (KNL_SERVER, 256)):
        runtime: dict[str, list] = {}
        speedup: dict[str, list] = {}
        for d in degrees:
            graph = roll(d, scale)
            rt, sp = [], []
            for eps in eps_values:
                record = run_algorithm(
                    "ppSCAN",
                    f"ROLL-d{d}",
                    graph,
                    ScanParams(eps, DEFAULT_MU),
                    lanes=machine.lanes,
                ).record
                t_par = machine.run_seconds(record, threads)
                rt.append(t_par)
                sp.append(machine.run_seconds(record, 1) / t_par)
            runtime[f"ROLL-d{d}"] = rt
            speedup[f"ROLL-d{d}"] = sp
        data[machine.name] = {"runtime": runtime, "speedup": speedup}
        blocks.append(
            format_series(
                f"runtime on {machine.name} ({threads} threads)",
                "eps",
                eps_values,
                runtime,
                fmt=format_seconds,
            )
        )
        blocks.append(
            format_series(
                f"self-speedup on {machine.name} ({threads} threads vs 1)",
                "eps",
                eps_values,
                speedup,
                fmt=lambda v: f"{v:.1f}x",
            )
        )
    text = (
        f"Figure 8: ppSCAN on 1-budget-edge ROLL graphs, mu={DEFAULT_MU}\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentResult("fig8", "ROLL robustness", text, data)


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md §5)
# ---------------------------------------------------------------------------


def ablate_task_threshold(
    scale: float | None = None,
    thresholds: tuple[int, ...] = (64, 256, 1024, 4096, 16384, 65536),
    dataset: str = "twitter",
    eps: float = 0.2,
) -> ExperimentResult:
    """Task-granularity trade-off: load balance vs scheduling overhead."""
    machine, threads = KNL_SERVER, 256
    graph = standin(dataset, scale)
    params = ScanParams(eps, DEFAULT_MU)
    rows = []
    data: dict = {}
    for threshold in thresholds:
        record = run_algorithm(
            "ppSCAN",
            dataset,
            graph,
            params,
            lanes=machine.lanes,
            task_threshold=threshold,
        ).record
        tasks = sum(s.num_tasks for s in record.stages)
        sec = machine.run_seconds(record, threads)
        data[threshold] = {"tasks": tasks, "seconds": sec}
        rows.append([threshold, tasks, format_seconds(sec)])
    text = format_table(
        f"Ablation: Algorithm-5 degree-sum threshold ({dataset}, eps={eps}, "
        f"{machine.name} @ {threads} threads)",
        ["threshold", "total tasks", "simulated time"],
        rows,
    )
    return ExperimentResult("ablate_threshold", "Task threshold", text, data)


def ablate_two_phase_clustering(
    scale: float | None = None,
    datasets: tuple[str, ...] = ("orkut", "twitter"),
    eps: float = 0.2,
) -> ExperimentResult:
    """Two-phase core clustering vs single phase: CompSim counts saved by
    clustering known-similar edges before computing unknown ones."""
    rows = []
    data: dict = {}
    for name in datasets:
        graph = standin(name, scale)
        params = ScanParams(eps, DEFAULT_MU)
        two = run_algorithm("ppSCAN", name, graph, params).record
        one = run_algorithm(
            "ppSCAN", name, graph, params, two_phase_clustering=False
        ).record

        def cluster_compsims(record: RunRecord) -> int:
            return (
                record.stage("core clustering (compsim)").total().compsims
            )

        data[name] = {
            "two_phase": cluster_compsims(two),
            "single_phase": cluster_compsims(one),
        }
        rows.append(
            [name, cluster_compsims(two), cluster_compsims(one)]
        )
    text = format_table(
        f"Ablation: two-phase core clustering (CompSim invocations in the "
        f"clustering step, eps={eps}, mu={DEFAULT_MU})",
        ["dataset", "two-phase", "single-phase"],
        rows,
    )
    return ExperimentResult("ablate_two_phase", "Two-phase clustering", text, data)


def ablate_prune_phase(
    scale: float | None = None,
    datasets: tuple[str, ...] = ("orkut", "twitter"),
    eps_values: tuple[float, ...] = (0.2, 0.6),
) -> ExperimentResult:
    """Similarity-predicate pruning phase on/off: CompSim invocations."""
    rows = []
    data: dict = {}
    for name in datasets:
        graph = standin(name, scale)
        for eps in eps_values:
            params = ScanParams(eps, DEFAULT_MU)
            with_prune = run_algorithm("ppSCAN", name, graph, params).record
            without = run_algorithm(
                "ppSCAN", name, graph, params, prune_phase=False
            ).record
            data[(name, eps)] = {
                "with": with_prune.compsim_invocations,
                "without": without.compsim_invocations,
            }
            rows.append(
                [
                    name,
                    eps,
                    with_prune.compsim_invocations,
                    without.compsim_invocations,
                ]
            )
    text = format_table(
        "Ablation: similarity-predicate pruning phase (total CompSim "
        f"invocations, mu={DEFAULT_MU})",
        ["dataset", "eps", "with prune", "without prune"],
        rows,
    )
    return ExperimentResult("ablate_prune", "Prune phase", text, data)


def ablate_ed_order(
    scale: float | None = None,
    datasets: tuple[str, ...] = ("orkut", "twitter"),
    eps_values: tuple[float, ...] = (0.2, 0.6),
) -> ExperimentResult:
    """pSCAN's dynamic ed-ordering vs static degree order — the paper's
    §4.1 claim that dropping the priority queue costs little pruning."""
    rows = []
    data: dict = {}
    for name in datasets:
        graph = standin(name, scale)
        for eps in eps_values:
            params = ScanParams(eps, DEFAULT_MU)
            ordered = run_algorithm("pSCAN", name, graph, params).record
            static = run_algorithm(
                "pSCAN", name, graph, params, use_ed_order=False
            ).record
            data[(name, eps)] = {
                "ed_order": ordered.compsim_invocations,
                "static": static.compsim_invocations,
            }
            rows.append(
                [
                    name,
                    eps,
                    ordered.compsim_invocations,
                    static.compsim_invocations,
                ]
            )
    text = format_table(
        "Ablation: pSCAN ed-priority ordering vs static degree order "
        f"(CompSim invocations, mu={DEFAULT_MU})",
        ["dataset", "eps", "ed order", "static order"],
        rows,
    )
    return ExperimentResult("ablate_ed_order", "ed ordering", text, data)


def ablate_lane_width(
    scale: float | None = None,
    lanes_values: tuple[int, ...] = (4, 8, 16, 32),
    dataset: str = "orkut",
    eps: float = 0.2,
) -> ExperimentResult:
    """Vector lane-width sweep for the pivot-vectorized kernel."""
    graph = standin(dataset, scale)
    params = ScanParams(eps, DEFAULT_MU)
    rec_no = run_algorithm("ppSCAN", dataset, graph, params, kernel="merge").record
    rows = []
    data: dict = {}
    for lanes in lanes_values:
        rec = run_algorithm("ppSCAN", dataset, graph, params, lanes=lanes).record
        machine = KNL_SERVER
        speedup = _core_check_seconds(rec_no, machine, 256) / _core_check_seconds(
            rec, machine, 256
        )
        total = rec.total()
        data[lanes] = {
            "vector_ops": total.vector_ops,
            "scalar_cmp": total.scalar_cmp,
            "speedup": speedup,
        }
        rows.append(
            [lanes, total.vector_ops, total.scalar_cmp, f"{speedup:.2f}x"]
        )
    text = format_table(
        f"Ablation: vector lane width ({dataset}, eps={eps}, KNL pricing)",
        ["lanes", "vector ops", "scalar cmps", "core-check speedup"],
        rows,
    )
    return ExperimentResult("ablate_lanes", "Lane width", text, data)


def kernel_design_space(
    scale: float | None = None,
    dataset: str = "twitter",
    eps_values: tuple[float, ...] = DEFAULT_EPS,
) -> ExperimentResult:
    """§3.2.2 design space: the intersection kernels on a real workload.

    Runs every kernel over the exact set of edges ppSCAN's role phases
    would compute (predicate-pruned out edges excluded), and prices the
    op counts on the KNL model.  Expected shapes: bounded kernels beat
    the full-intersection ones and improve with ε; the branch-free merge
    is cheap per step but ε-flat; the pivot-vectorized kernel is the
    best or near-best bounded kernel.
    """
    from ..intersect import (
        OpCounter,
        branchless_merge_count,
        galloping_compsim,
        merge_compsim,
        merge_count,
        pivot_vectorized_compsim,
        simd_shuffle_count,
    )
    from ..similarity.bulk import min_cn_arcs, predicate_prune_arcs
    from ..types import UNKNOWN

    graph = standin(dataset, scale)
    off = graph.offsets.tolist()
    dst = graph.dst.tolist()
    adj = [dst[off[u] : off[u + 1]] for u in range(graph.num_vertices)]

    kernels = {
        "merge+bounds": lambda a, b, c, ctr: merge_compsim(a, b, c, ctr),
        "galloping+bounds": lambda a, b, c, ctr: galloping_compsim(a, b, c, ctr),
        "pivot-vectorized": lambda a, b, c, ctr: pivot_vectorized_compsim(
            a, b, c, lanes=16, counter=ctr
        ),
        "merge-full": lambda a, b, c, ctr: merge_count(a, b, ctr) + 2 >= c,
        "branchless-full": lambda a, b, c, ctr: (
            branchless_merge_count(a, b, ctr) + 2 >= c
        ),
        "shuffle-full": lambda a, b, c, ctr: (
            simd_shuffle_count(a, b, lanes=4, counter=ctr) + 2 >= c
        ),
    }
    machine = KNL_SERVER
    series: dict[str, list] = {k: [] for k in kernels}
    data: dict = {}
    for eps in eps_values:
        params = ScanParams(eps, DEFAULT_MU)
        mcn = min_cn_arcs(graph, params.eps_fraction)
        prune = predicate_prune_arcs(graph, mcn)
        work = [
            (u, arc)
            for u in range(graph.num_vertices)
            for arc in range(off[u], off[u + 1])
            if u < dst[arc] and prune[arc] == UNKNOWN
        ]
        data[eps] = {"edges": len(work)}
        for name, kernel in kernels.items():
            counter = OpCounter()
            for u, arc in work:
                kernel(adj[u], adj[dst[arc]], int(mcn[arc]), counter)
            cost = TaskCost(
                scalar_cmp=counter.scalar_cmp,
                branchless_cmp=counter.branchless_cmp,
                vector_ops=counter.vector_ops,
                bound_updates=counter.bound_updates,
            )
            seconds = machine.task_cycles(cost) / machine.clock_hz
            series[name].append(seconds)
            data[eps][name] = seconds
    text = format_series(
        f"Kernel design space on {dataset} (KNL pricing of the "
        f"predicate-surviving edge workload, mu={DEFAULT_MU})",
        "eps",
        eps_values,
        series,
        fmt=format_seconds,
    )
    return ExperimentResult("kernels", "Intersection kernel design space", text, data)


def related_baselines(
    scale: float | None = None,
    dataset: str = "twitter",
    eps_values: tuple[float, ...] = (0.2, 0.6),
) -> ExperimentResult:
    """§3.3 baselines beyond Figures 2-3: GS*-Index and SCAN++.

    Reproduces the paper's qualitative verdicts: GS*-Index queries are
    cheap but its construction is exhaustive (paying off only after many
    queries); SCAN++'s DTAR maintenance dwarfs its intersection savings.
    """
    from ..core.gsindex import GSIndex
    from ..core.scanpp import scanpp

    machine, threads = KNL_SERVER, 256
    graph = standin(dataset, scale)
    index = GSIndex(graph)
    build_cost = machine.run_seconds(index.construction_record, 1)
    rows = []
    data: dict = {
        "index_build_seconds": build_cost,
        "index_build_compsims": index.construction_record.compsim_invocations,
    }
    for eps in eps_values:
        params = ScanParams(eps, DEFAULT_MU)
        pp = run_algorithm("ppSCAN", dataset, graph, params, lanes=machine.lanes)
        pp_sec = machine.run_seconds(pp.record, threads)
        query = index.query(params)
        query_sec = machine.run_seconds(query.record, 1)
        sp = scanpp(graph, params)
        sp_sec = machine.run_seconds(sp.record, 1)
        ps = run_algorithm("pSCAN", dataset, graph, params)
        ps_sec = machine.run_seconds(ps.record, 1)
        data[eps] = {
            "ppscan": pp_sec,
            "gsindex_query": query_sec,
            "scanpp": sp_sec,
            "pscan": ps_sec,
            "scanpp_compsims": sp.record.compsim_invocations,
            "pscan_compsims": ps.record.compsim_invocations,
        }
        rows.append(
            [
                eps,
                format_seconds(pp_sec),
                format_seconds(query_sec),
                format_seconds(sp_sec),
                format_seconds(ps_sec),
            ]
        )
    text = format_table(
        f"Related baselines on {dataset} (KNL model; index built once at "
        f"{format_seconds(build_cost)}, exhaustive)",
        ["eps", "ppSCAN@256", "GS*-Index query", "SCAN++", "pSCAN"],
        rows,
    )
    return ExperimentResult("related", "GS*-Index / SCAN++ baselines", text, data)


#: Experiment registry for the CLI (`repro-scan bench <id>`).
EXPERIMENTS = {
    "table1": table1_real_graphs,
    "table2": table2_roll_graphs,
    "fig1": fig1_breakdown,
    "fig2": fig2_overall_cpu,
    "fig3": fig3_overall_knl,
    "fig4": fig4_invocations,
    "fig5": fig5_vectorization,
    "fig6": fig6_scalability,
    "fig7": fig7_robustness,
    "fig8": fig8_roll,
    "kernels": kernel_design_space,
    "related": related_baselines,
    "ablate_threshold": ablate_task_threshold,
    "ablate_two_phase": ablate_two_phase_clustering,
    "ablate_prune": ablate_prune_phase,
    "ablate_ed_order": ablate_ed_order,
    "ablate_lanes": ablate_lane_width,
}
