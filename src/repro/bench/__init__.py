"""Benchmark harness: dataset registry, experiments, reporting."""

from .datasets import (
    EVAL_DATASETS,
    PAPER_GRAPH_SIZES,
    ROLL_DEGREES,
    bench_scale,
    clear_caches,
    roll,
    run_algorithm,
    standin,
)
from .reporting import format_seconds, format_series, format_table
from .experiments import EXPERIMENTS, ExperimentResult

__all__ = [
    "EVAL_DATASETS",
    "PAPER_GRAPH_SIZES",
    "ROLL_DEGREES",
    "bench_scale",
    "clear_caches",
    "roll",
    "run_algorithm",
    "standin",
    "format_seconds",
    "format_series",
    "format_table",
    "EXPERIMENTS",
    "ExperimentResult",
]
