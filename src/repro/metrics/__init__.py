"""Instrumentation: machine-independent work records."""

from .records import RunRecord, StageRecord, TaskCost

__all__ = ["TaskCost", "StageRecord", "RunRecord"]
