"""Machine-independent work records.

A clustering run produces a :class:`RunRecord`: per stage, the list of
per-task operation tallies the execution actually performed.  Records are
priced *afterwards* by any :class:`~repro.parallel.machine.MachineSpec`
at any thread count — one run yields the whole scalability curve, exactly
as if the schedule had been replayed on that machine (the schedule itself
is thread-count independent in ppSCAN's BSP phase structure).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Mapping

__all__ = ["TaskCost", "StageRecord", "RunRecord"]


@dataclass
class TaskCost:
    """Work performed by one scheduled task (Algorithm 5 unit).

    Attributes
    ----------
    scalar_cmp / vector_ops / bound_updates:
        intersection-kernel work (see :class:`repro.intersect.OpCounter`).
    arcs:
        adjacency entries scanned outside the kernels (drives memory
        traffic and the light per-arc bookkeeping cost).
    atomics:
        union-find CAS/find operations and cluster-id CAS attempts.
    allocs:
        dynamic memory allocations (anySCAN's super-node bookkeeping; zero
        for the allocation-free ppSCAN phases).
    compsims:
        CompSim kernel invocations (Figure 4's unit).
    """

    scalar_cmp: int = 0
    branchless_cmp: int = 0
    vector_ops: int = 0
    bound_updates: int = 0
    arcs: int = 0
    atomics: int = 0
    allocs: int = 0
    compsims: int = 0

    def add(self, other: "TaskCost") -> None:
        self.scalar_cmp += other.scalar_cmp
        self.branchless_cmp += other.branchless_cmp
        self.vector_ops += other.vector_ops
        self.bound_updates += other.bound_updates
        self.arcs += other.arcs
        self.atomics += other.atomics
        self.allocs += other.allocs
        self.compsims += other.compsims

    def as_dict(self) -> dict[str, int]:
        """Flat ``{field: tally}`` mapping (mirrors ``OpCounter.as_dict``)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "TaskCost":
        """Inverse of :meth:`as_dict`; unknown keys are rejected."""
        return cls(**{k: int(v) for k, v in data.items()})


@dataclass
class StageRecord:
    """One ppSCAN phase (or one section of a sequential algorithm)."""

    name: str
    tasks: list[TaskCost] = field(default_factory=list)
    wall_seconds: float = 0.0

    def total(self) -> TaskCost:
        agg = TaskCost()
        for task in self.tasks:
            agg.add(task)
        return agg

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "tasks": [task.as_dict() for task in self.tasks],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StageRecord":
        return cls(
            name=data["name"],
            tasks=[TaskCost.from_dict(t) for t in data.get("tasks", [])],
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )


@dataclass
class RunRecord:
    """Full instrumented run of one algorithm on one graph."""

    algorithm: str
    stages: list[StageRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    def stage(self, name: str) -> StageRecord:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} in {self.algorithm} run")

    def total(self) -> TaskCost:
        agg = TaskCost()
        for stage in self.stages:
            agg.add(stage.total())
        return agg

    @property
    def compsim_invocations(self) -> int:
        return self.total().compsims

    @property
    def stage_wall_seconds(self) -> float:
        """Sum of the per-stage walls (the Figure-1 breakdown total)."""
        return sum(stage.wall_seconds for stage in self.stages)

    def apportion_wall(
        self, cost_fn: Callable[[TaskCost], float] | None = None
    ) -> None:
        """Distribute the run wall over stages by modelled cost share.

        The sequential algorithms (SCAN, pSCAN) bucket work into semantic
        stages that *interleave* in time, so their stage walls cannot be
        measured directly without per-arc timer calls; instead the run's
        measured wall is attributed proportionally to each stage's priced
        cost (``cost_fn(TaskCost) -> float``; defaults to a unit-weight
        op sum).  Stages with measured walls keep them — this only fills
        in stages recorded at 0.0.
        """
        if cost_fn is None:
            cost_fn = lambda t: float(  # noqa: E731 - local default weight
                t.scalar_cmp
                + t.branchless_cmp
                + t.vector_ops
                + t.bound_updates
                + t.arcs
                + t.atomics
                + t.allocs
            )
        unmeasured = [s for s in self.stages if s.wall_seconds == 0.0]
        remaining = self.wall_seconds - sum(
            s.wall_seconds for s in self.stages
        )
        if not unmeasured or remaining <= 0.0:
            return
        weights = [max(cost_fn(s.total()), 0.0) for s in unmeasured]
        total = sum(weights)
        if total <= 0.0:
            weights = [1.0] * len(unmeasured)
            total = float(len(unmeasured))
        for stage, weight in zip(unmeasured, weights):
            stage.wall_seconds = remaining * weight / total

    def as_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "wall_seconds": self.wall_seconds,
            "stages": [stage.as_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            algorithm=data["algorithm"],
            stages=[StageRecord.from_dict(s) for s in data.get("stages", [])],
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )
