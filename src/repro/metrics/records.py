"""Machine-independent work records.

A clustering run produces a :class:`RunRecord`: per stage, the list of
per-task operation tallies the execution actually performed.  Records are
priced *afterwards* by any :class:`~repro.parallel.machine.MachineSpec`
at any thread count — one run yields the whole scalability curve, exactly
as if the schedule had been replayed on that machine (the schedule itself
is thread-count independent in ppSCAN's BSP phase structure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TaskCost", "StageRecord", "RunRecord"]


@dataclass
class TaskCost:
    """Work performed by one scheduled task (Algorithm 5 unit).

    Attributes
    ----------
    scalar_cmp / vector_ops / bound_updates:
        intersection-kernel work (see :class:`repro.intersect.OpCounter`).
    arcs:
        adjacency entries scanned outside the kernels (drives memory
        traffic and the light per-arc bookkeeping cost).
    atomics:
        union-find CAS/find operations and cluster-id CAS attempts.
    allocs:
        dynamic memory allocations (anySCAN's super-node bookkeeping; zero
        for the allocation-free ppSCAN phases).
    compsims:
        CompSim kernel invocations (Figure 4's unit).
    """

    scalar_cmp: int = 0
    branchless_cmp: int = 0
    vector_ops: int = 0
    bound_updates: int = 0
    arcs: int = 0
    atomics: int = 0
    allocs: int = 0
    compsims: int = 0

    def add(self, other: "TaskCost") -> None:
        self.scalar_cmp += other.scalar_cmp
        self.branchless_cmp += other.branchless_cmp
        self.vector_ops += other.vector_ops
        self.bound_updates += other.bound_updates
        self.arcs += other.arcs
        self.atomics += other.atomics
        self.allocs += other.allocs
        self.compsims += other.compsims


@dataclass
class StageRecord:
    """One ppSCAN phase (or one section of a sequential algorithm)."""

    name: str
    tasks: list[TaskCost] = field(default_factory=list)
    wall_seconds: float = 0.0

    def total(self) -> TaskCost:
        agg = TaskCost()
        for task in self.tasks:
            agg.add(task)
        return agg

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)


@dataclass
class RunRecord:
    """Full instrumented run of one algorithm on one graph."""

    algorithm: str
    stages: list[StageRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    def stage(self, name: str) -> StageRecord:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} in {self.algorithm} run")

    def total(self) -> TaskCost:
        agg = TaskCost()
        for stage in self.stages:
            agg.add(stage.total())
        return agg

    @property
    def compsim_invocations(self) -> int:
        return self.total().compsims
