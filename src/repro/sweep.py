"""Parameter-sweep engine with cross-run similarity reuse.

The paper's robustness study (Fig. 7, §5.5) re-clusters one graph over a
whole (ε, µ) grid.  Run independently, every grid point recomputes every
edge overlap; but the overlap is parameter-independent, so one exact
resolution serves the entire grid.  :class:`SweepEngine` threads a
:class:`~repro.cache.SimilarityStore` through the grid:

* the first grid point seeds the store with whichever arcs its (pruned)
  run actually resolved — partial coverage still transfers;
* every later point prefolds the covered arcs (one vectorized integer
  comparison per arc against *its own* ε² thresholds) and only
  intersects the remainder;
* grid points are ordered by descending ε within each µ — higher ε
  prunes least, so the earliest runs contribute the broadest coverage
  and later (easier) points inherit it.

Because the store holds exact integer overlaps and every consumer
decides ``overlap >= min_cn`` in integer arithmetic, each grid point's
clustering is bit-identical to an independent run — the differential
conformance suite locks this in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .bench.reporting import format_table
from .cache import CacheStats, SimilarityStore
from .core.result import ClusteringResult
from .graph.csr import CSRGraph
from .metrics.records import RunRecord
from .obs.tracer import current_tracer
from .options import ExecutionOptions
from .types import ScanParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .checkpoint import CheckpointManager

__all__ = ["SweepEngine", "SweepOutcome", "SweepPoint"]


@dataclass(frozen=True)
class SweepPoint:
    """One executed grid point: its result plus the store traffic it saw."""

    eps: float
    mu: int
    result: ClusteringResult
    hits: int
    misses: int
    wall_seconds: float

    @property
    def reuse_fraction(self) -> float:
        """Fraction of this point's overlap lookups served from the store."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class SweepOutcome:
    """All grid points (in execution order) plus aggregate store stats."""

    algorithm: str
    points: list[SweepPoint] = field(default_factory=list)
    wall_seconds: float = 0.0
    stats: CacheStats = field(default_factory=CacheStats)
    cached: bool = True
    spilled: int = 0

    def point(self, eps: float, mu: int) -> SweepPoint:
        for p in self.points:
            if p.eps == eps and p.mu == mu:
                return p
        raise KeyError(f"no grid point (eps={eps}, mu={mu})")

    def results(self) -> dict[tuple[float, int], ClusteringResult]:
        return {(p.eps, p.mu): p.result for p in self.points}

    def report(self) -> str:
        """Human-readable grid table with per-point reuse fractions."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    f"{p.eps:g}",
                    str(p.mu),
                    str(p.result.num_clusters),
                    str(p.result.num_cores),
                    f"{p.wall_seconds * 1e3:.1f}",
                    f"{p.reuse_fraction * 100:.1f}%" if self.cached else "-",
                ]
            )
        table = format_table(
            f"(eps, mu) sweep — {self.algorithm}",
            ["eps", "mu", "clusters", "cores", "wall_ms", "reuse"],
            rows,
        )
        if self.cached:
            summary = (
                f"store: {self.stats.hits} hits, {self.stats.misses} misses "
                f"({self.stats.reuse_fraction * 100:.1f}% reuse)"
            )
            if self.spilled:
                summary += f", spilled {self.spilled} entr" + (
                    "y" if self.spilled == 1 else "ies"
                )
            return table + "\n" + summary
        return table


class SweepEngine:
    """Executes an (ε, µ) grid, resolving each arc overlap at most once.

    ``store`` attaches an existing :class:`~repro.cache.SimilarityStore`
    (so several sweeps, or a sweep plus ad-hoc ``cluster`` calls, share
    one memo); otherwise a fresh store is created — disk-backed when
    ``cache_dir`` is given, in-memory only when not.  ``use_cache=False``
    degrades to plain independent runs (for A/B measurement).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        algorithm: str = "ppscan",
        options: ExecutionOptions | None = None,
        store: SimilarityStore | None = None,
        cache_dir=None,
        use_cache: bool = True,
        checkpoint: "CheckpointManager | None" = None,
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm
        self.options = options if options is not None else ExecutionOptions()
        if store is None and use_cache and self.options.cache is not None:
            store = self.options.cache
        if store is None and use_cache:
            store = SimilarityStore(cache_dir=cache_dir)
        self.store = store if use_cache else None
        #: Per-grid-point durable resume: after each point the cumulative
        #: results (plus the store's coverage) are snapshotted, so a
        #: crashed sweep restarts at the first unfinished point with at
        #: least the reuse the interrupted run had accumulated.
        self.checkpoint = (
            checkpoint
            if checkpoint is not None
            else self.options.checkpoint
        )

    @staticmethod
    def grid_order(
        eps_values, mu_values
    ) -> list[tuple[float, int]]:
        """The execution order: µ as given, ε descending within each µ.

        Higher ε yields the largest thresholds and therefore the least
        degree-based pruning — those runs resolve (and record) the most
        arcs, so running them first maximizes what later points inherit.
        """
        eps_sorted = sorted(eps_values, key=float, reverse=True)
        return [(eps, mu) for mu in mu_values for eps in eps_sorted]

    def run(self, eps_values, mu_values) -> SweepOutcome:
        """Cluster every grid point; returns points in execution order."""
        from . import api  # runtime import: api imports this module lazily

        t0 = time.perf_counter()
        opts = self.options
        if self.store is not None:
            opts = opts.evolve(cache=self.store)
        elif opts.cache is not None:
            opts = opts.evolve(cache=None)
        # The sweep owns the checkpoint: each grid point is one epoch.
        # Inner cluster() calls must NOT see the manager, or they would
        # rebind it to their own (eps, mu) identity mid-sweep.
        if opts.checkpoint is not None:
            opts = opts.evolve(checkpoint=None)
        tracer = current_tracer()
        points: list[SweepPoint] = []
        spilled = 0
        order = [
            (float(e), int(m))
            for e, m in self.grid_order(eps_values, mu_values)
        ]
        ck = self.checkpoint
        if ck is not None and order:
            ck.bind(
                self.graph,
                ScanParams(order[0][0], order[0][1]),
                algorithm=f"sweep:{self.algorithm}",
                exec_mode=str(opts.exec_mode.value),
                extra={
                    "grid": [[e, m] for e, m in order],
                    "cached": self.store is not None,
                },
            )
            snap = ck.load_latest()
            if snap is not None:
                for i, info in enumerate(snap.meta.get("points", [])):
                    pairs_arr = (
                        np.asarray(snap.arrays[f"pt{i}_pairs"])
                        .reshape(-1, 2)
                        .tolist()
                    )
                    result = ClusteringResult(
                        algorithm=str(info["algorithm"]),
                        params=ScanParams(
                            float(info["eps"]), int(info["mu"])
                        ),
                        roles=np.asarray(
                            snap.arrays[f"pt{i}_roles"], dtype=np.int8
                        ),
                        core_labels=np.asarray(
                            snap.arrays[f"pt{i}_labels"], dtype=np.int64
                        ),
                        noncore_pairs=[
                            (int(a), int(b)) for a, b in pairs_arr
                        ],
                        record=RunRecord(
                            algorithm=str(info["algorithm"]),
                            stages=[],
                            wall_seconds=float(info["wall"]),
                        ),
                    )
                    points.append(
                        SweepPoint(
                            eps=float(info["eps"]),
                            mu=int(info["mu"]),
                            result=result,
                            hits=int(info["hits"]),
                            misses=int(info["misses"]),
                            wall_seconds=float(info["wall"]),
                        )
                    )
                if self.store is not None and "store_overlap" in snap.arrays:
                    entry = self.store.entry_for(self.graph)
                    entry.overlap = np.asarray(
                        snap.arrays["store_overlap"], dtype=np.int64
                    ).copy()
                    entry.coverage = np.unpackbits(
                        np.asarray(
                            snap.arrays["store_coverage"], dtype=np.uint8
                        ),
                        count=entry.num_arcs,
                    ).astype(bool)
                    entry.dirty = True

        def _save_points() -> None:
            arrays: dict[str, np.ndarray] = {}
            infos = []
            for i, p in enumerate(points):
                arrays[f"pt{i}_roles"] = np.asarray(
                    p.result.roles, dtype=np.int8
                )
                arrays[f"pt{i}_labels"] = np.asarray(
                    p.result.core_labels, dtype=np.int64
                )
                arrays[f"pt{i}_pairs"] = np.asarray(
                    p.result.noncore_pairs, dtype=np.int64
                ).reshape(-1, 2)
                infos.append(
                    {
                        "eps": p.eps,
                        "mu": p.mu,
                        "hits": p.hits,
                        "misses": p.misses,
                        "wall": p.wall_seconds,
                        "algorithm": p.result.algorithm,
                    }
                )
            if self.store is not None:
                entry = self.store.entry_for(self.graph)
                arrays["store_overlap"] = entry.overlap
                arrays["store_coverage"] = np.packbits(entry.coverage)
            ck.save(
                arrays=arrays,
                meta={"cursor": len(points), "points": infos},
                phase=f"sweep point {len(points)}/{len(order)}",
            )

        for idx, (eps, mu) in enumerate(order):
            if idx < len(points):
                continue  # restored from the checkpoint
            before = self.store.stats() if self.store is not None else None
            t_point = time.perf_counter()
            with tracer.span("sweep:point", eps=float(eps), mu=int(mu)):
                result = api.cluster(
                    self.graph,
                    ScanParams(eps, mu),
                    algorithm=self.algorithm,
                    options=opts,
                )
            wall = time.perf_counter() - t_point
            hits = misses = 0
            if before is not None:
                after = self.store.stats()
                hits = after.hits - before.hits
                misses = after.misses - before.misses
            points.append(
                SweepPoint(
                    eps=float(eps),
                    mu=int(mu),
                    result=result,
                    hits=hits,
                    misses=misses,
                    wall_seconds=wall,
                )
            )
            if ck is not None:
                if self.store is not None:
                    spilled += self.store.spill()
                _save_points()
        spilled += self.store.spill() if self.store is not None else 0
        if self.store is not None:
            live = self.store.stats()
            # Aggregate over the whole grid, including points restored
            # from a checkpoint (whose traffic happened before the crash
            # and is not visible in this process's store counters).
            stats = CacheStats(
                hits=sum(p.hits for p in points),
                misses=sum(p.misses for p in points),
                spills=live.spills,
                rejects=live.rejects,
            )
        else:
            stats = CacheStats()
        return SweepOutcome(
            algorithm=self.algorithm,
            points=points,
            wall_seconds=time.perf_counter() - t0,
            stats=stats,
            cached=self.store is not None,
            spilled=spilled,
        )
