"""Crash-consistent file writes shared by the checkpoint and cache layers.

The durability contract is the classic three-step dance:

1. write the full payload to a temporary file *in the destination
   directory* (same filesystem, so the rename below is atomic),
2. ``fsync`` the temporary file so the bytes are on stable storage,
3. ``os.replace`` onto the final name, then ``fsync`` the directory so
   the rename itself survives a power cut.

A reader therefore observes either the previous complete file or the
new complete file — never a torn mixture.  Anything that interrupts the
sequence leaves at worst a stray ``.tmp`` file, which writers ignore
and readers never open.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = [
    "atomic_truncate",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
]


def fsync_directory(path: str | os.PathLike) -> None:
    """Flush a directory entry to stable storage (best-effort).

    Some filesystems (and all of Windows) refuse ``open()`` on a
    directory; those raise ``OSError``, which we swallow — the rename
    already happened, we only lose the power-cut guarantee the platform
    cannot give anyway.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Durably replace ``path`` with ``data`` (temp file + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    fd = os.open(os.fspath(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)


def atomic_write_text(
    path: str | os.PathLike, text: str, *, encoding: str = "utf-8"
) -> None:
    """:func:`atomic_write_bytes` for text payloads."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_truncate(path: str | os.PathLike) -> None:
    """Durably replace ``path`` with an empty file.

    Same rename dance as :func:`atomic_write_bytes`, so a reader
    observes either the old complete file or the empty one — the
    primitive the service WAL uses to discard its replayed prefix after
    a compaction snapshot is durable.  A missing file is already
    truncated (no-op).
    """
    if Path(path).exists():
        atomic_write_bytes(path, b"")
