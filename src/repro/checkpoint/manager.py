"""Durable phase-granular run state with bit-identical resume.

A :class:`CheckpointManager` owns one directory of numbered snapshots::

    <dir>/manifest.json        # version, run identity, epoch index
    <dir>/ckpt-000001.npz      # arrays + embedded JSON meta
    <dir>/ckpt-000002.npz
    ...

Algorithms call :meth:`CheckpointManager.save` at phase barriers (and,
when ``every`` is set, at scheduler task boundaries inside a phase)
with whatever arrays and metadata they need to resume; the manager
handles everything durable: atomic writes (temp file + fsync + rename,
see :mod:`repro.checkpoint.atomic`), a BLAKE2b checksum per snapshot
recorded in the manifest, and monotonically increasing epoch numbers.

Loading follows the same trust model as :mod:`repro.cache.store`: a
corrupt, truncated, or version-mismatched snapshot is a *clean miss* —
the loader walks back to the newest epoch that validates, or returns
``None`` and the run starts from scratch.  The one deliberate
exception: resuming against a *different graph or parameters* raises
:class:`ResumeMismatchError` instead of silently reclustering, because
the caller explicitly asked to continue a run that does not exist.

Bit-identical resume is sound for the same reason the process backend
is (Theorems 4.1–4.5 of the paper): every phase commits deterministic
per-arc/per-vertex facts, so re-running a phase suffix from a snapshot
of the committed prefix reproduces exactly the uninterrupted state.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..obs.tracer import current_tracer
from .atomic import atomic_write_bytes, atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.csr import CSRGraph
    from ..parallel.chaos import ProcessCrashPoint
    from ..types import ScanParams

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointManager",
    "ResumeMismatchError",
]

#: On-disk snapshot/manifest format version; any other version on load
#: is rejected as a clean miss (never an error).
CHECKPOINT_VERSION = 1

_META_KEY = "__meta__"


class ResumeMismatchError(RuntimeError):
    """``--resume`` pointed at checkpoints from a different run.

    Raised when the checkpoint directory's recorded identity (graph
    fingerprint, parameters, algorithm, exec mode) does not match the
    run being started.  Deliberately *not* a clean miss: silently
    reclustering a different graph under a resume request would be a
    wrong answer dressed as success.
    """


@dataclass(frozen=True)
class Checkpoint:
    """One validated snapshot, ready to restore from."""

    epoch: int
    phase: str
    arrays: Mapping[str, np.ndarray] = field(default_factory=dict)
    meta: Mapping[str, object] = field(default_factory=dict)


def _checksum(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=20).hexdigest()


class CheckpointManager:
    """Writes and restores durable run snapshots in one directory.

    Parameters
    ----------
    directory:
        Where snapshots and the manifest live (created on demand).
    every:
        Optional intra-phase cadence: algorithms additionally snapshot
        after every ``every`` scheduler tasks (ppscan/scanxp), processed
        vertices (pscan), or summarization blocks (anyscan).  ``None``
        checkpoints only at phase barriers.
    resume:
        When ``True``, :meth:`load_latest` returns the newest valid
        snapshot; when ``False`` (a fresh run), the manifest's epoch
        index is cleared at :meth:`bind` so stale snapshots can never
        be resumed by accident.
    crash_point:
        A :class:`~repro.parallel.chaos.ProcessCrashPoint` fired around
        every save; defaults to one read from the environment
        (``REPRO_CRASH_EPOCH`` / ``REPRO_CRASH_MODE``), which is how the
        crash-restart harness kills the real process.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        every: int | None = None,
        resume: bool = False,
        crash_point: "ProcessCrashPoint | None" = None,
    ) -> None:
        if every is not None and every < 1:
            raise ValueError("checkpoint every must be >= 1")
        self.directory = Path(directory)
        self.every = every
        self.resume = resume
        if crash_point is None:
            from ..parallel.chaos import ProcessCrashPoint

            crash_point = ProcessCrashPoint.from_env()
        self.crash_point = crash_point
        self._identity: dict | None = None
        self._epochs: list[dict] = []
        self._epoch = 0

    # -- identity -------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def epoch(self) -> int:
        """The last written (or resumed-past) epoch number."""
        return self._epoch

    def for_subrun(self, name: str) -> "CheckpointManager":
        """A sibling manager rooted at ``<directory>/<name>``.

        Used by multi-run drivers (``compare``) so each constituent run
        owns its own manifest and epoch sequence.
        """
        return CheckpointManager(
            self.directory / name,
            every=self.every,
            resume=self.resume,
            crash_point=self.crash_point,
        )

    def bind(
        self,
        graph: "CSRGraph",
        params: "ScanParams",
        *,
        algorithm: str,
        exec_mode: str = "scalar",
        extra: Mapping[str, object] | None = None,
    ) -> None:
        """Fix this manager to one run identity and open the manifest.

        Must be called once before :meth:`save`/:meth:`load_latest`.
        Under ``resume=True`` a manifest recorded for a different
        identity raises :class:`ResumeMismatchError`; a missing,
        corrupt, or version-mismatched manifest is a clean miss.  Under
        ``resume=False`` any existing epoch index is discarded so a
        fresh run never silently resumes.
        """
        # Imported lazily: cache/store imports repro.checkpoint.atomic,
        # which executes this module via the package __init__.
        from ..cache.store import graph_fingerprint

        identity = {
            "fingerprint": graph_fingerprint(graph),
            "eps": str(params.eps),
            "mu": int(params.mu),
            "algorithm": str(algorithm),
            "exec_mode": str(exec_mode),
        }
        if extra:
            identity["extra"] = json.loads(json.dumps(dict(extra)))
        self._identity = identity
        self._epochs = []
        self._epoch = 0
        manifest = self._read_manifest()
        if not self.resume:
            return
        if manifest is None:
            return
        if manifest.get("identity") != identity:
            raise ResumeMismatchError(
                f"checkpoint directory {self.directory} records a "
                f"different run (graph fingerprint, parameters, "
                f"algorithm, or exec mode changed); refusing to resume. "
                f"Remove the directory or drop --resume to start fresh."
            )
        epochs = manifest.get("epochs")
        if isinstance(epochs, list):
            self._epochs = [e for e in epochs if isinstance(e, dict)]
        if self._epochs:
            self._epoch = max(int(e.get("epoch", 0)) for e in self._epochs)

    def _read_manifest(self) -> dict | None:
        """The manifest as a dict, or ``None`` as a clean miss."""
        try:
            manifest = json.loads(self.manifest_path.read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict):
            self._reject("manifest")
            return None
        if manifest.get("version") != CHECKPOINT_VERSION:
            self._reject("version")
            return None
        return manifest

    def _require_bound(self) -> dict:
        if self._identity is None:
            raise RuntimeError(
                "CheckpointManager.bind() must be called before use"
            )
        return self._identity

    def _reject(self, reason: str) -> None:
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("checkpoint.reject", 1)
            tracer.count(f"checkpoint.reject.{reason}", 1)

    # -- writing --------------------------------------------------------

    def save(
        self,
        *,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, object],
        phase: str,
    ) -> int:
        """Write one snapshot durably; returns its epoch number.

        ``arrays`` go into an ``.npz`` member each; ``meta`` must be
        JSON-serializable and is embedded in the same ``.npz`` (as a
        uint8-encoded JSON member), so snapshot payload and metadata
        are one atomic unit.  The manifest is rewritten atomically
        afterwards; a crash between the two leaves the new snapshot
        unlisted, which the loader treats as if it never happened.
        """
        identity = self._require_bound()
        epoch = self._epoch + 1
        if _META_KEY in arrays:
            raise ValueError(f"array name {_META_KEY!r} is reserved")
        self.crash_point.fire("before-save", epoch)
        tracer = current_tracer()
        with tracer.span(
            "checkpoint:write", epoch=epoch, phase=phase
        ):
            header = {
                "version": CHECKPOINT_VERSION,
                "identity": identity,
                "epoch": epoch,
                "phase": phase,
                "meta": dict(meta),
            }
            encoded = np.frombuffer(
                json.dumps(header, sort_keys=True).encode("utf-8"),
                dtype=np.uint8,
            )
            buf = io.BytesIO()
            np.savez_compressed(
                buf, **{_META_KEY: encoded}, **dict(arrays)
            )
            payload = buf.getvalue()
            name = f"ckpt-{epoch:06d}.npz"
            atomic_write_bytes(self.directory / name, payload)
            self._epochs.append(
                {
                    "epoch": epoch,
                    "file": name,
                    "phase": phase,
                    "checksum": _checksum(payload),
                    "bytes": len(payload),
                }
            )
            atomic_write_text(
                self.manifest_path,
                json.dumps(
                    {
                        "version": CHECKPOINT_VERSION,
                        "identity": identity,
                        "epochs": self._epochs,
                    },
                    indent=1,
                    sort_keys=True,
                )
                + "\n",
            )
        self._epoch = epoch
        if tracer.enabled:
            tracer.count("checkpoint.write", 1)
        self.crash_point.fire("after-save", epoch)
        return epoch

    # -- loading --------------------------------------------------------

    def load_latest(self) -> Checkpoint | None:
        """The newest snapshot that validates, or ``None``.

        Walks the manifest's epoch index from newest to oldest,
        re-verifying each snapshot's BLAKE2b checksum and embedded
        header; every failure is a clean miss on that epoch (counted
        as ``checkpoint.reject.*``) and the walk continues.  Returns
        ``None`` when ``resume`` is off or nothing validates — epoch
        numbering still continues past the corrupt tail, so a later
        :meth:`save` never reuses a burned epoch number.
        """
        identity = self._require_bound()
        if not self.resume or not self._epochs:
            return None
        tracer = current_tracer()
        for record in sorted(
            self._epochs, key=lambda e: int(e.get("epoch", 0)), reverse=True
        ):
            name = record.get("file")
            if not isinstance(name, str) or Path(name).name != name:
                self._reject("manifest")
                continue
            path = self.directory / name
            with tracer.span(
                "checkpoint:load", epoch=record.get("epoch"), file=name
            ):
                snapshot = self._load_one(path, record, identity)
            if snapshot is not None:
                if tracer.enabled:
                    tracer.count("checkpoint.load", 1)
                    tracer.count("checkpoint.resume", 1)
                return snapshot
        return None

    def _load_one(
        self, path: Path, record: dict, identity: dict
    ) -> Checkpoint | None:
        try:
            payload = path.read_bytes()
        except OSError:
            self._reject("missing")
            return None
        if _checksum(payload) != record.get("checksum"):
            self._reject("checksum")
            return None
        try:
            with np.load(io.BytesIO(payload)) as data:
                members = {key: data[key] for key in data.files}
        except Exception:
            self._reject("payload")
            return None
        encoded = members.pop(_META_KEY, None)
        if encoded is None:
            self._reject("payload")
            return None
        try:
            header = json.loads(
                np.asarray(encoded, dtype=np.uint8).tobytes().decode("utf-8")
            )
        except (ValueError, UnicodeDecodeError):
            self._reject("payload")
            return None
        if not isinstance(header, dict):
            self._reject("payload")
            return None
        if header.get("version") != CHECKPOINT_VERSION:
            self._reject("version")
            return None
        if header.get("identity") != identity:
            self._reject("identity")
            return None
        epoch = header.get("epoch")
        if epoch != record.get("epoch") or not isinstance(epoch, int):
            self._reject("epoch")
            return None
        meta = header.get("meta")
        if not isinstance(meta, dict):
            self._reject("payload")
            return None
        return Checkpoint(
            epoch=epoch,
            phase=str(header.get("phase", "")),
            arrays=members,
            meta=meta,
        )
