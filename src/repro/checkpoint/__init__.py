"""Crash-safe run state: atomic writes, durable snapshots, resume."""

from .atomic import atomic_write_bytes, atomic_write_text, fsync_directory
from .manager import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointManager,
    ResumeMismatchError,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointManager",
    "ResumeMismatchError",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
]
