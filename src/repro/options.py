"""Typed execution options for the :mod:`repro.api` facade.

Historically every call site picked its execution strategy through
stringly-typed keyword arguments (``exec_mode="batched"``,
``kernel="merge"``) and hand-built backend objects.  This module gives
those choices a typed home:

* :class:`ExecMode`, :class:`BackendKind` and :class:`Kernel` are
  ``str``-valued enums, so they compare equal to the historical strings
  and flow through existing code unchanged;
* :class:`ExecutionOptions` bundles every knob — backend selection,
  worker count, kernel, execution mode, and the fault-tolerance /
  chaos-injection settings of the supervised process backend — into one
  validated dataclass that :func:`repro.api.cluster` accepts.

Plain strings are still accepted everywhere an enum is expected; they
are coerced through :func:`coerce_enum`, which emits a
:class:`DeprecationWarning` pointing at the typed spelling.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from enum import Enum
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .cache import SimilarityStore
    from .checkpoint import CheckpointManager
    from .graph import CSRGraph
    from .parallel.backend import ExecutionBackend
    from .sketch import SketchParams

from .parallel.chaos import FaultPlan
from .parallel.supervisor import FaultTolerancePolicy

__all__ = [
    "ExecMode",
    "BackendKind",
    "Kernel",
    "ExecutionOptions",
    "coerce_enum",
]


def coerce_enum(value, enum_cls, *, param: str):
    """Return ``value`` as ``enum_cls``, warning when a string was passed.

    The string spellings remain valid (the enums are ``str`` subclasses,
    so downstream comparisons are unaffected) but new code should pass
    the enum member; the shim makes the migration visible without
    breaking anyone.
    """
    if value is None or isinstance(value, enum_cls):
        return value
    if isinstance(value, str):
        try:
            member = enum_cls(value)
        except ValueError:
            known = ", ".join(m.value for m in enum_cls)
            raise ValueError(
                f"unknown {param} {value!r}; known: {known}"
            ) from None
        warnings.warn(
            f"passing {param} as a string is deprecated; use "
            f"{enum_cls.__name__}.{member.name} (from repro.options)",
            DeprecationWarning,
            stacklevel=3,
        )
        return member
    raise TypeError(
        f"{param} must be a {enum_cls.__name__} or str, "
        f"not {type(value).__name__}"
    )


class ExecMode(str, Enum):
    """Arc-resolution strategy for the similarity hot path."""

    SCALAR = "scalar"  #: one early-terminating kernel call per arc
    BATCHED = "batched"  #: per-task batched resolution (vectorized)


class BackendKind(str, Enum):
    """Which execution backend runs a parallel algorithm's phases."""

    SERIAL = "serial"  #: in-process, committing after every task
    PROCESS = "process"  #: forked workers, committing at the phase barrier


class Kernel(str, Enum):
    """CompSim kernel choice (see :data:`repro.similarity.KERNELS`)."""

    MERGE = "merge"  #: scalar merge with min-max bounds (pSCAN / ppSCAN-NO)
    PIVOT = "pivot"  #: scalar pivot loop (Algorithm 6 fallback path)
    VECTORIZED = "vectorized"  #: pivot-based vectorized intersection
    SKETCH = "sketch"  #: Bloom + KMV pre-pass with exact boundary fallback


@dataclass(frozen=True)
class ExecutionOptions:
    """Everything about *how* an algorithm runs (never *what* it computes).

    The clustering produced is bit-identical across all settings here —
    these knobs trade performance and resilience, not correctness.

    ``backend=BackendKind.PROCESS`` builds a supervised
    :class:`~repro.parallel.backend.ProcessBackend`: crashed or hung
    workers are detected and their tasks retried under ``max_retries``
    with per-task deadlines of ``task_timeout`` (scaled by modelled task
    cost).  ``chaos`` installs a deterministic
    :class:`~repro.parallel.chaos.FaultPlan` for fault-injection runs.
    An explicit ``backend_obj`` (any
    :class:`~repro.parallel.backend.ExecutionBackend`) overrides all of
    the backend-construction fields.
    """

    backend: BackendKind = BackendKind.SERIAL
    workers: int | None = None
    exec_mode: ExecMode = ExecMode.SCALAR
    kernel: Kernel | None = None  # None = each algorithm's default
    lanes: int = 16
    task_threshold: int | None = None
    # fault tolerance (supervised process backend)
    max_retries: int | None = None
    task_timeout: float | None = None
    policy: FaultTolerancePolicy | None = None
    chaos: FaultPlan | None = None
    backend_obj: "ExecutionBackend | None" = None
    #: Cross-run similarity store (see :mod:`repro.cache`): algorithms
    #: that support it reuse cached exact overlaps and record fresh ones;
    #: clustering stays bit-identical.  ``None`` disables caching.
    cache: "SimilarityStore | None" = None
    #: Durable run state (see :mod:`repro.checkpoint`): algorithms that
    #: support it snapshot their phase state through the manager and can
    #: resume a crashed run bit-identically.  ``None`` disables
    #: checkpointing.
    checkpoint: "CheckpointManager | None" = None
    #: Sketch-gating configuration (see :mod:`repro.sketch`): algorithms
    #: that support it classify arcs from per-vertex Bloom/KMV sketches
    #: and only fall back to exact intersection near the ε boundary.
    #: ``None`` disables sketching unless ``kernel=Kernel.SKETCH`` asks
    #: for the defaults.  Note ``error > 0`` is the one knob in this
    #: dataclass that may change *what* is computed, not just how fast —
    #: ``error == 0`` (the default) stays bit-identical to exact mode.
    sketch: "SketchParams | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "backend",
            coerce_enum(self.backend, BackendKind, param="backend"),
        )
        object.__setattr__(
            self,
            "exec_mode",
            coerce_enum(self.exec_mode, ExecMode, param="exec_mode"),
        )
        object.__setattr__(
            self, "kernel", coerce_enum(self.kernel, Kernel, param="kernel")
        )
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be > 0")
        if self.sketch is not None:
            from .sketch import SketchParams

            if not isinstance(self.sketch, SketchParams):
                raise TypeError(
                    "sketch must be a repro.sketch.SketchParams, "
                    f"not {type(self.sketch).__name__}"
                )

    def effective_sketch(self) -> "SketchParams | None":
        """The sketch configuration this run should use, or ``None``.

        ``kernel=Kernel.SKETCH`` with no explicit ``sketch`` selects the
        conservative defaults (bit-identical mode).
        """
        if self.sketch is not None:
            return self.sketch
        if self.kernel is Kernel.SKETCH:
            from .sketch import SketchParams

            return SketchParams()
        return None

    def evolve(self, **changes) -> "ExecutionOptions":
        """A copy with ``changes`` applied (frozen-dataclass ``replace``)."""
        return replace(self, **changes)

    # -- backend construction ---------------------------------------------

    def resolve_policy(self) -> FaultTolerancePolicy | None:
        """The effective fault-tolerance policy, or ``None`` for defaults.

        ``max_retries`` / ``task_timeout`` shorthands overlay the
        explicit ``policy`` (and force one into existence when set).
        """
        policy = self.policy
        if self.max_retries is None and self.task_timeout is None:
            return policy
        base = policy if policy is not None else FaultTolerancePolicy()
        overrides: dict = {}
        if self.max_retries is not None:
            overrides["max_retries"] = self.max_retries
        if self.task_timeout is not None:
            overrides["task_timeout"] = self.task_timeout
        return replace(base, **overrides)

    def make_backend(
        self, graph: "CSRGraph | None" = None
    ) -> "ExecutionBackend | None":
        """Build the configured backend for one run.

        Returns ``None`` for the serial default so that algorithms keep
        their own (serial) fallback construction — preserving the exact
        counted reference path.  Process backends are always built
        *supervised* with an arc-count cost model derived from ``graph``
        (scaling per-task deadlines by modelled cost).
        """
        if self.backend_obj is not None:
            return self.backend_obj
        if self.backend is not BackendKind.PROCESS:
            return None
        from .parallel.backend import ProcessBackend
        from .parallel.scheduler import arc_range_cost_model

        cost_model: Callable[[int, int], float] | None = None
        if graph is not None:
            cost_model = arc_range_cost_model(graph.offsets)
        return ProcessBackend(
            self.workers,
            policy=self.resolve_policy(),
            chaos=self.chaos,
            cost_model=cost_model,
            supervised=True,
        )

    def describe(self) -> dict:
        """Stable JSON-able summary of the performance-relevant knobs.

        The run ledger hashes this dict into the ``options_key`` that
        groups comparable runs for trend gating, so it must (a) contain
        every knob that can move performance and (b) be deterministic —
        live objects (stores, managers, backends, fault plans) are
        reduced to presence flags or their own stable keys, never ids.
        """
        sketch = self.effective_sketch()
        return {
            "backend": self.backend.value,
            "workers": self.workers,
            "exec_mode": self.exec_mode.value,
            "kernel": self.kernel.value if self.kernel else None,
            "lanes": self.lanes,
            "task_threshold": self.task_threshold,
            "supervised": (
                self.backend is BackendKind.PROCESS
                or self.backend_obj is not None
            ),
            "custom_backend": self.backend_obj is not None,
            "chaos": self.chaos is not None,
            "cache": self.cache is not None,
            "checkpoint": self.checkpoint is not None,
            "sketch": sketch.key() if sketch is not None else None,
        }

    def algorithm_kwargs(self) -> dict:
        """The subset of options expressed as legacy algorithm kwargs."""
        out: dict = {}
        if self.exec_mode is not ExecMode.SCALAR:
            out["exec_mode"] = self.exec_mode.value
        if self.kernel is not None:
            out["kernel"] = self.kernel.value
        if self.lanes != 16:
            out["lanes"] = self.lanes
        if self.task_threshold is not None:
            out["task_threshold"] = self.task_threshold
        return out
