"""The always-on clustering service.

One long-lived process owns a :class:`~repro.api.Session`: a graph is
submitted once (``POST /graphs``), pays its similarity-resolution cost
once (GS*-Index construction + similarity-store warm-up, in a worker
executor so the event loop stays responsive), and from then on every
``(ε, µ)`` clustering query, per-vertex lookup or sweep is an index walk
— the serving model of index-based SCAN (Tseng, Dhulipala & Shun; see
``docs/service.md``).

Endpoints
---------
``GET  /healthz``                          liveness probe
``GET  /readyz``                           readiness state machine
                                           (``recovering`` / ``serving``
                                           / ``draining``; 200 only when
                                           serving)
``GET  /stats``                            counters, registry, store, WAL
``GET  /graphs``                           resident graph summaries
``POST /graphs``                           submit a graph (edge-list text
                                           or ``{"edges": [[u, v], ...]}``)
``GET  /graphs/{fp}``                      one graph's summary
``DELETE /graphs/{fp}``                    unload a graph
``GET  /graphs/{fp}/cluster?eps=&mu=``     clustering at (ε, µ)
``GET  /graphs/{fp}/vertex/{v}?eps=&mu=``  per-vertex role + clusters
``POST /graphs/{fp}/sweep``                grid sweep (``{"eps": [...],
                                           "mu": [...]}``)
``POST /graphs/{fp}/updates``              apply a batch of edge edits
                                           (``{"insert": [[u, v], ...],
                                           "remove": [[u, v], ...]}``);
                                           the graph is re-stamped and
                                           re-keyed under its new
                                           fingerprint, warm queries
                                           keep serving between batches.
                                           Send an ``Idempotency-Key``
                                           header to make retries safe.
``POST /admin/compact``                    force a WAL snapshot compaction

Scheduling model
----------------
* **Coalescing** — identical in-flight work (same fingerprint, ε, µ and
  algorithm) shares one future: a thundering herd on a cold point costs
  one index query.
* **Admission control** — at most ``max_concurrent_queries`` heavy
  operations (index builds, cold queries, sweeps) run at once; beyond
  that the service answers ``429`` with ``Retry-After`` instead of
  queueing unboundedly.  Warm (memoized) queries and coalesced
  followers bypass the limit — they add no load.
* **Deadlines** — every query accepts ``timeout=<seconds>`` (clamped to
  ``max_request_seconds``); a request that exceeds it gets a structured
  ``504`` while the underlying work *continues* server-side, so a retry
  lands on the warm result (and a timed-out update still commits — the
  retry hits the idempotency replay instead of double-applying).
* **Idle timeout** — a keep-alive connection that sends nothing for
  ``idle_timeout_seconds`` is closed (slow-loris defense).
* **Eviction** — the graph registry is LRU-bounded by count and by a
  byte budget (:class:`~repro.service.registry.GraphRegistry`).

Durability
----------
With ``wal_dir`` set, every submission and accepted edit batch is
durably in the write-ahead log (:mod:`repro.service.wal`) *before* the
client sees the acknowledgement, snapshots compact the log every
``snapshot_every`` appends, and startup replays snapshot + WAL tail
(:mod:`repro.service.recovery`) so a ``kill -9`` loses nothing that was
acknowledged.  SIGTERM (see the CLI) runs :meth:`drain`: stop
accepting, finish or 503 in-flight work, final snapshot + ledger flush,
exit 0.

Failures map to structured JSON errors: validation → 400, unknown
fingerprint → 404, checkpoint identity mismatch or a lost destructive
race → 409, admission → 429, supervisor exhaustion
(:class:`~repro.parallel.ExecutionFaultError`) or a not-serving state →
503, deadline exceeded → 504.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable

import numpy as np

from .. import api
from ..cache import SimilarityStore, graph_fingerprint
from ..checkpoint import ResumeMismatchError
from ..graph import CSRGraph, from_edge_array
from ..obs.tracer import current_tracer
from ..options import ExecutionOptions
from ..parallel import ExecutionFaultError
from ..types import ScanParams
from .http import (
    DEFAULT_MAX_BODY,
    HTTPError,
    read_request,
    response_bytes,
)
from .registry import GraphRegistry
from .wal import ServiceWAL

__all__ = ["ClusteringService"]

#: Ledger flush threshold: one ``service`` record summarizes this many
#: queries (latency percentiles + coalescing traffic per batch).
DEFAULT_LEDGER_FLUSH = 64

#: Snapshot-compact the WAL after this many appends (overridable).
DEFAULT_SNAPSHOT_EVERY = 64

#: Server-side ceiling on any per-request ``timeout=`` query parameter.
DEFAULT_MAX_REQUEST_SECONDS = 120.0

#: Close a keep-alive connection after this long with no request bytes.
DEFAULT_IDLE_TIMEOUT = 60.0

#: How long :meth:`ClusteringService.drain` waits for in-flight requests.
DEFAULT_DRAIN_GRACE = 10.0

#: Bound on the remembered ``Idempotency-Key`` → response map.
DEFAULT_IDEMPOTENCY_CAPACITY = 4096

_COUNTER_NAMES = (
    "requests",
    "queries",
    "warm_hits",
    "cold_queries",
    "coalesced",
    "rejected",
    "submissions",
    "evictions",
    "sweeps",
    "vertex_lookups",
    "updates",
    "errors",
    "timeouts",
    "idempotent_replays",
    "unready_rejected",
    "idle_closed",
    "compactions",
)

#: Routes answered in every lifecycle state (probes must never 503).
_ALWAYS_ROUTES = (["healthz"], ["readyz"])


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (empty → 0.0)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


class ClusteringService:
    """Asyncio HTTP server over a :class:`~repro.api.Session`.

    Construct, ``await start(host, port)``, drive requests, ``await
    stop()`` (or ``await drain()`` then ``stop()`` for a graceful
    shutdown).  All state mutation happens on the event-loop thread; the
    executor threads only run pure computations on
    :class:`~repro.api.GraphHandle` objects (whose stores take their own
    commit locks), and WAL writes are funnelled through a dedicated
    single-thread executor so appends land in acknowledgement order.
    """

    def __init__(
        self,
        *,
        session: api.Session | None = None,
        options: ExecutionOptions | None = None,
        cache_dir=None,
        max_graphs: int | None = 8,
        memory_budget_mb: float | None = None,
        max_concurrent_queries: int = 4,
        max_body_bytes: int = DEFAULT_MAX_BODY,
        ledger_path=None,
        ledger_flush_every: int = DEFAULT_LEDGER_FLUSH,
        executor_workers: int | None = None,
        wal_dir=None,
        wal: ServiceWAL | None = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        max_request_seconds: float | None = DEFAULT_MAX_REQUEST_SECONDS,
        idle_timeout_seconds: float | None = DEFAULT_IDLE_TIMEOUT,
        drain_grace_seconds: float = DEFAULT_DRAIN_GRACE,
        idempotency_capacity: int = DEFAULT_IDEMPOTENCY_CAPACITY,
    ) -> None:
        if max_concurrent_queries < 1:
            raise ValueError("max_concurrent_queries must be >= 1")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self._wal = wal if wal is not None else (
            ServiceWAL(wal_dir) if wal_dir is not None else None
        )
        if session is None:
            if cache_dir is None and self._wal is not None:
                # Overlap state spills under the WAL by default, so a
                # recovered service rebuilds indexes store-warm.
                cache_dir = self._wal.dir / "store"
            session = api.Session(
                options=options,
                store=SimilarityStore(cache_dir=cache_dir),
            )
        elif self._wal is not None and session.store is not None:
            session.store.attach_dir(self._wal.dir / "store")
        self.session = session
        self.registry = GraphRegistry(
            max_graphs=max_graphs,
            memory_budget_bytes=(
                int(memory_budget_mb * 1024 * 1024)
                if memory_budget_mb is not None
                else None
            ),
        )
        self.max_concurrent_queries = max_concurrent_queries
        self.max_body_bytes = max_body_bytes
        self.snapshot_every = int(snapshot_every)
        self.max_request_seconds = (
            float(max_request_seconds)
            if max_request_seconds is not None
            else None
        )
        self.idle_timeout_seconds = (
            float(idle_timeout_seconds)
            if idle_timeout_seconds is not None and idle_timeout_seconds > 0
            else None
        )
        self.drain_grace_seconds = float(drain_grace_seconds)
        self.idempotency_capacity = int(idempotency_capacity)
        self.counters: dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._heavy = 0
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers or max_concurrent_queries,
            thread_name_prefix="repro-service",
        )
        #: Single lane for WAL I/O: appends serialize in commit order
        #: without blocking the event loop.
        self._wal_executor = (
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-wal")
            if self._wal is not None
            else None
        )
        self._ledger = None
        self._ledger_flush_every = max(1, int(ledger_flush_every))
        if ledger_path is not None:
            from ..obs.ledger import RunLedger

            self._ledger = RunLedger(ledger_path)
        self._pending: list[tuple[str, float]] = []
        self._batch_coalesced = 0
        self._batch_rejected = 0
        self._lane_ids = itertools.count(1)
        #: Per-handle serialization of update batches (see _updates):
        #: batches against one graph apply in arrival order, never
        #: concurrently — the streaming engine is not thread-safe.
        self._update_locks: dict[int, asyncio.Lock] = {}
        self._update_seq = itertools.count(1)
        #: Idempotency-Key → original response payload (bounded FIFO),
        #: plus the in-flight task per key so a concurrent duplicate
        #: awaits the first application instead of re-applying.
        self._idempotency: OrderedDict[str, dict] = OrderedDict()
        self._idempotent_inflight: dict[str, asyncio.Task] = {}
        #: Mutation/compaction reader-writer latch: mutations (submit /
        #: update / delete WAL transactions) run concurrently, a
        #: compaction runs exclusively so its snapshot can never observe
        #: an applied-but-unlogged batch.
        self._mutation_cv = asyncio.Condition()
        self._mutants = 0
        self._compacting = False
        self._appends_since_snapshot = 0
        self._compact_task: asyncio.Task | None = None
        self._background: set[asyncio.Task] = set()
        self._state = "idle"
        self._active_requests = 0
        self._connections: set[asyncio.StreamWriter] = set()
        self.recovery_report = None
        self._drain_summary: dict | None = None
        self._server: asyncio.AbstractServer | None = None
        self._started = time.time()

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int | None:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    @property
    def state(self) -> str:
        """``idle`` / ``recovering`` / ``serving`` / ``draining``."""
        return self._state

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Bind, recover durable state (if a WAL is attached), serve.

        The socket binds *before* recovery so ``/healthz`` and
        ``/readyz`` answer (``recovering``) while the snapshot + WAL
        tail replay in the executor; every other route gets a structured
        503 until the state machine reaches ``serving``.
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        if self._wal is not None:
            self._state = "recovering"
            from .recovery import recover

            loop = asyncio.get_running_loop()
            report, idempotency = await loop.run_in_executor(
                self._executor,
                lambda: recover(
                    self._wal, session=self.session, registry=self.registry
                ),
            )
            self.recovery_report = report
            for key, payload in idempotency.items():
                self._store_idempotent(key, payload)
            self._record_service_event(
                "recovery",
                wall_seconds=report.wall_seconds,
                metrics={
                    "service.recovery.records_replayed": report.records_replayed,
                    "service.recovery.updates_replayed": report.updates_replayed,
                    "service.recovery.graphs": len(report.fingerprints),
                    "service.recovery.warm_points": report.warm_points,
                    "service.recovery.skipped_lines": report.skipped_lines,
                    "service.recovery.wall_seconds": report.wall_seconds,
                },
            )
        if self._state in ("idle", "recovering"):
            self._state = "serving"
        return self._server

    async def drain(self, *, grace_seconds: float | None = None) -> dict:
        """Graceful shutdown: stop accepting, let in-flight work finish
        (or force-close it after the grace period), write the final
        snapshot + ledger flush.

        Returns a JSON-able summary.  New requests arriving on live
        keep-alive connections during the drain get a structured 503
        with ``Connection: close``; idempotent on repeat calls.
        """
        if self._state == "draining":
            return dict(self._drain_summary or {"state": "draining"})
        grace = (
            self.drain_grace_seconds
            if grace_seconds is None
            else float(grace_seconds)
        )
        self._state = "draining"
        inflight_at_drain = self._active_requests
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + grace
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        forced = self._active_requests
        for writer in list(self._connections):
            writer.close()
        # Wait for any in-flight compaction, then take the final one.
        if self._compact_task is not None and not self._compact_task.done():
            with contextlib.suppress(Exception):
                await self._compact_task
        snapshot_written = False
        if self._wal is not None:
            await self._compact(force=True)
            snapshot_written = True
        elif self.session.store is not None:
            self.session.store.spill()
        summary = {
            "drained_inflight": inflight_at_drain,
            "forced_requests": forced,
            "snapshot_written": snapshot_written,
            "final_lsn": self._wal.lsn if self._wal is not None else None,
        }
        self._drain_summary = summary
        self._record_service_event(
            "drain",
            metrics={
                "service.drain.inflight": inflight_at_drain,
                "service.drain.forced": forced,
                "service.drain.snapshot_written": int(snapshot_written),
            },
        )
        self._flush_ledger(force=True)
        return summary

    async def stop(self) -> None:
        """Stop accepting, flush the ledger, and release the executors."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._flush_ledger(force=True)
        if self.session.store is not None:
            self.session.store.spill()
        self._executor.shutdown(wait=True)
        if self._wal_executor is not None:
            self._wal_executor.shutdown(wait=True)

    async def serve_forever(
        self, host: str = "127.0.0.1", port: int = 8321
    ) -> None:
        """Convenience loop for the CLI: serve until cancelled."""
        server = await self.start(host, port)
        try:
            await server.serve_forever()
        finally:
            await self.stop()

    def _record_service_event(
        self, event: str, *, wall_seconds: float | None = None, metrics=None
    ) -> None:
        """Append one ``kind="service"`` lifecycle record immediately
        (restarts and drains must be visible in ``repro-scan history``
        even when the query batch buffer never fills)."""
        if self._ledger is None:
            return
        from ..obs.ledger import build_record

        workload = {"service": event}
        if self._wal is not None:
            workload["wal_dir"] = str(self._wal.dir)
        record = build_record(
            "service",
            workload=workload,
            wall_seconds=wall_seconds,
            metrics=metrics,
        )
        try:
            self._ledger.append(record)
        except OSError:  # pragma: no cover - ledger disk trouble
            pass  # telemetry must never take the service down

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    if self.idle_timeout_seconds is not None:
                        request = await asyncio.wait_for(
                            read_request(reader, max_body=self.max_body_bytes),
                            self.idle_timeout_seconds,
                        )
                    else:
                        request = await read_request(
                            reader, max_body=self.max_body_bytes
                        )
                except asyncio.TimeoutError:
                    # Idle (or glacially slow) peer: reclaim the slot.
                    self.counters["idle_closed"] += 1
                    tracer = current_tracer()
                    if tracer.enabled:
                        tracer.count("service.idle_closed", 1)
                    break
                except HTTPError as exc:
                    # Framing is broken; answer once and hang up.
                    writer.write(
                        response_bytes(
                            exc.status,
                            {"error": exc.message},
                            extra_headers=exc.headers,
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload, headers = await self._respond(request)
                # A draining service finishes this response, then closes.
                keep_alive = request.keep_alive and self._state != "draining"
                writer.write(
                    response_bytes(
                        status,
                        payload,
                        extra_headers=headers,
                        keep_alive=keep_alive,
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionError,
                OSError,
                asyncio.CancelledError,
            ):  # pragma: no cover - shutdown/peer races
                # CancelledError lands here when the loop shuts down
                # mid-close; the handler has nothing left to do, and
                # letting it escape makes streams' connection callback
                # log a spurious traceback.
                pass

    async def _respond(
        self, request
    ) -> tuple[int, dict, dict[str, str]]:
        """Dispatch one request, mapping every failure to a JSON error."""
        self.counters["requests"] += 1
        self._active_requests += 1
        t0 = time.perf_counter()
        status, payload, headers = 500, {"error": "unhandled"}, {}
        try:
            status, payload, headers = await self._dispatch(request)
        except HTTPError as exc:
            if exc.status not in (429, 503):
                # Rejections and lifecycle 503s are counted separately.
                self.counters["errors"] += 1
            status, payload, headers = (
                exc.status,
                {"error": exc.message},
                exc.headers,
            )
        except ResumeMismatchError as exc:
            self.counters["errors"] += 1
            status, payload = 409, {"error": str(exc)}
        except ExecutionFaultError as exc:
            self.counters["errors"] += 1
            status, payload = 503, {
                "error": "execution fault",
                "detail": str(exc),
            }
            headers = {"Retry-After": "5"}
        except (ValueError, KeyError) as exc:
            self.counters["errors"] += 1
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the service must answer
            self.counters["errors"] += 1
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}"
            }
        finally:
            self._active_requests -= 1
            tracer = current_tracer()
            if tracer.enabled:
                # Requests overlap freely, so each records as its own
                # already-timed interval on a private lane instead of
                # nesting on the (strictly stacked) ambient lanes.
                tracer.add_span(
                    "service:request",
                    t0,
                    time.perf_counter(),
                    lane=next(self._lane_ids),
                    method=request.method,
                    path=request.path,
                    status=status,
                )
                tracer.count("service.requests", 1)
                tracer.count(f"service.status.{status // 100}xx", 1)
        return status, payload, headers

    # -- routing --------------------------------------------------------

    def _readyz(self) -> tuple[int, dict, dict[str, str]]:
        ready = self._state == "serving"
        payload = {
            "state": self._state,
            "ready": ready,
            "uptime_seconds": time.time() - self._started,
        }
        if self.recovery_report is not None:
            payload["recovery"] = {
                "records_replayed": self.recovery_report.records_replayed,
                "graphs_restored": len(self.recovery_report.fingerprints),
                "wall_seconds": self.recovery_report.wall_seconds,
            }
        if ready:
            return 200, payload, {}
        return 503, payload, {"Retry-After": "1"}

    async def _dispatch(self, request) -> tuple[int, dict, dict[str, str]]:
        parts = request.path_parts
        method = request.method
        if parts == ["healthz"] and method == "GET":
            return 200, {
                "status": "ok",
                "state": self._state,
                "uptime_seconds": time.time() - self._started,
            }, {}
        if parts == ["readyz"] and method == "GET":
            return self._readyz()
        if self._state != "serving" and not (
            parts == ["stats"] and self._state == "draining"
        ):
            self.counters["unready_rejected"] += 1
            raise HTTPError(
                503,
                f"service is {self._state}; "
                + (
                    "retry once recovery finishes"
                    if self._state == "recovering"
                    else "this instance is shutting down"
                ),
                headers={"Retry-After": "1"},
            )
        if parts == ["stats"] and method == "GET":
            return 200, self.stats(), {}
        if parts == ["admin", "compact"] and method == "POST":
            return await self._admin_compact()
        if parts == ["graphs"]:
            if method == "GET":
                return (
                    200,
                    {"graphs": [h.stats() for h in self.registry]},
                    {},
                )
            if method == "POST":
                return await self._submit(request)
            raise HTTPError(405, f"{method} not allowed on /graphs")
        if len(parts) >= 2 and parts[0] == "graphs":
            fingerprint = parts[1]
            if len(parts) == 2:
                if method == "GET":
                    return 200, self._handle_for(fingerprint).stats(), {}
                if method == "DELETE":
                    return await self._unload(fingerprint)
                raise HTTPError(405, f"{method} not allowed here")
            action = parts[2]
            if action == "cluster" and len(parts) == 3 and method == "GET":
                return await self._cluster(request, fingerprint)
            if action == "vertex" and len(parts) == 4 and method == "GET":
                return await self._vertex(request, fingerprint, parts[3])
            if action == "sweep" and len(parts) == 3 and method == "POST":
                return await self._sweep(request, fingerprint)
            if action == "updates" and len(parts) == 3 and method == "POST":
                return await self._updates(request, fingerprint)
        raise HTTPError(404, f"no route for {method} {request.path}")

    # -- helpers --------------------------------------------------------

    def _handle_for(self, fingerprint: str):
        handle = self.registry.get(fingerprint)
        if handle is None:
            raise HTTPError(
                404,
                f"no graph loaded with fingerprint {fingerprint!r}; "
                "POST /graphs to (re)submit it",
            )
        return handle

    @staticmethod
    def _parse_params(query: dict[str, str]) -> ScanParams:
        try:
            eps = float(query["eps"])
            mu = int(query["mu"])
        except KeyError as exc:
            raise HTTPError(
                400, f"missing query parameter {exc.args[0]!r}"
            ) from None
        except ValueError as exc:
            raise HTTPError(400, f"malformed parameter: {exc}") from None
        try:
            return ScanParams(eps, mu)
        except ValueError as exc:
            raise HTTPError(400, str(exc)) from None

    def _deadline_of(self, request) -> float | None:
        """The effective deadline: ``timeout=`` clamped to the server
        maximum (absent → the server maximum itself)."""
        raw = request.query.get("timeout")
        if raw is None:
            return self.max_request_seconds
        try:
            seconds = float(raw)
        except ValueError:
            raise HTTPError(
                400, f"malformed timeout parameter {raw!r}"
            ) from None
        if seconds <= 0:
            raise HTTPError(400, "timeout must be > 0 seconds")
        if self.max_request_seconds is not None:
            return min(seconds, self.max_request_seconds)
        return seconds

    async def _await_deadline(self, awaitable, deadline: float | None):
        """Await shielded work under a deadline.

        On expiry the *request* gets a structured 504 while the
        underlying future keeps running — a cold query still warms the
        memo for the retry, an update transaction still commits (its
        retry is answered by the idempotency replay).
        """
        if deadline is None:
            return await asyncio.shield(awaitable)
        try:
            return await asyncio.wait_for(asyncio.shield(awaitable), deadline)
        except asyncio.TimeoutError:
            self.counters["timeouts"] += 1
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("service.timeouts", 1)
            raise HTTPError(
                504,
                f"deadline of {deadline:g}s exceeded; the operation "
                "continues server-side — retry to pick up its result",
                headers={"Retry-After": "1"},
            ) from None

    async def _run_heavy(
        self, key: tuple, work: Callable, *, deadline: float | None = None
    ):
        """Run ``work`` in the executor under coalescing + admission.

        Identical in-flight ``key``\\ s share one future (followers do not
        count against the concurrency limit); a fresh heavy operation
        beyond ``max_concurrent_queries`` is rejected with 429 and a
        ``Retry-After`` hint instead of queueing.  The work itself is
        deadline-immune (see :meth:`_await_deadline`).
        """
        existing = self._inflight.get(key)
        tracer = current_tracer()
        if existing is not None:
            self.counters["coalesced"] += 1
            self._batch_coalesced += 1
            if tracer.enabled:
                tracer.count("service.coalesced", 1)
            return await self._await_deadline(existing, deadline)
        if self._heavy >= self.max_concurrent_queries:
            self.counters["rejected"] += 1
            self._batch_rejected += 1
            if tracer.enabled:
                tracer.count("service.rejected", 1)
            raise HTTPError(
                429,
                "server is at its concurrent heavy-query limit "
                f"({self.max_concurrent_queries}); retry shortly",
                headers={"Retry-After": "1"},
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._heavy += 1

        async def runner():
            try:
                result = await loop.run_in_executor(self._executor, work)
            except BaseException as exc:
                if not future.done():
                    future.set_exception(exc)
                    future.exception()  # consumed: awaiters re-raise a copy
                if isinstance(exc, asyncio.CancelledError):
                    raise
            else:
                if not future.done():
                    future.set_result(result)
            finally:
                self._heavy -= 1
                self._inflight.pop(key, None)

        self._spawn(runner())
        return await self._await_deadline(future, deadline)

    def _spawn(self, coro) -> asyncio.Task:
        """Track a background task (strong ref + consumed exceptions)."""
        task = asyncio.get_running_loop().create_task(coro)
        self._background.add(task)

        def _done(t: asyncio.Task) -> None:
            self._background.discard(t)
            if not t.cancelled():
                t.exception()  # consumed; failures surface via futures

        task.add_done_callback(_done)
        return task

    # -- mutation / compaction latch ------------------------------------

    @contextlib.asynccontextmanager
    async def _mutation(self):
        """Shared side of the latch: WAL-coupled mutations (apply →
        append → re-key) run concurrently with each other but never
        overlap a compaction, whose snapshot would otherwise record an
        applied-but-unlogged batch and double-apply it on replay."""
        async with self._mutation_cv:
            while self._compacting:
                await self._mutation_cv.wait()
            self._mutants += 1
        try:
            yield
        finally:
            async with self._mutation_cv:
                self._mutants -= 1
                self._mutation_cv.notify_all()

    @contextlib.asynccontextmanager
    async def _exclusive(self):
        """Writer side: drain in-flight mutations, block new ones."""
        async with self._mutation_cv:
            while self._compacting:
                await self._mutation_cv.wait()
            self._compacting = True
            while self._mutants:
                await self._mutation_cv.wait()
        try:
            yield
        finally:
            async with self._mutation_cv:
                self._compacting = False
                self._mutation_cv.notify_all()

    def _snapshot_state(self) -> dict:
        """The compaction snapshot body (gathered on the event loop,
        under the exclusive latch, so it is mutation-consistent)."""
        graphs = []
        for fingerprint in self.registry.fingerprints():
            handle = self.registry.peek(fingerprint)
            graphs.append(
                {
                    "fingerprint": fingerprint,
                    "label": handle.label,
                    "batches_applied": handle.batches_applied,
                    "points": handle.materialized_points(),
                }
            )
        return {"graphs": graphs, "idempotency": dict(self._idempotency)}

    def _schedule_compaction(self) -> None:
        if (
            self._wal is None
            or self._state != "serving"
            or self._appends_since_snapshot < self.snapshot_every
        ):
            return
        if self._compact_task is not None and not self._compact_task.done():
            return
        self._compact_task = self._spawn(self._compact())

    async def _compact(self, force: bool = False):
        """Snapshot-compact the WAL (no-op unless due or ``force``)."""
        if self._wal is None:
            return None
        if not force and self._appends_since_snapshot < self.snapshot_every:
            return None
        loop = asyncio.get_running_loop()
        async with self._exclusive():
            state = self._snapshot_state()
            handles = [
                (fp, self.registry.peek(fp))
                for fp in self.registry.fingerprints()
            ]

            def work():
                for fingerprint, handle in handles:
                    self._wal.spill_graph(fingerprint, handle.graph)
                if self.session.store is not None:
                    self.session.store.spill()
                snapshot = self._wal.compact(state)
                self._wal.prune_graphs({fp for fp, _ in handles})
                return snapshot

            snapshot = await loop.run_in_executor(self._wal_executor, work)
            self._appends_since_snapshot = 0
            self.counters["compactions"] += 1
            return snapshot

    async def _admin_compact(self) -> tuple[int, dict, dict[str, str]]:
        if self._wal is None:
            raise HTTPError(
                400, "service has no WAL attached (start with --wal-dir)"
            )
        await self._compact(force=True)
        return 200, {"compacted": True, "wal": self._wal.stats()}, {}

    async def _wal_append(self, fn: Callable) -> None:
        """Run one WAL write on the dedicated WAL lane."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._wal_executor, fn)

    async def _log_evictions(self, evicted) -> None:
        if self._wal is None or not evicted:
            return
        fingerprints = [fp for fp, _ in evicted]

        def log():
            for fingerprint in fingerprints:
                self._wal.append("evict", fingerprint=fingerprint)

        await self._wal_append(log)
        self._appends_since_snapshot += len(fingerprints)

    async def _discard_handle(self, fingerprint: str, handle) -> None:
        """Release a handle's memory only once nothing references it.

        The loser of a destructive race (DELETE or LRU eviction vs
        in-flight work) gets a structured 404/409 — never a handle torn
        down mid-computation: updates serialize on the per-handle lock,
        and heavy work keyed on this fingerprint (cold queries, sweeps)
        finishes before :meth:`~repro.api.Session.discard` clears the
        handle's index and memo under it.
        """
        lock = self._update_locks.pop(id(handle), None)
        if lock is not None:
            async with lock:
                pass
        while any(
            len(key) > 1 and key[1] == fingerprint for key in self._inflight
        ):
            await asyncio.sleep(0.01)
        self.session.discard(handle)

    def _store_idempotent(self, key: str, payload: dict) -> None:
        self._idempotency[key] = payload
        self._idempotency.move_to_end(key)
        while len(self._idempotency) > self.idempotency_capacity:
            self._idempotency.popitem(last=False)

    def _observe(self, kind: str, seconds: float) -> None:
        """Record one served query's latency and maybe flush a ledger
        batch."""
        self._pending.append((kind, seconds))
        tracer = current_tracer()
        if tracer.enabled:
            tracer.observe(f"service.latency.{kind}", seconds)
        if len(self._pending) >= self._ledger_flush_every:
            self._flush_ledger()

    def _flush_ledger(self, force: bool = False) -> None:
        """Append one ``service`` record summarizing the pending batch."""
        if self._ledger is None or not self._pending:
            if force:
                self._pending.clear()
            return
        latencies = sorted(seconds for _, seconds in self._pending)
        kinds: dict[str, int] = {}
        for kind, _ in self._pending:
            kinds[kind] = kinds.get(kind, 0) + 1
        from ..obs.ledger import build_record

        record = build_record(
            "service",
            workload={
                "service": "query-batch",
                "graphs": self.registry.fingerprints(),
            },
            wall_seconds=float(sum(latencies)),
            metrics={
                "service.batch_queries": len(latencies),
                "service.p50_ms": _percentile(latencies, 0.50) * 1e3,
                "service.p95_ms": _percentile(latencies, 0.95) * 1e3,
                "service.max_ms": latencies[-1] * 1e3,
                "service.coalesced": self._batch_coalesced,
                "service.rejected": self._batch_rejected,
                **{f"service.kind.{k}": n for k, n in kinds.items()},
            },
        )
        try:
            self._ledger.append(record)
        except OSError:  # pragma: no cover - ledger disk trouble
            pass  # telemetry must never take the service down
        self._pending.clear()
        self._batch_coalesced = 0
        self._batch_rejected = 0

    # -- endpoint bodies ------------------------------------------------

    def _parse_graph_body(self, request) -> tuple[CSRGraph, str | None]:
        content_type = request.headers.get("content-type", "")
        label: str | None = None
        if "json" in content_type:
            payload = request.json()
            if not isinstance(payload, dict) or "edges" not in payload:
                raise HTTPError(
                    400, 'JSON graph body must be {"edges": [[u, v], ...]}'
                )
            label = payload.get("label")
            try:
                edges = np.asarray(
                    payload["edges"], dtype=np.int64
                ).reshape(-1, 2)
            except (TypeError, ValueError) as exc:
                raise HTTPError(
                    400, f"malformed edges array: {exc}"
                ) from None
        else:
            rows: list[tuple[int, int]] = []
            for lineno, line in enumerate(
                request.text().splitlines(), start=1
            ):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                fields = line.split()
                if len(fields) < 2:
                    raise HTTPError(
                        400, f"line {lineno}: malformed edge line {line!r}"
                    )
                try:
                    rows.append((int(fields[0]), int(fields[1])))
                except ValueError:
                    raise HTTPError(
                        400,
                        f"line {lineno}: non-integer vertex id in {line!r}",
                    ) from None
            edges = np.asarray(rows, dtype=np.int64).reshape(-1, 2)
        if edges.size == 0:
            raise HTTPError(400, "graph body contains no edges")
        if edges.min() < 0:
            raise HTTPError(400, "negative vertex id in edges")
        return from_edge_array(edges), label

    async def _submit(self, request) -> tuple[int, dict, dict[str, str]]:
        graph, label = self._parse_graph_body(request)
        deadline = self._deadline_of(request)
        # The whole transaction (fingerprint → build → WAL → registry)
        # runs shielded: a client that times out gets its 504 while the
        # submission still completes and logs — its retry answers
        # ``already_loaded`` instead of rebuilding.
        task = self._spawn(self._submit_txn(graph, label))
        return await self._await_deadline(task, deadline)

    async def _submit_txn(
        self, graph: CSRGraph, label: str | None
    ) -> tuple[int, dict, dict[str, str]]:
        loop = asyncio.get_running_loop()
        fingerprint = await loop.run_in_executor(
            self._executor, graph_fingerprint, graph
        )
        existing = self.registry.get(fingerprint)
        if existing is not None:
            return (
                200,
                {**existing.stats(), "already_loaded": True},
                {},
            )
        t0 = time.perf_counter()

        def build():
            handle = self.session.open(graph, label=label)
            handle._fingerprint = fingerprint  # precomputed above
            handle.ensure_index()
            return handle

        handle = await self._run_heavy(("submit", fingerprint), build)
        build_seconds = time.perf_counter() - t0
        if fingerprint not in self.registry:
            async with self._mutation():
                if self._wal is not None:
                    # Payload before record, record before ack: a valid
                    # submit line always has its graph on disk, and an
                    # unlogged submission was never acknowledged.
                    def log():
                        self._wal.spill_graph(fingerprint, graph)
                        self._wal.append(
                            "submit", fingerprint=fingerprint, label=label
                        )

                    await self._wal_append(log)
                    self._appends_since_snapshot += 1
                evicted = self.registry.put(fingerprint, handle)
                await self._log_evictions(evicted)
                for old_fp, old in evicted:
                    self._spawn(self._discard_handle(old_fp, old))
                self.counters["evictions"] += len(evicted)
                self.counters["submissions"] += 1
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("service.submissions", 1)
                tracer.count("service.evictions", len(evicted))
            self._schedule_compaction()
        self._observe("submit", build_seconds)
        return (
            201,
            {
                **handle.stats(),
                "index_build_seconds": build_seconds,
                "already_loaded": False,
            },
            {},
        )

    async def _unload(
        self, fingerprint: str
    ) -> tuple[int, dict, dict[str, str]]:
        handle = self.registry.peek(fingerprint)
        if handle is None:
            raise HTTPError(404, f"no graph {fingerprint!r} to unload")
        # Let an in-flight update batch finish (the per-handle lock
        # serializes us behind it), then re-validate: the update may
        # have re-keyed the graph, or a concurrent DELETE may have won.
        lock = self._update_locks.setdefault(id(handle), asyncio.Lock())
        async with lock:
            if self.registry.peek(fingerprint) is not handle:
                raise HTTPError(
                    404,
                    f"graph {fingerprint!r} was re-keyed or unloaded "
                    "while this delete waited; re-fetch /graphs",
                )
            async with self._mutation():
                if self._wal is not None:
                    await self._wal_append(
                        lambda: self._wal.append(
                            "delete", fingerprint=fingerprint
                        )
                    )
                    self._appends_since_snapshot += 1
                self.registry.pop(fingerprint)
        self._spawn(self._discard_handle(fingerprint, handle))
        self._schedule_compaction()
        return 200, {"fingerprint": fingerprint, "unloaded": True}, {}

    async def _updates(
        self, request, fingerprint: str
    ) -> tuple[int, dict, dict[str, str]]:
        deadline = self._deadline_of(request)
        idem_key = request.headers.get("idempotency-key") or None
        if idem_key is not None:
            cached = self._idempotency.get(idem_key)
            if cached is not None:
                return self._replay_idempotent(cached)
            running = self._idempotent_inflight.get(idem_key)
            if running is not None:
                # Concurrent duplicate: await the first application.
                payload = await self._await_deadline(running, deadline)
                return self._replay_idempotent(payload)
        handle = self._handle_for(fingerprint)
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(
                400,
                'updates body must be {"insert": [[u, v], ...], '
                '"remove": [[u, v], ...]} or {"edits": [["+", u, v], ...]}',
            )
        from ..streaming import EditBatch

        try:
            source = payload["edits"] if "edits" in payload else payload
            batch = EditBatch.coerce(source)
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"malformed updates body: {exc}") from None
        if not len(batch):
            raise HTTPError(400, "updates body contains no edits")
        self.counters["updates"] += 1
        # The transaction (apply → WAL append → re-key → idempotency
        # store) runs shielded from this request's deadline: once the
        # batch is applied it MUST be logged and acknowledged-able, so a
        # timed-out client's retry replays the original result instead
        # of double-applying.
        task = self._spawn(
            self._update_txn(fingerprint, handle, batch, idem_key)
        )
        if idem_key is not None:
            self._idempotent_inflight[idem_key] = task
            task.add_done_callback(
                lambda t, k=idem_key: self._idempotent_inflight.pop(k, None)
            )
        out = await self._await_deadline(task, deadline)
        return 200, out, {}

    def _replay_idempotent(
        self, payload: dict
    ) -> tuple[int, dict, dict[str, str]]:
        self.counters["idempotent_replays"] += 1
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("service.idempotent_replays", 1)
        return (
            200,
            {**payload, "idempotent_replay": True},
            {"Idempotency-Replayed": "true"},
        )

    async def _update_txn(
        self, fingerprint: str, handle, batch, idem_key: str | None
    ) -> dict:
        t0 = time.perf_counter()
        lock = self._update_locks.setdefault(id(handle), asyncio.Lock())
        async with lock:
            # The graph may have been deleted or re-keyed by a batch
            # that held the lock before us (destructive race): answer a
            # structured conflict, never mutate a dangling handle.
            if self.registry.peek(fingerprint) is not handle:
                raise HTTPError(
                    409,
                    f"graph {fingerprint!r} was unloaded or re-keyed "
                    "while this update waited; re-fetch /graphs and "
                    "retry against the current fingerprint",
                )
            async with self._mutation():
                # Unique key per request: distinct batches must never
                # coalesce (they are different mutations); the
                # per-handle lock serializes them instead.
                key = ("updates", fingerprint, next(self._update_seq))
                try:
                    report = await self._run_heavy(
                        key, lambda: handle.apply_updates(batch)
                    )
                except IndexError as exc:
                    raise HTTPError(400, str(exc)) from None
                if self.registry.peek(fingerprint) is not handle:
                    # Evicted while the batch applied: the mutated
                    # handle is unreachable and must NOT be logged — a
                    # WAL record chaining from an already-evicted
                    # fingerprint would fail replay.  The client retries
                    # after resubmitting.
                    raise HTTPError(
                        409,
                        f"graph {fingerprint!r} was evicted while the "
                        "batch applied; the mutation was not committed "
                        "— resubmit the graph and retry",
                    )
                seconds = time.perf_counter() - t0
                out = report.as_dict()
                out.update(
                    {
                        "previous_fingerprint": fingerprint,
                        "warm_points": len(handle._results),
                        "request_seconds": seconds,
                    }
                )
                if self._wal is not None:
                    triples = batch.as_triples()

                    def log():
                        self._wal.append(
                            "update",
                            old_fp=fingerprint,
                            new_fp=report.fingerprint,
                            idempotency_key=idem_key,
                            edits=triples,
                            response=out,
                        )

                    await self._wal_append(log)
                    self._appends_since_snapshot += 1
                # Re-key: the handle answers to its new fingerprint.
                if (
                    report.fingerprint != fingerprint
                    and fingerprint in self.registry
                ):
                    moved = self.registry.pop(fingerprint)
                    if moved is not None:
                        evicted = self.registry.put(
                            report.fingerprint, moved
                        )
                        await self._log_evictions(evicted)
                        for old_fp, old in evicted:
                            self._spawn(self._discard_handle(old_fp, old))
                        self.counters["evictions"] += len(evicted)
                if idem_key is not None:
                    self._store_idempotent(idem_key, out)
        self._observe("updates", seconds)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("service.updates", 1)
        self._schedule_compaction()
        return out

    async def _cluster(
        self, request, fingerprint: str
    ) -> tuple[int, dict, dict[str, str]]:
        handle = self._handle_for(fingerprint)
        params = self._parse_params(request.query)
        deadline = self._deadline_of(request)
        algorithm = request.query.get("algorithm")
        if algorithm is not None and algorithm not in api.available_algorithms():
            known = ", ".join(api.available_algorithms())
            raise HTTPError(
                400, f"unknown algorithm {algorithm!r}; known: {known}"
            )
        include_labels = request.query.get("include") == "labels"
        self.counters["queries"] += 1
        t0 = time.perf_counter()
        result = None
        warm = False
        if algorithm is None:
            result = handle.lookup(params)
            warm = result is not None
        if result is None:
            frac = params.eps_fraction
            key = (
                "cluster",
                fingerprint,
                frac.numerator,
                frac.denominator,
                params.mu,
                algorithm,
            )
            result = await self._run_heavy(
                key,
                lambda: handle.cluster(params, algorithm=algorithm),
                deadline=deadline,
            )
            self.counters["cold_queries"] += 1
        else:
            self.counters["warm_hits"] += 1
        seconds = time.perf_counter() - t0
        self._observe("cluster", seconds)
        payload = {
            "fingerprint": fingerprint,
            "eps": float(params.eps),
            "mu": int(params.mu),
            "algorithm": algorithm or "gsindex",
            "num_clusters": result.num_clusters,
            "num_cores": result.num_cores,
            "num_vertices": result.num_vertices,
            "warm": warm,
            "wall_seconds": seconds,
        }
        if include_labels:
            payload["roles"] = result.roles.tolist()
            payload["core_labels"] = result.core_labels.tolist()
            payload["noncore_pairs"] = [
                [int(a), int(b)] for a, b in result.noncore_pairs
            ]
        return 200, payload, {}

    async def _vertex(
        self, request, fingerprint: str, vertex: str
    ) -> tuple[int, dict, dict[str, str]]:
        handle = self._handle_for(fingerprint)
        params = self._parse_params(request.query)
        deadline = self._deadline_of(request)
        try:
            v = int(vertex)
        except ValueError:
            raise HTTPError(400, f"malformed vertex id {vertex!r}") from None
        if not 0 <= v < handle.graph.num_vertices:
            raise HTTPError(
                404,
                f"vertex {v} out of range "
                f"[0, {handle.graph.num_vertices})",
            )
        self.counters["queries"] += 1
        self.counters["vertex_lookups"] += 1
        t0 = time.perf_counter()
        frac = params.eps_fraction
        key = (
            "vertex",
            fingerprint,
            frac.numerator,
            frac.denominator,
            params.mu,
        )
        # The classification pass (not the individual lookup) is the
        # heavy part; coalesce per parameter point, then read the view.
        view = await self._run_heavy(
            key, lambda: handle.vertex(v, params), deadline=deadline
        )
        if view.vertex != v:
            # A coalesced follower shared the leader's classification
            # warm-up; its own read is now a pure memo hit.
            view = handle.vertex(v, params)
        seconds = time.perf_counter() - t0
        self._observe("vertex", seconds)
        return (
            200,
            {
                "fingerprint": fingerprint,
                **view.as_dict(),
                "wall_seconds": seconds,
            },
            {},
        )

    async def _sweep(
        self, request, fingerprint: str
    ) -> tuple[int, dict, dict[str, str]]:
        handle = self._handle_for(fingerprint)
        deadline = self._deadline_of(request)
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, 'sweep body must be {"eps": [...], "mu": [...]}')
        try:
            eps_values = [float(x) for x in payload["eps"]]
            mu_values = [int(x) for x in payload["mu"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise HTTPError(
                400, f'malformed sweep grid ({exc}); expected '
                '{"eps": [...], "mu": [...]}'
            ) from None
        if not eps_values or not mu_values:
            raise HTTPError(400, "sweep grid must be non-empty")
        algorithm = payload.get("algorithm", "ppscan")
        if algorithm not in api.available_algorithms():
            known = ", ".join(api.available_algorithms())
            raise HTTPError(
                400, f"unknown algorithm {algorithm!r}; known: {known}"
            )
        self.counters["queries"] += 1
        self.counters["sweeps"] += 1
        t0 = time.perf_counter()
        key = (
            "sweep",
            fingerprint,
            tuple(sorted(eps_values)),
            tuple(sorted(mu_values)),
            algorithm,
        )
        outcome = await self._run_heavy(
            key,
            lambda: handle.sweep(eps_values, mu_values, algorithm=algorithm),
            deadline=deadline,
        )
        seconds = time.perf_counter() - t0
        self._observe("sweep", seconds)
        return (
            200,
            {
                "fingerprint": fingerprint,
                "algorithm": algorithm,
                "wall_seconds": seconds,
                "reuse_fraction": outcome.stats.reuse_fraction,
                "points": [
                    {
                        "eps": p.eps,
                        "mu": p.mu,
                        "num_clusters": p.result.num_clusters,
                        "num_cores": p.result.num_cores,
                        "reuse_fraction": p.reuse_fraction,
                        "wall_seconds": p.wall_seconds,
                    }
                    for p in outcome.points
                ],
            },
            {},
        )

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        """The ``/stats`` payload: counters, registry and store state."""
        queries = self.counters["queries"]
        warm = self.counters["warm_hits"]
        store = self.session.store
        out = {
            "state": self._state,
            "counters": dict(self.counters),
            "inflight": len(self._inflight),
            "heavy_running": self._heavy,
            "active_requests": self._active_requests,
            "connections": len(self._connections),
            "max_concurrent_queries": self.max_concurrent_queries,
            "warm_hit_rate": warm / queries if queries else 0.0,
            "coalescing_hits": self.counters["coalesced"],
            "registry": self.registry.stats(),
            "idempotency_keys": len(self._idempotency),
            "uptime_seconds": time.time() - self._started,
        }
        if store is not None:
            cache = store.stats()
            out["store"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "reuse_fraction": cache.reuse_fraction,
            }
        if self._wal is not None:
            out["wal"] = self._wal.stats()
            if self.recovery_report is not None:
                out["wal"]["recovery"] = self.recovery_report.as_dict()
        return out
