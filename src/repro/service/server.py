"""The always-on clustering service.

One long-lived process owns a :class:`~repro.api.Session`: a graph is
submitted once (``POST /graphs``), pays its similarity-resolution cost
once (GS*-Index construction + similarity-store warm-up, in a worker
executor so the event loop stays responsive), and from then on every
``(ε, µ)`` clustering query, per-vertex lookup or sweep is an index walk
— the serving model of index-based SCAN (Tseng, Dhulipala & Shun; see
``docs/service.md``).

Endpoints
---------
``GET  /healthz``                          liveness probe
``GET  /stats``                            counters, registry, store stats
``GET  /graphs``                           resident graph summaries
``POST /graphs``                           submit a graph (edge-list text
                                           or ``{"edges": [[u, v], ...]}``)
``GET  /graphs/{fp}``                      one graph's summary
``DELETE /graphs/{fp}``                    unload a graph
``GET  /graphs/{fp}/cluster?eps=&mu=``     clustering at (ε, µ)
``GET  /graphs/{fp}/vertex/{v}?eps=&mu=``  per-vertex role + clusters
``POST /graphs/{fp}/sweep``                grid sweep (``{"eps": [...],
                                           "mu": [...]}``)
``POST /graphs/{fp}/updates``              apply a batch of edge edits
                                           (``{"insert": [[u, v], ...],
                                           "remove": [[u, v], ...]}``);
                                           the graph is re-stamped and
                                           re-keyed under its new
                                           fingerprint, warm queries
                                           keep serving between batches

Scheduling model
----------------
* **Coalescing** — identical in-flight work (same fingerprint, ε, µ and
  algorithm) shares one future: a thundering herd on a cold point costs
  one index query.
* **Admission control** — at most ``max_concurrent_queries`` heavy
  operations (index builds, cold queries, sweeps) run at once; beyond
  that the service answers ``429`` with ``Retry-After`` instead of
  queueing unboundedly.  Warm (memoized) queries and coalesced
  followers bypass the limit — they add no load.
* **Eviction** — the graph registry is LRU-bounded by count and by a
  byte budget (:class:`~repro.service.registry.GraphRegistry`).

Failures map to structured JSON errors: validation → 400, unknown
fingerprint → 404, checkpoint identity mismatch → 409, admission → 429,
supervisor exhaustion (:class:`~repro.parallel.ExecutionFaultError`) →
503 with the fault detail.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from .. import api
from ..cache import SimilarityStore, graph_fingerprint
from ..checkpoint import ResumeMismatchError
from ..graph import CSRGraph, from_edge_array
from ..obs.tracer import current_tracer
from ..options import ExecutionOptions
from ..parallel import ExecutionFaultError
from ..types import ScanParams
from .http import (
    DEFAULT_MAX_BODY,
    HTTPError,
    read_request,
    response_bytes,
)
from .registry import GraphRegistry

__all__ = ["ClusteringService"]

#: Ledger flush threshold: one ``service`` record summarizes this many
#: queries (latency percentiles + coalescing traffic per batch).
DEFAULT_LEDGER_FLUSH = 64

_COUNTER_NAMES = (
    "requests",
    "queries",
    "warm_hits",
    "cold_queries",
    "coalesced",
    "rejected",
    "submissions",
    "evictions",
    "sweeps",
    "vertex_lookups",
    "updates",
    "errors",
)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (empty → 0.0)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


class ClusteringService:
    """Asyncio HTTP server over a :class:`~repro.api.Session`.

    Construct, ``await start(host, port)``, drive requests, ``await
    stop()``.  All state mutation happens on the event-loop thread; the
    executor threads only run pure computations on
    :class:`~repro.api.GraphHandle` objects (whose stores take their own
    commit locks), so no additional synchronization is needed.
    """

    def __init__(
        self,
        *,
        session: api.Session | None = None,
        options: ExecutionOptions | None = None,
        cache_dir=None,
        max_graphs: int | None = 8,
        memory_budget_mb: float | None = None,
        max_concurrent_queries: int = 4,
        max_body_bytes: int = DEFAULT_MAX_BODY,
        ledger_path=None,
        ledger_flush_every: int = DEFAULT_LEDGER_FLUSH,
        executor_workers: int | None = None,
    ) -> None:
        if max_concurrent_queries < 1:
            raise ValueError("max_concurrent_queries must be >= 1")
        if session is None:
            session = api.Session(
                options=options,
                store=SimilarityStore(cache_dir=cache_dir),
            )
        self.session = session
        self.registry = GraphRegistry(
            max_graphs=max_graphs,
            memory_budget_bytes=(
                int(memory_budget_mb * 1024 * 1024)
                if memory_budget_mb is not None
                else None
            ),
        )
        self.max_concurrent_queries = max_concurrent_queries
        self.max_body_bytes = max_body_bytes
        self.counters: dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._heavy = 0
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers or max_concurrent_queries,
            thread_name_prefix="repro-service",
        )
        self._ledger = None
        self._ledger_flush_every = max(1, int(ledger_flush_every))
        if ledger_path is not None:
            from ..obs.ledger import RunLedger

            self._ledger = RunLedger(ledger_path)
        self._pending: list[tuple[str, float]] = []
        self._batch_coalesced = 0
        self._batch_rejected = 0
        self._lane_ids = itertools.count(1)
        #: Per-handle serialization of update batches (see _updates):
        #: batches against one graph apply in arrival order, never
        #: concurrently — the streaming engine is not thread-safe.
        self._update_locks: dict[int, asyncio.Lock] = {}
        self._update_seq = itertools.count(1)
        self._server: asyncio.AbstractServer | None = None
        self._started = time.time()

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int | None:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Bind and start serving (``port=0`` picks an ephemeral port)."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._server

    async def stop(self) -> None:
        """Stop accepting, flush the ledger, and release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._flush_ledger(force=True)
        if self.session.store is not None:
            self.session.store.spill()
        self._executor.shutdown(wait=True)

    async def serve_forever(
        self, host: str = "127.0.0.1", port: int = 8321
    ) -> None:
        """Convenience loop for the CLI: serve until cancelled."""
        server = await self.start(host, port)
        try:
            await server.serve_forever()
        finally:
            await self.stop()

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body_bytes
                    )
                except HTTPError as exc:
                    # Framing is broken; answer once and hang up.
                    writer.write(
                        response_bytes(
                            exc.status,
                            {"error": exc.message},
                            extra_headers=exc.headers,
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload, headers = await self._respond(request)
                writer.write(
                    response_bytes(
                        status,
                        payload,
                        extra_headers=headers,
                        keep_alive=request.keep_alive,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionError,
                OSError,
                asyncio.CancelledError,
            ):  # pragma: no cover - shutdown/peer races
                # CancelledError lands here when the loop shuts down
                # mid-close; the handler has nothing left to do, and
                # letting it escape makes streams' connection callback
                # log a spurious traceback.
                pass

    async def _respond(
        self, request
    ) -> tuple[int, dict, dict[str, str]]:
        """Dispatch one request, mapping every failure to a JSON error."""
        self.counters["requests"] += 1
        t0 = time.perf_counter()
        status, payload, headers = 500, {"error": "unhandled"}, {}
        try:
            status, payload, headers = await self._dispatch(request)
        except HTTPError as exc:
            if exc.status != 429:  # rejections are counted separately
                self.counters["errors"] += 1
            status, payload, headers = (
                exc.status,
                {"error": exc.message},
                exc.headers,
            )
        except ResumeMismatchError as exc:
            self.counters["errors"] += 1
            status, payload = 409, {"error": str(exc)}
        except ExecutionFaultError as exc:
            self.counters["errors"] += 1
            status, payload = 503, {
                "error": "execution fault",
                "detail": str(exc),
            }
            headers = {"Retry-After": "5"}
        except (ValueError, KeyError) as exc:
            self.counters["errors"] += 1
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the service must answer
            self.counters["errors"] += 1
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}"
            }
        finally:
            tracer = current_tracer()
            if tracer.enabled:
                # Requests overlap freely, so each records as its own
                # already-timed interval on a private lane instead of
                # nesting on the (strictly stacked) ambient lanes.
                tracer.add_span(
                    "service:request",
                    t0,
                    time.perf_counter(),
                    lane=next(self._lane_ids),
                    method=request.method,
                    path=request.path,
                    status=status,
                )
                tracer.count("service.requests", 1)
                tracer.count(f"service.status.{status // 100}xx", 1)
        return status, payload, headers

    # -- routing --------------------------------------------------------

    async def _dispatch(self, request) -> tuple[int, dict, dict[str, str]]:
        parts = request.path_parts
        method = request.method
        if parts == ["healthz"] and method == "GET":
            return 200, {"status": "ok", "uptime_seconds": time.time() - self._started}, {}
        if parts == ["stats"] and method == "GET":
            return 200, self.stats(), {}
        if parts == ["graphs"]:
            if method == "GET":
                return (
                    200,
                    {"graphs": [h.stats() for h in self.registry]},
                    {},
                )
            if method == "POST":
                return await self._submit(request)
            raise HTTPError(405, f"{method} not allowed on /graphs")
        if len(parts) >= 2 and parts[0] == "graphs":
            fingerprint = parts[1]
            if len(parts) == 2:
                if method == "GET":
                    return 200, self._handle_for(fingerprint).stats(), {}
                if method == "DELETE":
                    return self._unload(fingerprint)
                raise HTTPError(405, f"{method} not allowed here")
            action = parts[2]
            if action == "cluster" and len(parts) == 3 and method == "GET":
                return await self._cluster(request, fingerprint)
            if action == "vertex" and len(parts) == 4 and method == "GET":
                return await self._vertex(request, fingerprint, parts[3])
            if action == "sweep" and len(parts) == 3 and method == "POST":
                return await self._sweep(request, fingerprint)
            if action == "updates" and len(parts) == 3 and method == "POST":
                return await self._updates(request, fingerprint)
        raise HTTPError(404, f"no route for {method} {request.path}")

    # -- helpers --------------------------------------------------------

    def _handle_for(self, fingerprint: str):
        handle = self.registry.get(fingerprint)
        if handle is None:
            raise HTTPError(
                404,
                f"no graph loaded with fingerprint {fingerprint!r}; "
                "POST /graphs to (re)submit it",
            )
        return handle

    @staticmethod
    def _parse_params(query: dict[str, str]) -> ScanParams:
        try:
            eps = float(query["eps"])
            mu = int(query["mu"])
        except KeyError as exc:
            raise HTTPError(
                400, f"missing query parameter {exc.args[0]!r}"
            ) from None
        except ValueError as exc:
            raise HTTPError(400, f"malformed parameter: {exc}") from None
        try:
            return ScanParams(eps, mu)
        except ValueError as exc:
            raise HTTPError(400, str(exc)) from None

    async def _run_heavy(self, key: tuple, work: Callable):
        """Run ``work`` in the executor under coalescing + admission.

        Identical in-flight ``key``\\ s share one future (followers do not
        count against the concurrency limit); a fresh heavy operation
        beyond ``max_concurrent_queries`` is rejected with 429 and a
        ``Retry-After`` hint instead of queueing.
        """
        existing = self._inflight.get(key)
        tracer = current_tracer()
        if existing is not None:
            self.counters["coalesced"] += 1
            self._batch_coalesced += 1
            if tracer.enabled:
                tracer.count("service.coalesced", 1)
            return await asyncio.shield(existing)
        if self._heavy >= self.max_concurrent_queries:
            self.counters["rejected"] += 1
            self._batch_rejected += 1
            if tracer.enabled:
                tracer.count("service.rejected", 1)
            raise HTTPError(
                429,
                "server is at its concurrent heavy-query limit "
                f"({self.max_concurrent_queries}); retry shortly",
                headers={"Retry-After": "1"},
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._heavy += 1
        try:
            result = await loop.run_in_executor(self._executor, work)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()  # consumed: followers re-raise their copy
            raise
        else:
            if not future.done():
                future.set_result(result)
            return result
        finally:
            self._heavy -= 1
            self._inflight.pop(key, None)

    def _observe(self, kind: str, seconds: float) -> None:
        """Record one served query's latency and maybe flush a ledger
        batch."""
        self._pending.append((kind, seconds))
        tracer = current_tracer()
        if tracer.enabled:
            tracer.observe(f"service.latency.{kind}", seconds)
        if len(self._pending) >= self._ledger_flush_every:
            self._flush_ledger()

    def _flush_ledger(self, force: bool = False) -> None:
        """Append one ``service`` record summarizing the pending batch."""
        if self._ledger is None or not self._pending:
            if force:
                self._pending.clear()
            return
        latencies = sorted(seconds for _, seconds in self._pending)
        kinds: dict[str, int] = {}
        for kind, _ in self._pending:
            kinds[kind] = kinds.get(kind, 0) + 1
        from ..obs.ledger import build_record

        record = build_record(
            "service",
            workload={
                "service": "query-batch",
                "graphs": self.registry.fingerprints(),
            },
            wall_seconds=float(sum(latencies)),
            metrics={
                "service.batch_queries": len(latencies),
                "service.p50_ms": _percentile(latencies, 0.50) * 1e3,
                "service.p95_ms": _percentile(latencies, 0.95) * 1e3,
                "service.max_ms": latencies[-1] * 1e3,
                "service.coalesced": self._batch_coalesced,
                "service.rejected": self._batch_rejected,
                **{f"service.kind.{k}": n for k, n in kinds.items()},
            },
        )
        try:
            self._ledger.append(record)
        except OSError:  # pragma: no cover - ledger disk trouble
            pass  # telemetry must never take the service down
        self._pending.clear()
        self._batch_coalesced = 0
        self._batch_rejected = 0

    # -- endpoint bodies ------------------------------------------------

    def _parse_graph_body(self, request) -> tuple[CSRGraph, str | None]:
        content_type = request.headers.get("content-type", "")
        label: str | None = None
        if "json" in content_type:
            payload = request.json()
            if not isinstance(payload, dict) or "edges" not in payload:
                raise HTTPError(
                    400, 'JSON graph body must be {"edges": [[u, v], ...]}'
                )
            label = payload.get("label")
            try:
                edges = np.asarray(
                    payload["edges"], dtype=np.int64
                ).reshape(-1, 2)
            except (TypeError, ValueError) as exc:
                raise HTTPError(
                    400, f"malformed edges array: {exc}"
                ) from None
        else:
            rows: list[tuple[int, int]] = []
            for lineno, line in enumerate(
                request.text().splitlines(), start=1
            ):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                fields = line.split()
                if len(fields) < 2:
                    raise HTTPError(
                        400, f"line {lineno}: malformed edge line {line!r}"
                    )
                try:
                    rows.append((int(fields[0]), int(fields[1])))
                except ValueError:
                    raise HTTPError(
                        400,
                        f"line {lineno}: non-integer vertex id in {line!r}",
                    ) from None
            edges = np.asarray(rows, dtype=np.int64).reshape(-1, 2)
        if edges.size == 0:
            raise HTTPError(400, "graph body contains no edges")
        if edges.min() < 0:
            raise HTTPError(400, "negative vertex id in edges")
        return from_edge_array(edges), label

    async def _submit(self, request) -> tuple[int, dict, dict[str, str]]:
        graph, label = self._parse_graph_body(request)
        loop = asyncio.get_running_loop()
        fingerprint = await loop.run_in_executor(
            self._executor, graph_fingerprint, graph
        )
        existing = self.registry.get(fingerprint)
        if existing is not None:
            return (
                200,
                {**existing.stats(), "already_loaded": True},
                {},
            )
        t0 = time.perf_counter()

        def build():
            handle = self.session.open(graph, label=label)
            handle._fingerprint = fingerprint  # precomputed above
            handle.ensure_index()
            return handle

        handle = await self._run_heavy(("submit", fingerprint), build)
        build_seconds = time.perf_counter() - t0
        if fingerprint not in self.registry:
            evicted = self.registry.put(fingerprint, handle)
            for _, old in evicted:
                self.session.discard(old)
            self.counters["evictions"] += len(evicted)
            self.counters["submissions"] += 1
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("service.submissions", 1)
                tracer.count("service.evictions", len(evicted))
        self._observe("submit", build_seconds)
        return (
            201,
            {
                **handle.stats(),
                "index_build_seconds": build_seconds,
                "already_loaded": False,
            },
            {},
        )

    def _unload(self, fingerprint: str) -> tuple[int, dict, dict[str, str]]:
        handle = self.registry.pop(fingerprint)
        if handle is None:
            raise HTTPError(404, f"no graph {fingerprint!r} to unload")
        self._update_locks.pop(id(handle), None)
        self.session.discard(handle)
        return 200, {"fingerprint": fingerprint, "unloaded": True}, {}

    async def _updates(
        self, request, fingerprint: str
    ) -> tuple[int, dict, dict[str, str]]:
        handle = self._handle_for(fingerprint)
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(
                400,
                'updates body must be {"insert": [[u, v], ...], '
                '"remove": [[u, v], ...]} or {"edits": [["+", u, v], ...]}',
            )
        from ..streaming import EditBatch

        try:
            source = payload["edits"] if "edits" in payload else payload
            batch = EditBatch.coerce(source)
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"malformed updates body: {exc}") from None
        if not len(batch):
            raise HTTPError(400, "updates body contains no edits")
        self.counters["updates"] += 1
        t0 = time.perf_counter()
        # Unique key per request: distinct batches must never coalesce
        # (they are different mutations); the per-handle lock serializes
        # them instead, so batches apply in arrival order.
        key = ("updates", fingerprint, next(self._update_seq))
        lock = self._update_locks.setdefault(id(handle), asyncio.Lock())
        async with lock:
            try:
                report = await self._run_heavy(
                    key, lambda: handle.apply_updates(batch)
                )
            except IndexError as exc:
                raise HTTPError(400, str(exc)) from None
        # Re-key the registry: the handle answers to its new fingerprint.
        if (
            report.fingerprint != fingerprint
            and fingerprint in self.registry
        ):
            moved = self.registry.pop(fingerprint)
            if moved is not None:
                evicted = self.registry.put(report.fingerprint, moved)
                for _, old in evicted:
                    self.session.discard(old)
                self.counters["evictions"] += len(evicted)
        seconds = time.perf_counter() - t0
        self._observe("updates", seconds)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("service.updates", 1)
        out = report.as_dict()
        out.update(
            {
                "previous_fingerprint": fingerprint,
                "warm_points": len(handle._results),
                "request_seconds": seconds,
            }
        )
        return 200, out, {}

    async def _cluster(
        self, request, fingerprint: str
    ) -> tuple[int, dict, dict[str, str]]:
        handle = self._handle_for(fingerprint)
        params = self._parse_params(request.query)
        algorithm = request.query.get("algorithm")
        if algorithm is not None and algorithm not in api.available_algorithms():
            known = ", ".join(api.available_algorithms())
            raise HTTPError(
                400, f"unknown algorithm {algorithm!r}; known: {known}"
            )
        include_labels = request.query.get("include") == "labels"
        self.counters["queries"] += 1
        t0 = time.perf_counter()
        result = None
        warm = False
        if algorithm is None:
            result = handle.lookup(params)
            warm = result is not None
        if result is None:
            frac = params.eps_fraction
            key = (
                "cluster",
                fingerprint,
                frac.numerator,
                frac.denominator,
                params.mu,
                algorithm,
            )
            result = await self._run_heavy(
                key,
                lambda: handle.cluster(params, algorithm=algorithm),
            )
            self.counters["cold_queries"] += 1
        else:
            self.counters["warm_hits"] += 1
        seconds = time.perf_counter() - t0
        self._observe("cluster", seconds)
        payload = {
            "fingerprint": fingerprint,
            "eps": float(params.eps),
            "mu": int(params.mu),
            "algorithm": algorithm or "gsindex",
            "num_clusters": result.num_clusters,
            "num_cores": result.num_cores,
            "num_vertices": result.num_vertices,
            "warm": warm,
            "wall_seconds": seconds,
        }
        if include_labels:
            payload["roles"] = result.roles.tolist()
            payload["core_labels"] = result.core_labels.tolist()
            payload["noncore_pairs"] = [
                [int(a), int(b)] for a, b in result.noncore_pairs
            ]
        return 200, payload, {}

    async def _vertex(
        self, request, fingerprint: str, vertex: str
    ) -> tuple[int, dict, dict[str, str]]:
        handle = self._handle_for(fingerprint)
        params = self._parse_params(request.query)
        try:
            v = int(vertex)
        except ValueError:
            raise HTTPError(400, f"malformed vertex id {vertex!r}") from None
        if not 0 <= v < handle.graph.num_vertices:
            raise HTTPError(
                404,
                f"vertex {v} out of range "
                f"[0, {handle.graph.num_vertices})",
            )
        self.counters["queries"] += 1
        self.counters["vertex_lookups"] += 1
        t0 = time.perf_counter()
        frac = params.eps_fraction
        key = (
            "vertex",
            fingerprint,
            frac.numerator,
            frac.denominator,
            params.mu,
        )
        # The classification pass (not the individual lookup) is the
        # heavy part; coalesce per parameter point, then read the view.
        view = await self._run_heavy(
            key, lambda: handle.vertex(v, params)
        )
        if view.vertex != v:
            # A coalesced follower shared the leader's classification
            # warm-up; its own read is now a pure memo hit.
            view = handle.vertex(v, params)
        seconds = time.perf_counter() - t0
        self._observe("vertex", seconds)
        return (
            200,
            {
                "fingerprint": fingerprint,
                **view.as_dict(),
                "wall_seconds": seconds,
            },
            {},
        )

    async def _sweep(
        self, request, fingerprint: str
    ) -> tuple[int, dict, dict[str, str]]:
        handle = self._handle_for(fingerprint)
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, 'sweep body must be {"eps": [...], "mu": [...]}')
        try:
            eps_values = [float(x) for x in payload["eps"]]
            mu_values = [int(x) for x in payload["mu"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise HTTPError(
                400, f'malformed sweep grid ({exc}); expected '
                '{"eps": [...], "mu": [...]}'
            ) from None
        if not eps_values or not mu_values:
            raise HTTPError(400, "sweep grid must be non-empty")
        algorithm = payload.get("algorithm", "ppscan")
        if algorithm not in api.available_algorithms():
            known = ", ".join(api.available_algorithms())
            raise HTTPError(
                400, f"unknown algorithm {algorithm!r}; known: {known}"
            )
        self.counters["queries"] += 1
        self.counters["sweeps"] += 1
        t0 = time.perf_counter()
        key = (
            "sweep",
            fingerprint,
            tuple(sorted(eps_values)),
            tuple(sorted(mu_values)),
            algorithm,
        )
        outcome = await self._run_heavy(
            key,
            lambda: handle.sweep(eps_values, mu_values, algorithm=algorithm),
        )
        seconds = time.perf_counter() - t0
        self._observe("sweep", seconds)
        return (
            200,
            {
                "fingerprint": fingerprint,
                "algorithm": algorithm,
                "wall_seconds": seconds,
                "reuse_fraction": outcome.stats.reuse_fraction,
                "points": [
                    {
                        "eps": p.eps,
                        "mu": p.mu,
                        "num_clusters": p.result.num_clusters,
                        "num_cores": p.result.num_cores,
                        "reuse_fraction": p.reuse_fraction,
                        "wall_seconds": p.wall_seconds,
                    }
                    for p in outcome.points
                ],
            },
            {},
        )

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        """The ``/stats`` payload: counters, registry and store state."""
        queries = self.counters["queries"]
        warm = self.counters["warm_hits"]
        store = self.session.store
        out = {
            "counters": dict(self.counters),
            "inflight": len(self._inflight),
            "heavy_running": self._heavy,
            "max_concurrent_queries": self.max_concurrent_queries,
            "warm_hit_rate": warm / queries if queries else 0.0,
            "coalescing_hits": self.counters["coalesced"],
            "registry": self.registry.stats(),
            "uptime_seconds": time.time() - self._started,
        }
        if store is not None:
            cache = store.stats()
            out["store"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "reuse_fraction": cache.reuse_fraction,
            }
        return out
