"""A thin HTTP/1.1 layer over :mod:`asyncio` streams.

Deliberately minimal — the clustering service needs exactly request
parsing (method, target, query string, headers, content-length body),
JSON responses, and keep-alive — and the repo ships no heavy
dependencies, so this module implements that subset directly instead of
pulling in a framework.  It is not a general-purpose HTTP server:

* only ``Content-Length``-framed bodies (no chunked transfer coding);
* headers are size-capped and case-folded, duplicate headers keep the
  last value;
* ``Connection: close`` (or HTTP/1.0 without keep-alive) ends the
  connection after the response, anything else keeps it open.

Every parse failure raises :class:`HTTPError` with the right status so
the server can answer malformed input with a structured JSON error
instead of dropping the connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HTTPError",
    "Request",
    "read_request",
    "response_bytes",
    "STATUS_PHRASES",
]

#: Request line + one header line must fit in this many bytes.
MAX_LINE = 16 * 1024
#: Total header count cap (before the body is even considered).
MAX_HEADERS = 64
#: Default request-body cap; the server can override per instance.
DEFAULT_MAX_BODY = 64 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HTTPError(Exception):
    """A request the server refuses, carrying its HTTP status.

    ``headers`` lets a raiser attach response headers (the admission
    controller sets ``Retry-After`` this way).
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str  #: the raw request target, e.g. ``/graphs/ab12/cluster?eps=0.5``
    path: str  #: decoded path component
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True

    @property
    def path_parts(self) -> list[str]:
        return [part for part in self.path.split("/") if part]

    def json(self):
        """The body decoded as JSON (:class:`HTTPError` 400 on failure)."""
        if not self.body:
            raise HTTPError(400, "request body required")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HTTPError(400, f"malformed JSON body: {exc}") from None

    def text(self) -> str:
        """The body decoded as UTF-8 text (:class:`HTTPError` 400 on
        failure)."""
        try:
            return self.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise HTTPError(400, f"body is not valid UTF-8: {exc}") from None


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise HTTPError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HTTPError(400, "header line too long") from None
    if len(line) > MAX_LINE:
        raise HTTPError(400, "header line too long")
    return line.rstrip(b"\r\n")


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = DEFAULT_MAX_BODY
) -> Request | None:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`HTTPError` on malformed input (the caller answers it
    and closes the connection, since framing can no longer be trusted).
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise HTTPError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HTTPError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            break
        if len(headers) >= MAX_HEADERS:
            raise HTTPError(400, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HTTPError(400, "malformed Content-Length") from None
        if length < 0:
            raise HTTPError(400, "malformed Content-Length")
        if length > max_body:
            raise HTTPError(
                413, f"request body exceeds {max_body} byte limit"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HTTPError(400, "truncated request body") from None
    elif headers.get("transfer-encoding"):
        raise HTTPError(400, "chunked transfer encoding is not supported")

    split = urlsplit(target)
    connection = headers.get("connection", "").lower()
    keep_alive = connection != "close" and not (
        version == "HTTP/1.0" and connection != "keep-alive"
    )
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query={k: v for k, v in parse_qsl(split.query)},
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def response_bytes(
    status: int,
    payload,
    *,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one HTTP/1.1 response.

    ``payload`` may be ``bytes``, ``str``, or any JSON-able object
    (dict/list payloads are the service's normal currency).
    """
    if isinstance(payload, bytes):
        body = payload
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
