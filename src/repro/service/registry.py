"""LRU registry of loaded graphs, keyed by CSR content fingerprint.

The service submits a graph once and serves queries against its
:class:`~repro.api.GraphHandle` forever after — but "forever" has to fit
in memory.  The registry bounds residency two ways:

* ``max_graphs`` — a hard count cap;
* ``memory_budget_bytes`` — a soft byte budget metered by
  :meth:`GraphHandle.memory_bytes` (graph arrays + index structures +
  memoized query results).

Eviction is least-recently-*used*: every :meth:`get` refreshes recency,
so the graphs queries keep landing on stay resident and idle ones age
out.  The most recently inserted handle is never evicted — a graph too
large for the budget still serves, it just evicts everything else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api import GraphHandle

__all__ = ["GraphRegistry"]


class GraphRegistry:
    """Fingerprint → :class:`~repro.api.GraphHandle`, LRU-bounded."""

    def __init__(
        self,
        *,
        max_graphs: int | None = 8,
        memory_budget_bytes: int | None = None,
    ) -> None:
        if max_graphs is not None and max_graphs < 1:
            raise ValueError("max_graphs must be >= 1")
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be > 0")
        self.max_graphs = max_graphs
        self.memory_budget_bytes = memory_budget_bytes
        #: dict preserves insertion order; recency = position (oldest first).
        self._handles: dict[str, "GraphHandle"] = {}
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._handles)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._handles

    def __iter__(self) -> Iterator["GraphHandle"]:
        return iter(list(self._handles.values()))

    def fingerprints(self) -> list[str]:
        """Resident fingerprints, least recently used first."""
        return list(self._handles)

    def total_bytes(self) -> int:
        return sum(h.memory_bytes() for h in self._handles.values())

    def get(self, fingerprint: str) -> "GraphHandle | None":
        """The resident handle, refreshed to most-recently-used."""
        handle = self._handles.pop(fingerprint, None)
        if handle is not None:
            self._handles[fingerprint] = handle
        return handle

    def peek(self, fingerprint: str) -> "GraphHandle | None":
        """Like :meth:`get` without refreshing recency."""
        return self._handles.get(fingerprint)

    def pop(self, fingerprint: str) -> "GraphHandle | None":
        return self._handles.pop(fingerprint, None)

    def restore(self, fingerprint: str, handle: "GraphHandle") -> None:
        """Insert without running the eviction budget.

        WAL replay uses this: the live registry's eviction decisions
        were shaped by query recency the log does not record, so replay
        must not re-derive them — it re-applies the logged ``evict`` /
        ``delete`` records instead and inserts everything else verbatim.
        """
        self._handles.pop(fingerprint, None)
        self._handles[fingerprint] = handle

    def put(
        self, fingerprint: str, handle: "GraphHandle"
    ) -> list[tuple[str, "GraphHandle"]]:
        """Insert (or refresh) ``handle``; returns the evicted pairs.

        Eviction runs after insertion so the budget decision sees the
        true resident set, and never removes the handle just inserted.
        """
        self._handles.pop(fingerprint, None)
        self._handles[fingerprint] = handle
        evicted: list[tuple[str, "GraphHandle"]] = []
        while len(self._handles) > 1 and self._over_budget():
            victim_fp = next(iter(self._handles))
            if victim_fp == fingerprint:
                break  # never evict the newest entry
            evicted.append((victim_fp, self._handles.pop(victim_fp)))
            self.evictions += 1
        return evicted

    def _over_budget(self) -> bool:
        if self.max_graphs is not None and len(self._handles) > self.max_graphs:
            return True
        return (
            self.memory_budget_bytes is not None
            and self.total_bytes() > self.memory_budget_bytes
        )

    def stats(self) -> dict:
        """JSON-able snapshot for the service's ``/stats`` endpoint."""
        return {
            "graphs": len(self._handles),
            "max_graphs": self.max_graphs,
            "memory_budget_bytes": self.memory_budget_bytes,
            "resident_bytes": self.total_bytes(),
            "evictions": self.evictions,
            "fingerprints": self.fingerprints(),
        }
