"""Always-on clustering service: HTTP front-end over the session API.

The package splits into five layers:

* :mod:`repro.service.http` — a thin HTTP/1.1 request/response layer
  over asyncio streams (no framework dependency);
* :mod:`repro.service.registry` — the LRU graph registry with a memory
  budget;
* :mod:`repro.service.wal` — the per-service write-ahead log
  (checksummed JSONL + snapshot compaction) that makes acknowledged
  mutations durable;
* :mod:`repro.service.recovery` — crash recovery: replay snapshot + WAL
  tail into a bit-identical registry before serving;
* :mod:`repro.service.server` — :class:`ClusteringService`, which wires
  a :class:`repro.api.Session` to the HTTP layer with request
  coalescing, admission control, deadlines, graceful drain and
  observability.

Start one from the command line with ``repro-scan serve`` or embed it::

    import asyncio
    from repro.service import ClusteringService

    async def main():
        service = ClusteringService(wal_dir="service-state")
        await service.start(port=8321)
        ...
        await service.drain()
        await service.stop()

    asyncio.run(main())
"""

from .http import HTTPError, Request, read_request, response_bytes
from .recovery import RecoveryError, RecoveryReport, recover
from .registry import GraphRegistry
from .server import ClusteringService
from .wal import ServiceWAL, WALCrashPoint

__all__ = [
    "ClusteringService",
    "GraphRegistry",
    "HTTPError",
    "RecoveryError",
    "RecoveryReport",
    "Request",
    "ServiceWAL",
    "WALCrashPoint",
    "read_request",
    "recover",
    "response_bytes",
]
