"""Always-on clustering service: HTTP front-end over the session API.

The package splits into three layers:

* :mod:`repro.service.http` — a thin HTTP/1.1 request/response layer
  over asyncio streams (no framework dependency);
* :mod:`repro.service.registry` — the LRU graph registry with a memory
  budget;
* :mod:`repro.service.server` — :class:`ClusteringService`, which wires
  a :class:`repro.api.Session` to the HTTP layer with request
  coalescing, admission control and observability.

Start one from the command line with ``repro-scan serve`` or embed it::

    import asyncio
    from repro.service import ClusteringService

    async def main():
        service = ClusteringService()
        await service.start(port=8321)
        ...
        await service.stop()

    asyncio.run(main())
"""

from .http import HTTPError, Request, read_request, response_bytes
from .registry import GraphRegistry
from .server import ClusteringService

__all__ = [
    "ClusteringService",
    "GraphRegistry",
    "HTTPError",
    "Request",
    "read_request",
    "response_bytes",
]
