"""The service write-ahead log: durable submissions and edit batches.

The always-on service (:mod:`repro.service.server`) is RAM-resident by
construction — every submitted graph and applied edit batch lives in
the :class:`~repro.service.registry.GraphRegistry`.  The WAL is what
makes that state survive ``kill -9``: before a mutation is
*acknowledged* to the client, it is durably on disk here, and on
startup :mod:`repro.service.recovery` replays it back bit-identically.

Layout (one directory per service)::

    <wal_dir>/wal.jsonl            the log: one checksummed record/line
    <wal_dir>/wal.manifest.json    advisory tail manifest (never load-bearing)
    <wal_dir>/snapshot.json        latest compaction snapshot (atomic)
    <wal_dir>/graphs/<fp>.bin      spilled CSR payloads (binary CSR format)
    <wal_dir>/store/               the SimilarityStore disk layer (default)

Record discipline is the :class:`~repro.obs.ledger.RunLedger` one:

* append-only JSONL, every line carrying its own BLAKE2b ``crc`` (of
  the record minus the ``crc`` field) — a reader validates each line
  independently;
* appends ``fsync`` the line before returning, and the next append
  first repairs a torn tail (terminates unfinished bytes with a
  newline) so a crash mid-append can never fuse two records;
* torn / corrupt / foreign-schema lines are a **clean skip**, counted
  in :attr:`ServiceWAL.last_skipped`.

Every record carries a monotone ``lsn`` (log sequence number) that
keeps increasing **across compactions**: a compaction snapshot records
the highest lsn it covers, the log file is truncated, and replay
filters any stale record with ``lsn <= snapshot.lsn`` — which is
exactly the window a crash between snapshot-replace and log-truncate
leaves behind.

Operations logged
-----------------
``submit``   fingerprint + label; the CSR payload is spilled to
             ``graphs/<fp>.bin`` *before* the record is appended, so a
             valid submit record always has its payload.
``update``   the fingerprint chain ``old_fp → new_fp``, the ordered
             edit triples, the client's idempotency key and the
             response summary — enough to re-apply the batch exactly
             and to answer a duplicate retry without re-applying.
``delete``   explicit ``DELETE /graphs/{fp}``.
``evict``    an LRU eviction; logged so replay removes the same victim
             the live registry chose (recency is shaped by unlogged
             queries, so replay cannot re-derive it).

Crash points
------------
:class:`WALCrashPoint` is the service-level sibling of
:class:`~repro.parallel.chaos.ProcessCrashPoint`, armed via the
dedicated ``REPRO_WAL_CRASH`` environment variable (``"<point>:<n>"``)
so arming the service WAL never cross-arms the run ledger or the
checkpoint manager living in the same process:

``mid-append:<lsn>``    die with only a torn prefix of record ``lsn``
                        on disk (the mutation must be absent after
                        recovery);
``post-append:<lsn>``   die with record ``lsn`` durable but the client
                        never acknowledged (the mutation must be
                        present exactly once after recovery);
``mid-compact:<n>``     die during compaction ``n`` before the new
                        snapshot is visible (old snapshot + full log);
``post-compact:<n>``    die after the snapshot replace but before the
                        log truncation (new snapshot + stale log — the
                        lsn filter must drop every replayed record).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..checkpoint.atomic import (
    atomic_truncate,
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
)
from ..graph.io import GraphFormatError, read_csr_binary, csr_to_bytes
from ..obs.tracer import current_tracer

__all__ = [
    "WAL_SCHEMA",
    "WAL_OPS",
    "WALCrashPoint",
    "ServiceWAL",
]

#: Record schema version; lines with any other version are clean skips.
WAL_SCHEMA = 1

#: The operations a record may carry (anything else is a clean skip).
WAL_OPS = ("submit", "update", "delete", "evict")

_CRC_FIELD = "crc"

_CRASH_ENV = "REPRO_WAL_CRASH"


def _record_crc(record: Mapping[str, Any]) -> str:
    body = {k: v for k, v in record.items() if k != _CRC_FIELD}
    return hashlib.blake2b(
        json.dumps(
            body, sort_keys=True, default=str, separators=(",", ":")
        ).encode("utf-8"),
        digest_size=10,
    ).hexdigest()


@dataclass(frozen=True)
class WALCrashPoint:
    """Kill the service process at one seeded WAL event.

    ``point`` is one of :data:`POINTS`; ``target`` is the lsn (append
    points) or the 1-based compaction ordinal (compaction points).
    ``point=None`` disarms entirely — the default every production
    service runs with.

    ``exit_fn`` exists for in-process tests: the default ``None`` dies
    via ``os._exit(137)`` (no atexit, no finally blocks — as close to
    SIGKILL as Python gets); a test can substitute a function that
    raises, leaving the WAL directory inspectable in-process.
    """

    point: str | None = None
    target: int | None = None
    exit_fn: object = None

    POINTS = ("mid-append", "post-append", "mid-compact", "post-compact")

    def __post_init__(self) -> None:
        if self.point is not None and self.point not in self.POINTS:
            raise ValueError(
                f"crash point must be one of {self.POINTS}, got {self.point!r}"
            )

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "WALCrashPoint":
        """An armed point from ``REPRO_WAL_CRASH="<point>:<n>"``, or a
        disarmed one when the variable is absent or malformed."""
        env = os.environ if environ is None else environ
        raw = env.get(_CRASH_ENV)
        if not raw:
            return cls()
        point, sep, number = raw.partition(":")
        if point not in cls.POINTS or not sep:
            return cls()
        try:
            target = int(number)
        except ValueError:
            return cls()
        return cls(point=point, target=target)

    def fire(self, point: str, target: int) -> None:
        """Die iff armed for exactly (``point``, ``target``)."""
        if self.point != point or self.target != target:
            return
        from ..parallel.chaos import CRASH_EXIT_CODE

        if self.exit_fn is not None:
            self.exit_fn(CRASH_EXIT_CODE)
            return
        os._exit(CRASH_EXIT_CODE)  # pragma: no cover - kills the process


class ServiceWAL:
    """One service's write-ahead log directory.

    Thread-compatible the way the service uses it: every mutating call
    (:meth:`append`, :meth:`spill_graph`, :meth:`compact`) takes the
    internal lock, and the server additionally funnels them through a
    single-thread executor so appends land in acknowledgement order.
    """

    def __init__(self, wal_dir: str | os.PathLike, *, crash_point=None) -> None:
        self.dir = Path(wal_dir)
        self.log_path = self.dir / "wal.jsonl"
        self.manifest_path = self.dir / "wal.manifest.json"
        self.snapshot_path = self.dir / "snapshot.json"
        self.graphs_dir = self.dir / "graphs"
        self.crash_point = (
            crash_point if crash_point is not None else WALCrashPoint.from_env()
        )
        self._lock = threading.Lock()
        #: Invalid lines dropped by the most recent :meth:`read_records`.
        self.last_skipped = 0
        self.appends = 0
        snapshot = self.load_snapshot()
        self.compactions = (
            int(snapshot.get("compaction", 0)) if snapshot else 0
        )
        #: Highest assigned lsn; survives truncation via the snapshot.
        self.lsn = self.snapshot_lsn()
        for record in self.read_records():
            self.lsn = max(self.lsn, int(record["lsn"]))

    # -- reading ----------------------------------------------------------

    def read_records(self) -> list[dict[str, Any]]:
        """Every valid log record in file order; torn/corrupt lines are a
        clean skip counted in :attr:`last_skipped`."""
        records: list[dict[str, Any]] = []
        skipped = 0
        try:
            raw = self.log_path.read_text("utf-8")
        except OSError:
            self.last_skipped = 0
            return records
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if (
                not isinstance(record, dict)
                or record.get("schema") != WAL_SCHEMA
                or record.get("op") not in WAL_OPS
                or not isinstance(record.get("lsn"), int)
                or record.get(_CRC_FIELD) != _record_crc(record)
            ):
                skipped += 1
                continue
            records.append(record)
        self.last_skipped = skipped
        if skipped:
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("wal.skip", skipped)
        return records

    def replay_records(self) -> list[dict[str, Any]]:
        """The records recovery must replay on top of the snapshot:
        valid lines with ``lsn`` past the snapshot's coverage (stale
        pre-truncation leftovers are filtered out)."""
        base = self.snapshot_lsn()
        return [r for r in self.read_records() if int(r["lsn"]) > base]

    def load_snapshot(self) -> dict[str, Any] | None:
        """The latest compaction snapshot, or ``None`` (missing/corrupt
        snapshots degrade to full-log replay, never to an error)."""
        try:
            snapshot = json.loads(self.snapshot_path.read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(snapshot, dict)
            or snapshot.get("schema") != WAL_SCHEMA
            or not isinstance(snapshot.get("lsn"), int)
        ):
            return None
        if snapshot.get(_CRC_FIELD) != _record_crc(snapshot):
            return None
        return snapshot

    def snapshot_lsn(self) -> int:
        snapshot = self.load_snapshot()
        return int(snapshot["lsn"]) if snapshot else 0

    # -- graph payloads ---------------------------------------------------

    def graph_path(self, fingerprint: str) -> Path:
        return self.graphs_dir / f"{fingerprint}.bin"

    def spill_graph(self, fingerprint: str, graph) -> Path:
        """Durably spill ``graph``'s CSR payload (idempotent per
        fingerprint — the payload is content-addressed)."""
        path = self.graph_path(fingerprint)
        if not path.exists():
            atomic_write_bytes(path, csr_to_bytes(graph))
        return path

    def load_graph(self, fingerprint: str):
        """Load a spilled payload, verifying its content fingerprint.

        Raises :class:`FileNotFoundError` when absent and
        :class:`~repro.graph.io.GraphFormatError` when the payload is
        corrupt or hashes to a different fingerprint — a logged
        submission whose payload cannot be restored is external damage
        recovery must fail-stop on, never serve wrong data over.
        """
        path = self.graph_path(fingerprint)
        if not path.exists():
            raise FileNotFoundError(
                f"WAL graph payload missing: {path}"
            )
        graph = read_csr_binary(path)
        from ..cache.store import graph_fingerprint

        actual = graph_fingerprint(graph)
        if actual != fingerprint:
            raise GraphFormatError(
                f"payload fingerprint {actual} != expected {fingerprint}",
                path=path,
            )
        return graph

    def prune_graphs(self, keep: set[str]) -> int:
        """Drop spilled payloads for fingerprints not in ``keep``.

        Called after a compaction: superseded graph versions are no
        longer reachable from the snapshot or the (truncated) log, so
        their payloads are garbage.  Returns how many were removed.
        """
        removed = 0
        if not self.graphs_dir.is_dir():
            return removed
        for path in self.graphs_dir.glob("*.bin"):
            if path.stem not in keep:
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        return removed

    # -- writing ----------------------------------------------------------

    def append(self, op: str, **fields: Any) -> dict[str, Any]:
        """Durably append one record; returns the sealed copy.

        The record is stamped (``schema``, ``lsn``, ``ts_unix``,
        ``crc``), a torn tail from a previous crash is repaired, and the
        line is written in two chunks with the armed
        :class:`WALCrashPoint` firing ``mid-append`` between them (only
        a torn prefix on disk) and ``post-append`` once the line is
        fsynced — the two sides of the append-before-ack contract.
        """
        if op not in WAL_OPS:
            raise ValueError(f"unknown WAL op {op!r}; known: {WAL_OPS}")
        with self._lock:
            self.lsn += 1
            lsn = self.lsn
            sealed: dict[str, Any] = {
                "schema": WAL_SCHEMA,
                "lsn": lsn,
                "op": op,
                "ts_unix": int(time.time()),
                **fields,
            }
            sealed[_CRC_FIELD] = _record_crc(sealed)
            data = (
                json.dumps(sealed, sort_keys=True, default=str) + "\n"
            ).encode("utf-8")
            t0 = time.perf_counter()
            self.dir.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                os.fspath(self.log_path),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                if os.fstat(fd).st_size > 0:
                    # Repair a torn tail: terminate unfinished bytes so
                    # this record starts on a fresh line (the torn line
                    # stays a clean skip instead of fusing with it).
                    with open(self.log_path, "rb") as check:
                        check.seek(-1, os.SEEK_END)
                        if check.read(1) != b"\n":
                            os.write(fd, b"\n")
                split = max(len(data) // 2, 1)
                os.write(fd, data[:split])
                self.crash_point.fire("mid-append", lsn)
                os.write(fd, data[split:])
                os.fsync(fd)
            finally:
                os.close(fd)
            fsync_directory(self.dir)
            self.appends += 1
            self._write_manifest()
            tracer = current_tracer()
            if tracer.enabled:
                tracer.add_span(
                    "wal:append",
                    t0,
                    time.perf_counter(),
                    op=op,
                    lsn=lsn,
                )
                tracer.count("wal.append", 1)
                tracer.count(f"wal.append.{op}", 1)
            self.crash_point.fire("post-append", lsn)
            return sealed

    def compact(self, state: Mapping[str, Any]) -> dict[str, Any]:
        """Write a new snapshot covering everything up to the current
        lsn, then truncate the log.

        ``state`` is the server's registry/idempotency snapshot (see
        :meth:`ClusteringService._snapshot_state`); the caller must have
        spilled every resident graph's payload first.  Crash points:
        ``mid-compact`` fires before the snapshot replace (old snapshot
        + full log survive), ``post-compact`` after the replace but
        before the truncation (new snapshot + stale log — replay's lsn
        filter must drop every leftover record).
        """
        with self._lock:
            ordinal = self.compactions + 1
            snapshot: dict[str, Any] = {
                "schema": WAL_SCHEMA,
                "lsn": self.lsn,
                "compaction": ordinal,
                "ts_unix": int(time.time()),
                **dict(state),
            }
            snapshot[_CRC_FIELD] = _record_crc(snapshot)
            t0 = time.perf_counter()
            self.crash_point.fire("mid-compact", ordinal)
            atomic_write_text(
                self.snapshot_path,
                json.dumps(snapshot, sort_keys=True, default=str) + "\n",
            )
            self.crash_point.fire("post-compact", ordinal)
            atomic_truncate(self.log_path)
            self.compactions = ordinal
            self._write_manifest()
            tracer = current_tracer()
            if tracer.enabled:
                tracer.add_span(
                    "wal:compact",
                    t0,
                    time.perf_counter(),
                    lsn=self.lsn,
                    compaction=ordinal,
                )
                tracer.count("wal.compact", 1)
            return snapshot

    def _write_manifest(self) -> None:
        """Advisory tail manifest (the per-line CRCs are the truth)."""
        try:
            size = self.log_path.stat().st_size
        except OSError:
            size = 0
        manifest = {
            "version": WAL_SCHEMA,
            "file": self.log_path.name,
            "bytes": size,
            "lsn": self.lsn,
            "compactions": self.compactions,
            "snapshot_lsn": self.snapshot_lsn(),
        }
        try:
            atomic_write_text(
                self.manifest_path,
                json.dumps(manifest, indent=1, sort_keys=True) + "\n",
            )
        except OSError:  # pragma: no cover - advisory only
            pass

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """JSON-able WAL state for ``/stats`` and the manifest artifact."""
        return {
            "dir": str(self.dir),
            "lsn": self.lsn,
            "appends": self.appends,
            "compactions": self.compactions,
            "snapshot_lsn": self.snapshot_lsn(),
            "pending_records": len(self.replay_records()),
            "last_skipped": self.last_skipped,
        }

    def state_bytes(self) -> io.BytesIO:  # pragma: no cover - debug aid
        """The raw log bytes (missing file → empty buffer)."""
        try:
            return io.BytesIO(self.log_path.read_bytes())
        except OSError:
            return io.BytesIO()
