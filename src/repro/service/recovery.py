"""Crash recovery: rebuild the service registry from snapshot + WAL tail.

:func:`recover` is what :class:`~repro.service.server.ClusteringService`
runs in its ``recovering`` state before accepting traffic: load the
latest compaction snapshot (graph payloads, materialized (ε, µ) points,
idempotency responses), then replay every WAL record past the
snapshot's lsn in log order.  The result is bit-identical to the
pre-crash registry for everything that was *acknowledged*:

* a submitted graph is restored from its content-addressed payload
  (fingerprint-verified on load);
* an accepted edit batch re-applies through the same
  :meth:`~repro.api.GraphHandle.apply_updates` path and must land on
  the logged ``new_fp`` — any divergence is a :class:`RecoveryError`,
  never a silently different graph;
* every previously materialized (ε, µ) point recorded in the snapshot
  is re-queried so warm lookups serve the same labels as before the
  crash (exact algorithms are deterministic; the differential gates
  hold that invariant);
* logged ``delete`` / ``evict`` records remove the same victims the
  live registry chose (replay inserts via
  :meth:`~repro.service.registry.GraphRegistry.restore`, which never
  re-derives eviction decisions — live recency was shaped by unlogged
  queries).

Un-acknowledged work is absent by construction: the WAL appends before
the acknowledgement, so a torn (mid-append) record is a clean skip and
its mutation never happened as far as any client knows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..types import ScanParams
from ..obs.tracer import current_tracer

__all__ = ["RecoveryError", "RecoveryReport", "recover"]


class RecoveryError(RuntimeError):
    """The WAL and the disk state disagree in a way replay cannot repair.

    Raised fail-stop (the service refuses to serve) when a logged
    submission's payload is missing or corrupt, when an update record's
    fingerprint chain is broken (its ``old_fp`` is not resident), or
    when re-applying a batch lands on a different fingerprint than the
    one logged — every case means external damage or non-determinism,
    and serving through it would silently return wrong clusterings.
    """


@dataclass
class RecoveryReport:
    """What one :func:`recover` run rebuilt (JSON-able via
    :meth:`as_dict`; the service surfaces it in ``/stats`` and logs it
    to the run ledger as a ``kind="service"`` record)."""

    wal_dir: str = ""
    snapshot_lsn: int = 0
    final_lsn: int = 0
    graphs_restored: int = 0
    submissions_replayed: int = 0
    updates_replayed: int = 0
    deletes_replayed: int = 0
    evictions_replayed: int = 0
    warm_points: int = 0
    idempotency_keys: int = 0
    skipped_lines: int = 0
    wall_seconds: float = 0.0
    fingerprints: list[str] = field(default_factory=list)

    @property
    def records_replayed(self) -> int:
        return (
            self.submissions_replayed
            + self.updates_replayed
            + self.deletes_replayed
            + self.evictions_replayed
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "wal_dir": self.wal_dir,
            "snapshot_lsn": self.snapshot_lsn,
            "final_lsn": self.final_lsn,
            "graphs_restored": self.graphs_restored,
            "records_replayed": self.records_replayed,
            "submissions_replayed": self.submissions_replayed,
            "updates_replayed": self.updates_replayed,
            "deletes_replayed": self.deletes_replayed,
            "evictions_replayed": self.evictions_replayed,
            "warm_points": self.warm_points,
            "idempotency_keys": self.idempotency_keys,
            "skipped_lines": self.skipped_lines,
            "wall_seconds": self.wall_seconds,
            "fingerprints": list(self.fingerprints),
        }


def _restore_graph(wal, session, registry, fingerprint, label, batches_applied=0):
    """Load one spilled payload and register its handle."""
    try:
        graph = wal.load_graph(fingerprint)
    except (FileNotFoundError, ValueError) as exc:
        raise RecoveryError(
            f"cannot restore graph {fingerprint}: {exc}"
        ) from exc
    handle = session.open(graph, label=label)
    handle._fingerprint = fingerprint  # verified by load_graph
    handle.batches_applied = int(batches_applied)
    registry.restore(fingerprint, handle)
    return handle


def recover(
    wal, *, session, registry
) -> tuple[RecoveryReport, dict[str, dict]]:
    """Rebuild ``session``/``registry`` from ``wal``; returns the report
    plus the restored idempotency map (``Idempotency-Key`` → original
    response payload).

    The registry must be empty (fresh service start); the function is
    synchronous and heavy (index builds + warm re-queries) — the server
    runs it in its executor while ``/readyz`` answers ``recovering``.
    """
    report = RecoveryReport(wal_dir=str(wal.dir))
    idempotency: dict[str, dict] = {}
    t0 = time.perf_counter()
    tracer = current_tracer()

    snapshot = wal.load_snapshot()
    if snapshot is not None:
        report.snapshot_lsn = int(snapshot["lsn"])
        for entry in snapshot.get("graphs", []):
            handle = _restore_graph(
                wal,
                session,
                registry,
                entry["fingerprint"],
                entry.get("label"),
                entry.get("batches_applied", 0),
            )
            report.graphs_restored += 1
            for num, den, mu in entry.get("points", []):
                handle.cluster(ScanParams(num / den, int(mu)))
                report.warm_points += 1
        stored = snapshot.get("idempotency", {})
        if isinstance(stored, dict):
            idempotency.update(
                (str(k), v) for k, v in stored.items() if isinstance(v, dict)
            )

    from ..streaming import EditBatch

    records = wal.replay_records()
    report.skipped_lines = wal.last_skipped
    for record in records:
        op = record["op"]
        if op == "submit":
            fingerprint = record["fingerprint"]
            if registry.peek(fingerprint) is not None:
                continue  # stale duplicate (e.g. post-compact leftovers)
            _restore_graph(
                wal, session, registry, fingerprint, record.get("label")
            )
            report.submissions_replayed += 1
        elif op == "update":
            old_fp, new_fp = record["old_fp"], record["new_fp"]
            handle = registry.peek(old_fp)
            if handle is None:
                raise RecoveryError(
                    f"update record lsn={record['lsn']} chains from "
                    f"{old_fp}, which is not resident — WAL is damaged"
                )
            batch_report = handle.apply_updates(
                EditBatch.coerce(record["edits"])
            )
            if batch_report.fingerprint != new_fp:
                raise RecoveryError(
                    f"replaying update lsn={record['lsn']} produced "
                    f"fingerprint {batch_report.fingerprint}, the log "
                    f"says {new_fp} — non-deterministic replay"
                )
            registry.pop(old_fp)
            registry.restore(new_fp, handle)
            key = record.get("idempotency_key")
            response = record.get("response")
            if key and isinstance(response, dict):
                idempotency[str(key)] = response
            report.updates_replayed += 1
        elif op in ("delete", "evict"):
            handle = registry.pop(record["fingerprint"])
            if handle is not None:
                session.discard(handle)
            if op == "delete":
                report.deletes_replayed += 1
            else:
                report.evictions_replayed += 1

    report.final_lsn = wal.lsn
    report.idempotency_keys = len(idempotency)
    report.fingerprints = registry.fingerprints()
    report.wall_seconds = time.perf_counter() - t0
    if tracer.enabled:
        tracer.add_span(
            "wal:replay",
            t0,
            time.perf_counter(),
            records=report.records_replayed,
            graphs=report.graphs_restored,
        )
        tracer.count("wal.replay.records", report.records_replayed)
        tracer.count("wal.replay.graphs", len(report.fingerprints))
    return report, idempotency
