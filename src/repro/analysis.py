"""Dataset analysis: similarity distributions and pruning effectiveness.

The evaluation's behaviour is driven by two dataset properties — the
distribution of structural similarity over edges, and how much of the
workload the §3.2.2 predicate pruning resolves for free.  This module
measures both, powering the dataset-profiling example and giving
downstream users the tools to predict parameter ranges before clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph.csr import CSRGraph
from .intersect.bulk import common_neighbor_counts
from .similarity.bulk import min_cn_arcs, predicate_prune_arcs
from .types import NSIM, SIM, UNKNOWN, ScanParams
from .core.fastscan import fast_structural_clustering
from .types import CORE

__all__ = [
    "edge_similarities",
    "similarity_histogram",
    "PruningProfile",
    "pruning_profile",
    "core_ratio_curve",
]


def edge_similarities(graph: CSRGraph) -> np.ndarray:
    """Exact σ(u, v) for every undirected edge (Definition 2.2).

    Returns a float array aligned with ``graph.edge_list()``.
    """
    edges = graph.edge_list()
    if edges.size == 0:
        return np.zeros(0)
    overlap = common_neighbor_counts(graph, edges) + 2
    deg = graph.degrees
    denom = np.sqrt(
        (deg[edges[:, 0]] + 1).astype(np.float64)
        * (deg[edges[:, 1]] + 1).astype(np.float64)
    )
    return overlap / denom


def similarity_histogram(
    graph: CSRGraph, bins: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of edge similarities over [0, 1]."""
    sims = edge_similarities(graph)
    return np.histogram(sims, bins=bins, range=(0.0, 1.0))


@dataclass(frozen=True)
class PruningProfile:
    """Predicate-pruning effectiveness at one (ε, µ)."""

    eps: float
    mu: int
    num_arcs: int
    pruned_sim: int
    pruned_nsim: int
    unknown: int
    roles_settled: int
    num_vertices: int

    @property
    def arcs_resolved_fraction(self) -> float:
        if self.num_arcs == 0:
            return 1.0
        return (self.pruned_sim + self.pruned_nsim) / self.num_arcs

    @property
    def roles_settled_fraction(self) -> float:
        return self.roles_settled / self.num_vertices if self.num_vertices else 1.0


def pruning_profile(
    graph: CSRGraph, params: ScanParams
) -> PruningProfile:
    """How much the similarity-predicate pruning phase resolves for free."""
    mcn = min_cn_arcs(graph, params.eps_fraction)
    state = predicate_prune_arcs(graph, mcn)
    n = graph.num_vertices
    src = graph.arc_source()
    sd0 = np.bincount(src[state == SIM], minlength=n)
    nsim0 = np.bincount(src[state == NSIM], minlength=n)
    ed0 = graph.degrees - nsim0
    settled = int(np.count_nonzero((sd0 >= params.mu) | (ed0 < params.mu)))
    return PruningProfile(
        eps=params.eps,
        mu=params.mu,
        num_arcs=graph.num_arcs,
        pruned_sim=int(np.count_nonzero(state == SIM)),
        pruned_nsim=int(np.count_nonzero(state == NSIM)),
        unknown=int(np.count_nonzero(state == UNKNOWN)),
        roles_settled=settled,
        num_vertices=n,
    )


def core_ratio_curve(
    graph: CSRGraph, eps_values: tuple[float, ...], mu: int
) -> dict[float, float]:
    """Fraction of core vertices at each ε (exact, via the fast mode)."""
    out: dict[float, float] = {}
    n = graph.num_vertices
    for eps in eps_values:
        result = fast_structural_clustering(graph, ScanParams(eps, mu))
        out[eps] = (
            float(np.count_nonzero(result.roles == CORE)) / n if n else 0.0
        )
    return out
