"""Clustering-quality metrics for the example applications.

The paper motivates SCAN with applications (advertising, epidemiology)
that need *exact* clusters plus hub/outlier classification; the community
-detection example quantifies recovery of planted communities with the
standard external indices implemented here (no sklearn available in the
offline environment).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np

__all__ = [
    "contingency",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "primary_labels",
]


def primary_labels(result, noise_label: int = -1) -> np.ndarray:
    """Flatten a :class:`~repro.core.result.ClusteringResult` to one label
    per vertex: cores get their cluster id, non-core members get the
    smallest cluster they belong to, unclustered vertices get
    ``noise_label``."""
    labels = np.full(result.num_vertices, noise_label, dtype=np.int64)
    member = result.membership()
    for v, clusters in enumerate(member):
        if clusters:
            labels[v] = min(clusters)
    return labels


def contingency(
    labels_a: Sequence[int], labels_b: Sequence[int]
) -> dict[tuple[int, int], int]:
    """Sparse contingency table between two label assignments."""
    if len(labels_a) != len(labels_b):
        raise ValueError("label arrays must have equal length")
    table: Counter[tuple[int, int]] = Counter()
    for a, b in zip(labels_a, labels_b):
        table[(int(a), int(b))] += 1
    return dict(table)


_NOISE_POLICIES = ("singletons", "exclude")


def _resolve_noise(
    labels_a: Sequence[int],
    labels_b: Sequence[int],
    noise,
    noise_policy: str,
) -> tuple[list[int], list[int]]:
    """Fold SCAN's hub/outlier sentinel ids into comparable labelings.

    SCAN leaves unclustered vertices with sentinel labels (e.g. ``-1``
    from :func:`primary_labels`); feeding those to an external index as
    if they formed one big "noise cluster" inflates agreement.  Callers
    pass the sentinel id(s) via ``noise`` and choose how to treat them:

    ``singletons``
        every noise vertex becomes its own fresh one-element cluster
        (the scikit-learn-style treatment — disagreement on noise
        counts against the score);
    ``exclude``
        positions where *either* labeling is noise are dropped, scoring
        recovery on the mutually clustered vertices only.
    """
    if len(labels_a) != len(labels_b):
        raise ValueError("label arrays must have equal length")
    if noise_policy not in _NOISE_POLICIES:
        raise ValueError(
            f"noise_policy must be one of {_NOISE_POLICIES}, "
            f"got {noise_policy!r}"
        )
    if isinstance(noise, (int, np.integer)):
        sentinels = {int(noise)}
    else:
        sentinels = {int(x) for x in noise}
    a = [int(x) for x in labels_a]
    b = [int(x) for x in labels_b]
    if noise_policy == "exclude":
        kept = [
            (x, y)
            for x, y in zip(a, b)
            if x not in sentinels and y not in sentinels
        ]
        return [x for x, _ in kept], [y for _, y in kept]
    fresh = max(a + b, default=0) + 1
    for i, x in enumerate(a):
        if x in sentinels:
            a[i] = fresh
            fresh += 1
    for i, y in enumerate(b):
        if y in sentinels:
            b[i] = fresh
            fresh += 1
    return a, b


def _comb2(x: int) -> int:
    return x * (x - 1) // 2


def adjusted_rand_index(
    labels_a: Sequence[int],
    labels_b: Sequence[int],
    *,
    noise=None,
    noise_policy: str = "singletons",
) -> float:
    """Adjusted Rand index in [-1, 1]; 1 means identical partitions.

    ``noise`` (an int or a collection of ints) marks sentinel labels for
    unclustered vertices — SCAN hubs/outliers — handled per
    ``noise_policy`` (see :func:`_resolve_noise`) instead of being
    counted as one shared cluster.

    >>> adjusted_rand_index([0, 0, 1, 1], [5, 5, 9, 9])
    1.0
    >>> adjusted_rand_index([0, 0, 1, 1], [0, 0, 1, -1], noise=-1,
    ...                     noise_policy="exclude")
    1.0
    """
    if noise is not None:
        labels_a, labels_b = _resolve_noise(
            labels_a, labels_b, noise, noise_policy
        )
    n = len(labels_a)
    if n == 0:
        return 1.0
    table = contingency(labels_a, labels_b)
    a_sizes: Counter[int] = Counter()
    b_sizes: Counter[int] = Counter()
    for (a, b), cnt in table.items():
        a_sizes[a] += cnt
        b_sizes[b] += cnt
    sum_comb = sum(_comb2(cnt) for cnt in table.values())
    sum_a = sum(_comb2(cnt) for cnt in a_sizes.values())
    sum_b = sum(_comb2(cnt) for cnt in b_sizes.values())
    total = _comb2(n)
    expected = sum_a * sum_b / total if total else 0.0
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:
        return 1.0
    return (sum_comb - expected) / (max_index - expected)


def normalized_mutual_information(
    labels_a: Sequence[int],
    labels_b: Sequence[int],
    *,
    noise=None,
    noise_policy: str = "singletons",
) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1].

    ``noise`` / ``noise_policy`` treat sentinel-labelled (unclustered)
    vertices as in :func:`adjusted_rand_index`.
    """
    if noise is not None:
        labels_a, labels_b = _resolve_noise(
            labels_a, labels_b, noise, noise_policy
        )
    n = len(labels_a)
    if n == 0:
        return 1.0
    table = contingency(labels_a, labels_b)
    a_sizes: Counter[int] = Counter()
    b_sizes: Counter[int] = Counter()
    for (a, b), cnt in table.items():
        a_sizes[a] += cnt
        b_sizes[b] += cnt
    mi = 0.0
    for (a, b), cnt in table.items():
        p_ab = cnt / n
        p_a = a_sizes[a] / n
        p_b = b_sizes[b] / n
        mi += p_ab * math.log(p_ab / (p_a * p_b))
    h_a = -sum((s / n) * math.log(s / n) for s in a_sizes.values())
    h_b = -sum((s / n) * math.log(s / n) for s in b_sizes.values())
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    denom = (h_a + h_b) / 2.0
    return mi / denom if denom else 0.0
