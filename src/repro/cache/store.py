"""The cross-run similarity store: exact overlaps memoized per graph.

What is cached
--------------
For an arc ``(u, v)`` the *closed-neighborhood overlap*
``|N[u] ∩ N[v]| = |N(u) ∩ N(v)| + 2`` is an integer property of the
graph alone.  Every (ε, µ) similarity decision derives from it exactly:
with ``ε = p/q``, the arc is similar iff

    ``overlap² · q²  >=  p² · (d(u)+1) · (d(v)+1)``

which is precisely the integer comparison :mod:`repro.similarity.threshold`
performs (``overlap >= min_cn``).  Caching the overlap therefore answers
*every* parameter setting bit-identically — no floats, no drift.

Coverage, not completeness
--------------------------
Pruning-based runs (pSCAN/ppSCAN) only resolve the arcs their bounds
could not decide, so an entry carries a per-arc **coverage bitmap**
alongside the overlap array.  Partial coverage still pays: a later run
(or a later grid point in a sweep) folds every covered arc without
intersecting and computes only the remainder.  Trivially-pruned arcs
(threshold ≤ 2, or decided by the degree bound) are *not* recorded —
their exact overlap was never computed — mirroring the uncounted
convention of the scalar algorithms.

Keying and the disk layer
-------------------------
Entries are keyed by :func:`graph_fingerprint`, a content hash of the
CSR arrays, so any structural edit (see :mod:`repro.graph.dynamic`)
keys to a fresh entry and stale state can never leak across graphs.
With a ``cache_dir`` the store persists entries as an ``.npz``
(overlap + packed coverage bits) next to a JSON sidecar carrying the
version stamp and fingerprint; any mismatch or corruption on load is a
*clean miss* — the entry is rebuilt, never trusted.

Process-backend safety
----------------------
Entries record the owning pid at construction; :meth:`StoreEntry.record`
is a no-op in any other process.  Forked workers (including ones a
chaos plan later kills or quarantines) therefore can never commit
overlaps into the parent's store — results flow back only through the
supervised phase-barrier commit, same as arc states.

Thread safety
-------------
The clustering service resolves queries for several graphs at once on a
thread pool, all sharing one store.  Entry creation
(:meth:`SimilarityStore.entry_for`), overlap commits
(:meth:`StoreEntry.record` / :meth:`record_one`) and :meth:`spill` are
therefore lock-guarded: concurrent readers resolving overlapping arc
sets commit the same exact values at most once each and can never
observe a torn overlap/coverage pair.  The guarded sections are memo
writes, not the similarity computations themselves, so contention stays
off the hot path.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..obs.tracer import current_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.csr import CSRGraph

__all__ = [
    "STORE_VERSION",
    "CacheStats",
    "SimilarityStore",
    "StoreEntry",
    "graph_fingerprint",
]

#: On-disk format version; bumped whenever the npz/sidecar layout changes.
#: A persisted entry with any other version is rejected as a clean miss.
STORE_VERSION = 1


def graph_fingerprint(graph: "CSRGraph") -> str:
    """Content hash of a CSR graph (hex, 160 bits).

    Hashes the vertex count plus the raw bytes of the ``offsets`` and
    ``dst`` arrays, so two graphs share a fingerprint iff their CSR
    representations are byte-identical.  Any mutation routed through
    :class:`~repro.graph.dynamic.DynamicGraph` yields a new fingerprint.
    """
    h = hashlib.blake2b(digest_size=20)
    h.update(np.int64(graph.num_vertices).tobytes())
    h.update(np.ascontiguousarray(graph.offsets).tobytes())
    h.update(np.ascontiguousarray(graph.dst).tobytes())
    return h.hexdigest()


def _reverse_arcs(graph: "CSRGraph") -> np.ndarray:
    # Same construction as repro.core.context.reverse_arc_index, duplicated
    # locally so the cache layer stays import-cycle-free below core/.
    n = np.int64(graph.num_vertices)
    src = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.degrees
    )
    dst = graph.dst.astype(np.int64)
    return np.searchsorted(src * n + dst, dst * n + src)


class StoreEntry:
    """Per-graph overlap memo: one int64 overlap + one coverage bit per arc.

    ``hits`` / ``misses`` are plain ints charged by the consumers
    (:class:`~repro.similarity.engine.SimilarityEngine`, GS*-Index
    construction); the api facade diffs them around a run to emit the
    ``cache.hit`` / ``cache.miss`` counters, so the hot paths never touch
    the tracer.
    """

    __slots__ = (
        "graph",
        "fingerprint",
        "num_arcs",
        "overlap",
        "coverage",
        "hits",
        "misses",
        "dirty",
        "_owner_pid",
        "_rev",
        "_lock",
    )

    def __init__(self, graph: "CSRGraph", fingerprint: str) -> None:
        self.graph = graph
        self.fingerprint = fingerprint
        self.num_arcs = graph.num_arcs
        self.overlap = np.zeros(self.num_arcs, dtype=np.int64)
        self.coverage = np.zeros(self.num_arcs, dtype=bool)
        self.hits = 0
        self.misses = 0
        self.dirty = False
        self._owner_pid = os.getpid()
        self._rev: np.ndarray | None = None
        self._lock = threading.Lock()

    # -- views ----------------------------------------------------------

    @property
    def covered(self) -> int:
        """Number of arcs with a recorded exact overlap."""
        return int(np.count_nonzero(self.coverage))

    @property
    def coverage_fraction(self) -> float:
        return self.covered / self.num_arcs if self.num_arcs else 0.0

    def _reverse(self) -> np.ndarray:
        rev = self._rev
        if rev is None:
            # Built outside the lock (it is pure); a racing duplicate
            # build computes the identical array, and publishing either
            # one via a single attribute store is safe.
            rev = _reverse_arcs(self.graph)
            self._rev = rev
        return rev

    # -- writes ---------------------------------------------------------

    def record(self, arcs: np.ndarray, overlaps: np.ndarray) -> None:
        """Commit exact closed overlaps for ``arcs`` (mirrored onto the
        reverse arcs).  No-op outside the owning process."""
        if len(arcs) == 0 or os.getpid() != self._owner_pid:
            return
        arcs = np.asarray(arcs, dtype=np.int64)
        rev = self._reverse()[arcs]
        with self._lock:
            self.overlap[arcs] = overlaps
            self.overlap[rev] = overlaps
            self.coverage[arcs] = True
            self.coverage[rev] = True
            self.dirty = True

    def record_one(self, arc: int, overlap: int) -> None:
        """Scalar-path :meth:`record` (one arc + its mirror)."""
        if os.getpid() != self._owner_pid:
            return
        rev = int(self._reverse()[arc])
        with self._lock:
            self.overlap[arc] = overlap
            self.overlap[rev] = overlap
            self.coverage[arc] = True
            self.coverage[rev] = True
            self.dirty = True


@dataclass(frozen=True)
class CacheStats:
    """Aggregate store counters (summed over entries)."""

    hits: int = 0
    misses: int = 0
    spills: int = 0
    rejects: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def reuse_fraction(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0


class SimilarityStore:
    """In-memory (and optionally on-disk) map fingerprint → :class:`StoreEntry`.

    One store instance may serve many graphs and many runs; pass it via
    ``ExecutionOptions(cache=...)`` or let the CLI build one from
    ``--cache-dir``.  Thread-compatibility matches the rest of the repo:
    one store per driving process.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._entries: dict[str, StoreEntry] = {}
        self._sketches: dict[tuple[str, str], object] = {}
        self.spills = 0
        self.rejects = 0
        self._lock = threading.Lock()

    def attach_dir(self, cache_dir: str | os.PathLike | None) -> bool:
        """Late-bind a disk layer onto a memory-only store.

        The service does this when it is given a WAL directory but no
        ``--cache-dir``: overlap state spills under the WAL so recovery
        warms from disk.  A store that already has a ``cache_dir`` keeps
        it (returns ``False``) — an explicit cache location wins.
        """
        if self.cache_dir is not None or cache_dir is None:
            return False
        self.cache_dir = Path(cache_dir)
        return True

    # -- entry access ---------------------------------------------------

    def entry_for(self, graph: "CSRGraph") -> StoreEntry:
        """The (possibly disk-warmed) entry for ``graph``, creating a cold
        one on first sight of its fingerprint.

        Creation is serialized so two threads racing on the same
        fingerprint share one entry — a private duplicate would fork the
        memo and lose whichever commits landed in the loser.
        """
        fingerprint = graph_fingerprint(graph)
        entry = self._entries.get(fingerprint)
        if entry is None:
            with self._lock:
                entry = self._entries.get(fingerprint)
                if entry is None:
                    entry = self._load(graph, fingerprint)
                    if entry is None:
                        entry = StoreEntry(graph, fingerprint)
                    self._entries[fingerprint] = entry
        return entry

    def entries(self) -> list[StoreEntry]:
        return list(self._entries.values())

    def peek(self, fingerprint: str) -> StoreEntry | None:
        """The in-memory entry for ``fingerprint``, or ``None``.

        Never creates or disk-loads anything — the streaming engine uses
        it to read a superseded graph version's coverage while migrating
        overlaps forward across a batch of edits.
        """
        return self._entries.get(fingerprint)

    def discard(self, fingerprint: str) -> bool:
        """Drop the in-memory entry for ``fingerprint`` (if any).

        The disk layer is left untouched: a spilled entry for an old
        graph version stays loadable should that exact graph come back.
        Streaming workloads call this after migrating an entry forward
        so a long edit script cannot accumulate one entry per batch.
        """
        with self._lock:
            return self._entries.pop(fingerprint, None) is not None

    # -- sketch memoization ---------------------------------------------
    #
    # Per-vertex sketches (see repro.sketch) depend only on the CSR and
    # the sketch configuration — not on ε/µ — so one build serves every
    # sweep point and resumed run sharing this store.  They are session
    # memoization, not durable state: unlike overlaps they are cheap to
    # rebuild and are never spilled to disk.

    def sketches_for(self, graph: "CSRGraph", params) -> object | None:
        """The memoized sketches for ``(graph, params)``, or ``None``."""
        return self._sketches.get((graph_fingerprint(graph), params.key()))

    def put_sketches(self, graph: "CSRGraph", params, sketches) -> None:
        """Memoize freshly built sketches for ``(graph, params)``."""
        self._sketches[(graph_fingerprint(graph), params.key())] = sketches

    def stats(self) -> CacheStats:
        hits = sum(e.hits for e in self._entries.values())
        misses = sum(e.misses for e in self._entries.values())
        return CacheStats(
            hits=hits, misses=misses, spills=self.spills, rejects=self.rejects
        )

    # -- disk layer -----------------------------------------------------

    def _paths(self, fingerprint: str) -> tuple[Path, Path]:
        assert self.cache_dir is not None
        stem = f"simstore-{fingerprint[:20]}"
        return (
            self.cache_dir / f"{stem}.npz",
            self.cache_dir / f"{stem}.json",
        )

    def _reject(self, reason: str) -> None:
        self.rejects += 1
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("cache.reject", 1)
            tracer.count(f"cache.reject.{reason}", 1)

    def _load(self, graph: "CSRGraph", fingerprint: str) -> StoreEntry | None:
        """Load a persisted entry; any validation failure is a clean miss
        (returns ``None``) so a stale or corrupt file can never produce a
        wrong answer."""
        if self.cache_dir is None:
            return None
        npz_path, meta_path = self._paths(fingerprint)
        if not meta_path.exists() and not npz_path.exists():
            return None
        with current_tracer().span("cache:load", path=str(npz_path)):
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                self._reject("sidecar")
                return None
            if meta.get("version") != STORE_VERSION:
                self._reject("version")
                return None
            if meta.get("fingerprint") != fingerprint:
                self._reject("fingerprint")
                return None
            if (
                meta.get("num_vertices") != graph.num_vertices
                or meta.get("num_arcs") != graph.num_arcs
            ):
                self._reject("shape")
                return None
            try:
                with np.load(npz_path) as data:
                    overlap = np.asarray(data["overlap"], dtype=np.int64)
                    packed = np.asarray(data["coverage"], dtype=np.uint8)
            except (
                OSError,
                ValueError,
                KeyError,
                zlib.error,
                EOFError,
                zipfile.BadZipFile,
            ):
                self._reject("payload")
                return None
            if overlap.shape != (graph.num_arcs,):
                self._reject("shape")
                return None
            if packed.size * 8 < graph.num_arcs:
                self._reject("shape")
                return None
            coverage = np.unpackbits(packed, count=graph.num_arcs).astype(bool)
            entry = StoreEntry(graph, fingerprint)
            entry.overlap = overlap
            entry.coverage = coverage
            entry.dirty = False
            return entry

    def spill(self) -> int:
        """Persist every dirty entry to ``cache_dir``; returns how many
        were written.  A no-op without a disk layer.

        Writes are crash-consistent: each file goes through the shared
        temp+fsync+rename helper (:mod:`repro.checkpoint.atomic`), and the
        payload lands before the sidecar that announces it — so a spill
        interrupted at any instant leaves either the previous complete
        state or the new complete state, never a torn entry (a torn or
        orphaned sidecar is rejected as a clean miss by ``_load``).
        """
        if self.cache_dir is None:
            return 0
        from ..checkpoint.atomic import atomic_write_bytes, atomic_write_text

        written = 0
        tracer = current_tracer()
        for fingerprint, entry in list(self._entries.items()):
            if not entry.dirty:
                continue
            npz_path, meta_path = self._paths(fingerprint)
            with tracer.span("cache:spill", fingerprint=fingerprint):
                with entry._lock:
                    # Snapshot under the entry lock so a concurrent
                    # record() can't tear the overlap/coverage pair
                    # mid-serialization.
                    overlap = entry.overlap.copy()
                    packed = np.packbits(entry.coverage)
                buf = io.BytesIO()
                np.savez_compressed(buf, overlap=overlap, coverage=packed)
                atomic_write_bytes(npz_path, buf.getvalue())
                atomic_write_text(
                    meta_path,
                    json.dumps(
                        {
                            "version": STORE_VERSION,
                            "fingerprint": fingerprint,
                            "num_vertices": entry.graph.num_vertices,
                            "num_arcs": entry.num_arcs,
                            "covered": entry.covered,
                        },
                        indent=1,
                        sort_keys=True,
                    )
                    + "\n",
                )
            entry.dirty = False
            self.spills += 1
            written += 1
            if tracer.enabled:
                tracer.count("cache.spill", 1)
        return written
