"""Cross-run similarity caching (the parameter-sweep amortization layer).

The edge overlap ``|N[u] ∩ N[v]|`` is a property of the graph alone —
every (ε, µ) query derives its similarity predicate from it by exact
integer arithmetic.  :class:`SimilarityStore` memoizes those overlaps
keyed by a content hash of the CSR graph so that repeated and
parametrized clustering runs (the Figure-7 robustness sweeps, warm CLI
invocations, algorithm comparisons) resolve each arc at most once.
"""

from .store import (
    STORE_VERSION,
    CacheStats,
    SimilarityStore,
    StoreEntry,
    graph_fingerprint,
)

__all__ = [
    "STORE_VERSION",
    "CacheStats",
    "SimilarityStore",
    "StoreEntry",
    "graph_fingerprint",
]
