"""Exact structural-similarity threshold arithmetic (Definition 2.2).

Edge ``(u, v)`` is similar iff ``|Γ(u) ∩ Γ(v)| >= ⌈ε·√((d(u)+1)(d(v)+1))⌉``.
Computing the ceiling through floating point invites off-by-one
disagreements exactly at the similarity boundary, which would break the
bit-for-bit agreement between algorithms that the exactness tests demand.
We therefore compute the least integer ``k`` with
``k² · q² >= p² · (d(u)+1)(d(v)+1)`` for ``ε = p/q`` in exact integer
arithmetic.
"""

from __future__ import annotations

from fractions import Fraction
from math import isqrt

__all__ = ["min_cn_threshold", "ThresholdTable"]


def min_cn_threshold(eps: Fraction, deg_u: int, deg_v: int) -> int:
    """Least ``k`` such that a closed-neighborhood overlap of ``k`` is similar.

    Equals ``⌈ε·√((d(u)+1)(d(v)+1))⌉`` whenever that product is not an
    exact integer square times ``ε²``; at exact boundaries it resolves the
    ``>=`` of Definition 2.2 consistently (count == threshold is similar).

    >>> from fractions import Fraction
    >>> min_cn_threshold(Fraction(1, 2), 7, 7)   # ceil(0.5 * 8)
    4
    >>> min_cn_threshold(Fraction(1), 2, 4)      # ceil(sqrt(15))
    4
    """
    p, q = eps.numerator, eps.denominator
    target = p * p * (deg_u + 1) * (deg_v + 1)
    qq = q * q
    k = isqrt(target // qq)
    while k * k * qq < target:
        k += 1
    while k > 0 and (k - 1) * (k - 1) * qq >= target:
        k -= 1
    return k


class ThresholdTable:
    """Memoized ``min_cn`` lookup for one ε over degree pairs.

    Real graphs have far fewer distinct degree pairs than edges, so the
    cache turns the big-int arithmetic into a dict hit on the hot path.
    """

    def __init__(self, eps: Fraction) -> None:
        self._eps = eps
        self._cache: dict[tuple[int, int], int] = {}

    @property
    def eps(self) -> Fraction:
        return self._eps

    def __call__(self, deg_u: int, deg_v: int) -> int:
        if deg_u > deg_v:
            deg_u, deg_v = deg_v, deg_u
        key = (deg_u, deg_v)
        cached = self._cache.get(key)
        if cached is None:
            cached = min_cn_threshold(self._eps, deg_u, deg_v)
            self._cache[key] = cached
        return cached
