"""Whole-graph vectorized threshold and predicate-pruning math.

The ppSCAN pre-processing phase (Algorithm 3's ``PruneSim``) is pure
per-arc arithmetic on degrees, so we evaluate it for all arcs at once with
NumPy — the idiomatic way to express a data-parallel kernel on this
substrate.  The integer fix-up passes keep the thresholds bit-identical to
the scalar :func:`~repro.similarity.threshold.min_cn_threshold`.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..graph.csr import CSRGraph
from ..types import NSIM, SIM, UNKNOWN

__all__ = ["min_cn_arcs", "predicate_prune_arcs"]


def min_cn_arcs(graph: CSRGraph, eps: Fraction) -> np.ndarray:
    """Per-arc similarity thresholds ``min_cn[e(u, v)]`` for the whole graph.

    Exact: after the float seed, two integer fix-up sweeps enforce
    "least k with k²·q² >= p²·(d(u)+1)(d(v)+1)".
    """
    p, q = eps.numerator, eps.denominator
    deg = graph.degrees
    du = deg[graph.arc_source()].astype(np.int64) + 1
    dv = deg[graph.dst].astype(np.int64) + 1
    target = (p * p) * du * dv
    qq = q * q
    k = np.floor(np.sqrt(target.astype(np.float64) / qq)).astype(np.int64)
    np.maximum(k, 0, out=k)
    # Fix-up to the exact integer ceiling (at most a couple of iterations;
    # float64 seeds are within 1 ulp at these magnitudes).
    while True:
        low = k * k * qq < target
        if not low.any():
            break
        k[low] += 1
    while True:
        high = (k > 0) & ((k - 1) * (k - 1) * qq >= target)
        if not high.any():
            break
        k[high] -= 1
    return k


def predicate_prune_arcs(graph: CSRGraph, min_cn: np.ndarray) -> np.ndarray:
    """Similarity-predicate pruning for every arc (§3.2.2), vectorized.

    Returns an int8 state array: SIM where two shared endpoints already
    meet the threshold, NSIM where even full overlap cannot, else UNKNOWN.
    """
    deg = graph.degrees
    du = deg[graph.arc_source()].astype(np.int64)
    dv = deg[graph.dst].astype(np.int64)
    state = np.full(graph.num_arcs, UNKNOWN, dtype=np.int8)
    state[np.minimum(du, dv) + 2 < min_cn] = NSIM
    state[min_cn <= 2] = SIM
    return state
