"""Structural-similarity computation (thresholds, pruning, CompSim)."""

from .threshold import ThresholdTable, min_cn_threshold
from .engine import EXEC_MODES, KERNELS, SimilarityEngine
from .bulk import min_cn_arcs, predicate_prune_arcs

__all__ = [
    "min_cn_threshold",
    "ThresholdTable",
    "SimilarityEngine",
    "KERNELS",
    "EXEC_MODES",
    "min_cn_arcs",
    "predicate_prune_arcs",
]
