"""The structural-similarity engine shared by every SCAN-family algorithm.

Wraps a graph, an ε threshold table and a pluggable intersection kernel,
and exposes the three operations the paper's algorithms need:

* ``predicate_prune(u, v)`` — the zero-intersection similarity-predicate
  pruning of §3.2.2 (returns SIM/NSIM/UNKNOWN from degrees alone);
* ``compsim(u, v)`` — CompSim with intersection-count bounds and early
  termination (Definition 3.9);
* ``compsim_exhaustive(u, v)`` — the full merge-count CompSim that SCAN and
  SCAN-XP perform (Theorem 3.4's cost accounting).

All kernels agree bit-for-bit on the similarity decision; they differ only
in the work they report to the :class:`~repro.intersect.OpCounter`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..obs.tracer import current_tracer
from ..intersect import (
    BatchIntersector,
    OpCounter,
    merge_compsim,
    merge_count,
    pivot_compsim,
    pivot_vectorized_compsim,
)
from ..types import NSIM, SIM, UNKNOWN, ScanParams
from .threshold import ThresholdTable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..cache import SimilarityStore, StoreEntry
    from ..sketch import SketchParams, VertexSketches

__all__ = ["SimilarityEngine", "KERNELS", "EXEC_MODES"]

#: Execution modes for the arc-resolution hot path: ``scalar`` calls one
#: early-terminating kernel per arc, ``batched`` collects arcs per task and
#: resolves them through :meth:`SimilarityEngine.resolve_arcs`.
EXEC_MODES = ("scalar", "batched")

#: Registered early-terminating CompSim kernels, by name.
KERNELS: dict[str, str] = {
    "merge": "scalar merge with min-max bounds (pSCAN / ppSCAN-NO)",
    "pivot": "scalar pivot loop (Algorithm 6 fallback path)",
    "vectorized": "pivot-based vectorized intersection (Algorithm 6)",
    "sketch": "sketch pre-pass (Bloom + KMV) with exact boundary fallback",
}


class SimilarityEngine:
    """Similarity predicate evaluation for one ``(graph, ε)`` pair."""

    def __init__(
        self,
        graph: CSRGraph,
        params: ScanParams,
        kernel: str = "vectorized",
        lanes: int = 16,
        counter: OpCounter | None = None,
        store: "SimilarityStore | None" = None,
        sketch: "SketchParams | None" = None,
    ) -> None:
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; known: {sorted(KERNELS)}")
        self.graph = graph
        self.params = params
        self.kernel_name = kernel
        self.lanes = lanes
        self.counter = counter if counter is not None else OpCounter()
        self.threshold = ThresholdTable(params.eps_fraction)
        if kernel == "sketch" and sketch is None:
            from ..sketch import SketchParams

            sketch = SketchParams()
        #: Sketch gating configuration; ``None`` disables the sketch
        #: pre-pass entirely (the exact default).
        self.sketch = sketch
        self._sketches: "VertexSketches | None" = None
        self._sketch_prefolded = False
        self._compsim_kernel = self._bind_kernel(kernel, lanes)
        # Plain-int degree list: hot-path lookups avoid ndarray scalar boxing.
        self._deg: list[int] = graph.degrees.tolist()
        # Lazily-built batched-resolution state (scratch arrays are O(n),
        # so they are only materialized when resolve_arcs is first used).
        self._batch: BatchIntersector | None = None
        self._arc_mcn: np.ndarray | None = None
        self._adj: list[list[int]] | None = None
        self.store = store
        self._entry: "StoreEntry | None" = (
            store.entry_for(graph) if store is not None else None
        )

    def _bind_kernel(
        self, kernel: str, lanes: int
    ) -> Callable[[Sequence[int], Sequence[int], int, OpCounter], bool]:
        if kernel == "merge":
            return merge_compsim
        if kernel == "pivot":
            return pivot_compsim
        # "vectorized" and "sketch" share the exact fallback kernel: the
        # sketch pre-pass gates *which* arcs reach it, not how they are
        # resolved.
        return lambda a, b, min_cn, counter: pivot_vectorized_compsim(
            a, b, min_cn, lanes=lanes, counter=counter
        )

    # -- threshold and pruning -------------------------------------------

    def min_cn(self, u: int, v: int) -> int:
        """Similarity threshold on the closed-neighborhood overlap of (u,v)."""
        return self.threshold(self._deg[u], self._deg[v])

    def predicate_prune(self, u: int, v: int) -> int:
        """Similarity-predicate pruning from degrees alone (§3.2.2).

        Returns ``SIM`` / ``NSIM`` when the initial intersection-count
        bounds (``cn = 2``, ``min(d(u), d(v)) + 2``) already decide the
        predicate, else ``UNKNOWN``.
        """
        c = self.min_cn(u, v)
        if 2 >= c:
            return SIM
        if self._deg[u] + 2 < c or self._deg[v] + 2 < c:
            return NSIM
        return UNKNOWN

    # -- CompSim variants ----------------------------------------------------

    def kernel(self, a: Sequence[int], b: Sequence[int], min_cn: int) -> bool:
        """Raw kernel call on pre-fetched neighbor lists (the ppSCAN hot
        path, which caches adjacency lists and per-arc thresholds)."""
        return self._compsim_kernel(a, b, min_cn, self.counter)

    def compsim(self, u: int, v: int) -> bool:
        """Early-terminating CompSim (Definition 3.1 + 3.9 bounds)."""
        return self._compsim_kernel(
            self.graph.neighbors(u),
            self.graph.neighbors(v),
            self.min_cn(u, v),
            self.counter,
        )

    def compsim_state(self, u: int, v: int) -> int:
        """CompSim returning a SIM/NSIM state instead of a bool."""
        return SIM if self.compsim(u, v) else NSIM

    def compsim_exhaustive(self, u: int, v: int) -> bool:
        """Full-count CompSim — what SCAN / SCAN-XP run (no pruning)."""
        common = merge_count(
            self.graph.neighbors(u), self.graph.neighbors(v), self.counter
        )
        return common + 2 >= self.min_cn(u, v)

    # -- batched resolution -------------------------------------------------

    def arc_thresholds(self) -> np.ndarray:
        """Per-arc ``min_cn`` thresholds for the whole graph (cached)."""
        if self._arc_mcn is None:
            from .bulk import min_cn_arcs

            self._arc_mcn = min_cn_arcs(self.graph, self.params.eps_fraction)
        return self._arc_mcn

    def batch_intersector(self) -> BatchIntersector:
        """The engine's reusable mark-and-count scratch (cached)."""
        if self._batch is None:
            self._batch = BatchIntersector(self.graph)
        return self._batch

    def _adj_lists(self) -> list[list[int]]:
        if self._adj is None:
            off = self.graph.offsets.tolist()
            dst = self.graph.dst.tolist()
            self._adj = [
                dst[off[u] : off[u + 1]]
                for u in range(self.graph.num_vertices)
            ]
        return self._adj

    #: Substrate calibration for the dispatcher's work model: one step of
    #: an interpreted scalar kernel costs roughly this many NumPy
    #: vector-block steps (measured on the bundled standins; the exact
    #: value only shifts the hub-degree cutover point).
    SCALAR_STEP_PENALTY = 24

    def route_scalar(
        self, du: np.ndarray, dv: np.ndarray, mcn: np.ndarray
    ) -> np.ndarray:
        """The adaptive dispatcher's work model: which arcs should keep the
        early-terminating scalar kernel?

        The scalar kernel wins when an early-exit bound is *close*: it
        needs at most ``min_cn - 2`` matches to return SIM and tolerates at
        most ``min(d(u), d(v)) + 2 - min_cn`` mismatches on the smaller
        side before returning NSIM, so the distance to the nearest bound
        caps its comparisons.  The bulk path always touches
        ``d(u) + d(v)`` elements but retires ``lanes`` per vector block
        and pays no per-step interpreter overhead, hence the
        ``SCALAR_STEP_PENALTY`` weighting: only high-degree arcs whose
        early-exit slack is tiny (hub pairs a few matches away from a
        bound) are worth an interpreted early-terminating walk.  Both
        estimates are integer and deterministic, so the routing — and
        therefore the work accounting — is reproducible.
        """
        slack = np.minimum(mcn - 2, np.minimum(du, dv) + 2 - mcn)
        est_scalar = (4 + 2 * slack) * self.SCALAR_STEP_PENALTY
        est_bulk = 2 + (du + dv + self.lanes - 1) // self.lanes
        return est_scalar <= est_bulk

    # -- similarity store -----------------------------------------------

    @property
    def store_entry(self) -> "StoreEntry | None":
        """This graph's entry in the attached similarity store (if any)."""
        return self._entry

    def prefold_cached(
        self, states: np.ndarray, mcn: np.ndarray | None = None
    ) -> int:
        """Decide every store-covered UNKNOWN arc in ``states`` in place.

        The warm-run fast path: one vectorized pass compares the cached
        exact overlaps against this ε's integer thresholds
        (``overlap >= min_cn``), so a fully-covered store resolves the
        whole similarity phase without a single intersection.  Returns
        the number of arcs folded (each charged as a store hit).
        """
        entry = self._entry
        if entry is None:
            return 0
        tracer = current_tracer()
        t0 = time.perf_counter() if tracer.enabled else 0.0
        idx = np.flatnonzero(entry.coverage & (states == UNKNOWN))
        if idx.size == 0:
            return 0
        if mcn is None:
            mcn = self.arc_thresholds()
        states[idx] = np.where(entry.overlap[idx] >= mcn[idx], SIM, NSIM)
        entry.hits += int(idx.size)
        if tracer.enabled:
            tracer.add_span(
                "cache:prefold", t0, time.perf_counter(), folded=int(idx.size)
            )
        return int(idx.size)

    # -- sketch gating ---------------------------------------------------

    def sketches(self) -> "VertexSketches":
        """Per-vertex Bloom + KMV sketches (built once, store-memoized).

        With a store attached, sketches are shared through it under the
        graph's CSR fingerprint and the sketch configuration key, so
        sweep points and resumed runs reuse one build.
        """
        if self._sketches is None:
            params = self.sketch
            if params is None:
                raise RuntimeError("engine has no sketch configuration")
            store = self.store
            cached = (
                store.sketches_for(self.graph, params)
                if store is not None
                else None
            )
            if cached is not None:
                self._sketches = cached
                return cached
            from ..sketch import build_sketches

            tracer = current_tracer()
            t0 = time.perf_counter() if tracer.enabled else 0.0
            built = build_sketches(self.graph, params)
            if tracer.enabled:
                tracer.add_span(
                    "sketch:build",
                    t0,
                    time.perf_counter(),
                    vertices=int(built.num_vertices),
                    bits=int(params.bits),
                    k=int(params.k),
                    bytes=int(built.nbytes()),
                )
                tracer.count("sketch.built", 1)
            if store is not None:
                store.put_sketches(self.graph, params, built)
            self._sketches = built
        return self._sketches

    def sketch_classify(
        self, arcs: np.ndarray, mcn: np.ndarray
    ) -> np.ndarray:
        """SIM/NSIM/UNKNOWN per arc from sketches; UNKNOWN = fall back."""
        from ..sketch import classify_arcs

        tracer = current_tracer()
        t0 = time.perf_counter() if tracer.enabled else 0.0
        states = classify_arcs(
            self.sketches(),
            self.graph,
            arcs,
            mcn,
            src=self.batch_intersector().arc_src,
        )
        if tracer.enabled:
            definite = int(np.count_nonzero(states != UNKNOWN))
            tracer.add_span(
                "sketch:estimate",
                t0,
                time.perf_counter(),
                arcs=int(np.asarray(arcs).size),
                definite=definite,
            )
            tracer.count("sketch.definite", definite)
            tracer.count(
                "sketch.fallback", int(np.asarray(arcs).size) - definite
            )
        return states

    def sketch_prefold(
        self, states: np.ndarray, mcn: np.ndarray | None = None
    ) -> int:
        """Decide every sketch-decidable UNKNOWN arc in ``states`` in place.

        The whole-graph analogue of :meth:`prefold_cached` for the sketch
        backend: one vectorized pass classifies all still-unknown arcs and
        folds the definite ones, leaving only the exact-fallback arcs
        UNKNOWN.  Marks the engine as prefolded so :meth:`resolve_arcs`
        skips its per-batch sketch pre-pass (those arcs were already
        classified once).  Returns the number of arcs folded.
        """
        if self.sketch is None:
            return 0
        idx = np.flatnonzero(states == UNKNOWN)
        self._sketch_prefolded = True
        if idx.size == 0:
            return 0
        if mcn is None:
            mcn = self.arc_thresholds()
        decided = self.sketch_classify(idx, mcn[idx])
        hit = decided != UNKNOWN
        states[idx[hit]] = decided[hit]
        return int(np.count_nonzero(hit))

    def resolve_arc_cached(
        self, arc: int, a: Sequence[int], b: Sequence[int], min_cn: int
    ) -> int:
        """SIM/NSIM for one arc through the store (the scalar hot path).

        A covered arc is decided from its cached overlap by the same
        integer comparison every kernel bottoms out in; a miss runs the
        full merge count (charged to the op counter like any exhaustive
        CompSim) and records the exact overlap for future runs.
        """
        entry = self._entry
        if entry.coverage[arc]:
            entry.hits += 1
            return SIM if entry.overlap[arc] >= min_cn else NSIM
        overlap = merge_count(a, b, self.counter) + 2
        entry.record_one(arc, overlap)
        entry.misses += 1
        return SIM if overlap >= min_cn else NSIM

    def resolve_arcs(
        self,
        arcs: np.ndarray,
        mcn: np.ndarray | None = None,
        adj: Sequence[Sequence[int]] | None = None,
    ) -> np.ndarray:
        """Resolve CompSim for a whole arc batch; returns SIM/NSIM states.

        The batched hot path: trivial predicates are folded from degrees
        alone (uncounted, like the scalar algorithms), the adaptive
        dispatcher routes each remaining arc between the vectorized
        mark-and-count bulk path (grouped by source vertex) and the
        configured early-terminating scalar kernel, and every decision is
        bit-identical to calling the scalar kernel per arc.
        """
        arcs = np.asarray(arcs, dtype=np.int64)
        states = np.empty(arcs.size, dtype=np.int8)
        if arcs.size == 0:
            return states
        batch = self.batch_intersector()
        if mcn is None:
            mcn = self.arc_thresholds()[arcs]
        else:
            mcn = np.asarray(mcn, dtype=np.int64)
        deg = self.graph.degrees
        dst = self.graph.dst[arcs]
        du = deg[batch.arc_src[arcs]]
        dv = deg[dst]
        # Trivial predicates (§3.2.2) — no kernel, no invocation charge.
        trivial_sim = mcn <= 2
        trivial_nsim = np.minimum(du, dv) + 2 < mcn
        states[trivial_sim] = SIM
        states[trivial_nsim] = NSIM
        rest = ~(trivial_sim | trivial_nsim)
        n_trivial = int(arcs.size - np.count_nonzero(rest))
        tracer = current_tracer()
        entry = self._entry
        if self.sketch is not None and not self._sketch_prefolded:
            # Sketch pre-pass: definite arcs are decided here and never
            # reach the exact path (nor the store — sketch decisions are
            # estimates or certificates, not recordable exact overlaps).
            # Store-covered arcs are skipped: a cached exact overlap is
            # both free and exact, so it always wins over a sketch.
            idx = np.flatnonzero(rest)
            if entry is not None and idx.size:
                idx = idx[~entry.coverage[arcs[idx]]]
            if idx.size:
                decided = self.sketch_classify(arcs[idx], mcn[idx])
                hit = decided != UNKNOWN
                if hit.any():
                    states[idx[hit]] = decided[hit]
                    rest[idx[hit]] = False
        if entry is not None:
            # Store-backed resolution: covered arcs are decided from the
            # cached exact overlaps; misses all take the bulk exhaustive
            # path so their overlaps are exact and recordable (an
            # early-terminating kernel learns only the decision, not the
            # count).  Decisions are identical either way.
            if tracer.enabled:
                tracer.count("engine.batches", 1)
                tracer.count("engine.arcs", int(arcs.size))
                tracer.count("engine.arcs_trivial", n_trivial)
                tracer.observe("engine.batch_size", float(arcs.size))
            idx_rest = np.flatnonzero(rest)
            if idx_rest.size:
                covered = entry.coverage[arcs[idx_rest]]
                hit_idx = idx_rest[covered]
                if hit_idx.size:
                    states[hit_idx] = np.where(
                        entry.overlap[arcs[hit_idx]] >= mcn[hit_idx],
                        SIM,
                        NSIM,
                    )
                    entry.hits += int(hit_idx.size)
                miss_idx = idx_rest[~covered]
                if miss_idx.size:
                    overlaps = (
                        batch.arc_counts(
                            arcs[miss_idx],
                            counter=self.counter,
                            lanes=self.lanes,
                        )
                        + 2
                    )
                    entry.record(arcs[miss_idx], overlaps)
                    entry.misses += int(miss_idx.size)
                    states[miss_idx] = np.where(
                        overlaps >= mcn[miss_idx], SIM, NSIM
                    )
                if tracer.enabled:
                    tracer.count("engine.arcs_bulk", int(idx_rest.size - hit_idx.size))
            return states
        scalar_sel = rest & self.route_scalar(du, dv, mcn)
        bulk_sel = rest & ~scalar_sel
        if tracer.enabled:
            tracer.count("engine.batches", 1)
            tracer.count("engine.arcs", int(arcs.size))
            tracer.count("engine.arcs_trivial", n_trivial)
            tracer.count(
                "engine.arcs_scalar", int(np.count_nonzero(scalar_sel))
            )
            tracer.count("engine.arcs_bulk", int(np.count_nonzero(bulk_sel)))
            tracer.observe("engine.batch_size", float(arcs.size))
        if bulk_sel.any():
            idx = np.flatnonzero(bulk_sel)
            counts = batch.arc_counts(
                arcs[idx], counter=self.counter, lanes=self.lanes
            )
            states[idx] = np.where(counts + 2 >= mcn[idx], SIM, NSIM)
        if scalar_sel.any():
            if adj is None:
                adj = self._adj_lists()
            idx = np.flatnonzero(scalar_sel)
            srcs = batch.arc_src[arcs[idx]].tolist()
            dsts = dst[idx].tolist()
            thresholds = mcn[idx].tolist()
            kernel = self._compsim_kernel
            counter = self.counter
            for k, (u, v, c) in enumerate(zip(srcs, dsts, thresholds)):
                states[idx[k]] = SIM if kernel(adj[u], adj[v], c, counter) else NSIM
        return states

    def similarity_value(self, u: int, v: int) -> float:
        """The raw cosine similarity σ(u, v) of Definition 2.2 (for docs
        and examples; the algorithms themselves never materialize it)."""
        common = merge_count(self.graph.neighbors(u), self.graph.neighbors(v))
        du, dv = self._deg[u] + 1, self._deg[v] + 1
        return (common + 2) / (du * dv) ** 0.5
