"""The structural-similarity engine shared by every SCAN-family algorithm.

Wraps a graph, an ε threshold table and a pluggable intersection kernel,
and exposes the three operations the paper's algorithms need:

* ``predicate_prune(u, v)`` — the zero-intersection similarity-predicate
  pruning of §3.2.2 (returns SIM/NSIM/UNKNOWN from degrees alone);
* ``compsim(u, v)`` — CompSim with intersection-count bounds and early
  termination (Definition 3.9);
* ``compsim_exhaustive(u, v)`` — the full merge-count CompSim that SCAN and
  SCAN-XP perform (Theorem 3.4's cost accounting).

All kernels agree bit-for-bit on the similarity decision; they differ only
in the work they report to the :class:`~repro.intersect.OpCounter`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..graph.csr import CSRGraph
from ..intersect import (
    OpCounter,
    merge_compsim,
    merge_count,
    pivot_compsim,
    pivot_vectorized_compsim,
)
from ..types import NSIM, SIM, UNKNOWN, ScanParams
from .threshold import ThresholdTable

__all__ = ["SimilarityEngine", "KERNELS"]

#: Registered early-terminating CompSim kernels, by name.
KERNELS: dict[str, str] = {
    "merge": "scalar merge with min-max bounds (pSCAN / ppSCAN-NO)",
    "pivot": "scalar pivot loop (Algorithm 6 fallback path)",
    "vectorized": "pivot-based vectorized intersection (Algorithm 6)",
}


class SimilarityEngine:
    """Similarity predicate evaluation for one ``(graph, ε)`` pair."""

    def __init__(
        self,
        graph: CSRGraph,
        params: ScanParams,
        kernel: str = "vectorized",
        lanes: int = 16,
        counter: OpCounter | None = None,
    ) -> None:
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; known: {sorted(KERNELS)}")
        self.graph = graph
        self.params = params
        self.kernel_name = kernel
        self.lanes = lanes
        self.counter = counter if counter is not None else OpCounter()
        self.threshold = ThresholdTable(params.eps_fraction)
        self._compsim_kernel = self._bind_kernel(kernel, lanes)
        # Plain-int degree list: hot-path lookups avoid ndarray scalar boxing.
        self._deg: list[int] = graph.degrees.tolist()

    def _bind_kernel(
        self, kernel: str, lanes: int
    ) -> Callable[[Sequence[int], Sequence[int], int, OpCounter], bool]:
        if kernel == "merge":
            return merge_compsim
        if kernel == "pivot":
            return pivot_compsim
        return lambda a, b, min_cn, counter: pivot_vectorized_compsim(
            a, b, min_cn, lanes=lanes, counter=counter
        )

    # -- threshold and pruning -------------------------------------------

    def min_cn(self, u: int, v: int) -> int:
        """Similarity threshold on the closed-neighborhood overlap of (u,v)."""
        return self.threshold(self._deg[u], self._deg[v])

    def predicate_prune(self, u: int, v: int) -> int:
        """Similarity-predicate pruning from degrees alone (§3.2.2).

        Returns ``SIM`` / ``NSIM`` when the initial intersection-count
        bounds (``cn = 2``, ``min(d(u), d(v)) + 2``) already decide the
        predicate, else ``UNKNOWN``.
        """
        c = self.min_cn(u, v)
        if 2 >= c:
            return SIM
        if self._deg[u] + 2 < c or self._deg[v] + 2 < c:
            return NSIM
        return UNKNOWN

    # -- CompSim variants ----------------------------------------------------

    def kernel(self, a: Sequence[int], b: Sequence[int], min_cn: int) -> bool:
        """Raw kernel call on pre-fetched neighbor lists (the ppSCAN hot
        path, which caches adjacency lists and per-arc thresholds)."""
        return self._compsim_kernel(a, b, min_cn, self.counter)

    def compsim(self, u: int, v: int) -> bool:
        """Early-terminating CompSim (Definition 3.1 + 3.9 bounds)."""
        return self._compsim_kernel(
            self.graph.neighbors(u),
            self.graph.neighbors(v),
            self.min_cn(u, v),
            self.counter,
        )

    def compsim_state(self, u: int, v: int) -> int:
        """CompSim returning a SIM/NSIM state instead of a bool."""
        return SIM if self.compsim(u, v) else NSIM

    def compsim_exhaustive(self, u: int, v: int) -> bool:
        """Full-count CompSim — what SCAN / SCAN-XP run (no pruning)."""
        common = merge_count(
            self.graph.neighbors(u), self.graph.neighbors(v), self.counter
        )
        return common + 2 >= self.min_cn(u, v)

    def similarity_value(self, u: int, v: int) -> float:
        """The raw cosine similarity σ(u, v) of Definition 2.2 (for docs
        and examples; the algorithms themselves never materialize it)."""
        common = merge_count(self.graph.neighbors(u), self.graph.neighbors(v))
        du, dv = self._deg[u] + 1, self._deg[v] + 1
        return (common + 2) / (du * dv) ** 0.5
