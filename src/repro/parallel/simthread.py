"""Greedy list-scheduling simulation of a worker thread pool.

ppSCAN submits tasks to a thread pool in vertex order and workers pull
them dynamically; the resulting schedule is classic greedy list scheduling.
Given per-task costs, :func:`greedy_makespan` reproduces that schedule for
any worker count, which is how one instrumented run yields the full
Figure-6 scalability sweep.
"""

from __future__ import annotations

import heapq
from typing import Sequence

__all__ = ["assign_tasks", "greedy_makespan"]


def assign_tasks(
    costs: Sequence[float], workers: int
) -> tuple[list[float], list[int]]:
    """Greedy-schedule ``costs`` (in submission order) onto ``workers``.

    Each task goes to the worker that becomes free earliest — the behaviour
    of a work queue drained by a thread pool.  Returns
    ``(per_worker_load, assignment)`` where ``assignment[i]`` is the worker
    that ran task ``i``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    heap: list[tuple[float, int]] = [(0.0, w) for w in range(workers)]
    loads = [0.0] * workers
    assignment: list[int] = []
    for cost in costs:
        if cost < 0:
            raise ValueError("task costs must be non-negative")
        busy_until, worker = heapq.heappop(heap)
        assignment.append(worker)
        new_time = busy_until + cost
        loads[worker] = new_time
        heapq.heappush(heap, (new_time, worker))
    return loads, assignment


def greedy_makespan(costs: Sequence[float], workers: int) -> float:
    """Makespan of the greedy schedule (max worker finish time).

    >>> greedy_makespan([3.0, 3.0, 4.0], workers=2)
    7.0
    >>> greedy_makespan([4.0, 3.0, 3.0], workers=2)
    6.0
    """
    loads, _ = assign_tasks(costs, workers)
    return max(loads) if loads else 0.0
