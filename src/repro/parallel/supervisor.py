"""Supervised, fault-tolerant execution of one phase's task list.

The :class:`Supervisor` replaces ``Pool.starmap`` for the process
backend when fault tolerance is requested.  It forks one worker per
lane, feeds ``(task, attempt)`` pairs through a shared queue, and runs
an event loop over the workers' message stream:

* ``start``/``done``/``err`` messages drive task bookkeeping;
* a per-worker heartbeat thread lets the supervisor notice a frozen
  process (SIGSTOP, C-extension deadlock) even mid-task;
* a per-task deadline — ``policy.task_timeout`` scaled by the task's
  modelled cost share — catches hung tasks whose heartbeats still beat;
* dead or hung workers are killed and respawned (bounded by
  ``policy.max_respawns``) and their in-flight task is re-queued with
  exponential backoff under a bounded retry budget;
* a task whose attempts kill ``policy.poison_threshold`` workers in a
  row is *quarantined*: the phase aborts with a structured
  :class:`QuarantineReport` instead of grinding the pool down;
* when every worker is gone and the respawn budget is exhausted, the
  supervisor degrades gracefully: the remaining tasks run serially in
  the parent (fault injection is worker-scoped, so this always makes
  progress);
* near the phase barrier, still-running stragglers are speculatively
  re-dispatched to idle workers; the first completion wins.

Correctness is unaffected by any of this: task bodies buffer their
writes against the forked copy-on-write snapshot of the parent state,
the parent commits once per task at the phase barrier in task order,
and duplicate completions are dropped — a re-executed task merely
recomputes the same buffered writes (the paper's Theorems 4.1–4.5 hold
under any interleaving, including re-execution).

Every recovery action is appended to :attr:`Supervisor.events` and, when
a tracer is ambient, mirrored as ``supervisor.*`` counters and
``recovery:*`` spans so exported traces show exactly what happened.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from multiprocessing import connection
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Sequence

from ..metrics.records import TaskCost
from ..obs.progress import current_progress
from ..obs.tracer import current_tracer
from .chaos import FaultPlan

__all__ = [
    "FaultTolerancePolicy",
    "RecoveryEvent",
    "TaskFailure",
    "QuarantineReport",
    "ExecutionFaultError",
    "RetryBudgetExhaustedError",
    "PoisonTaskError",
    "ResumableAbort",
    "Supervisor",
]

TaskFn = Callable[[int, int], tuple[Any, TaskCost]]
CommitFn = Callable[[Any], None]


# ---------------------------------------------------------------------------
# Policy and structured reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultTolerancePolicy:
    """Tunables of the supervised execution loop.

    ``task_timeout`` is the *base* deadline in seconds for a task of
    average modelled cost; an individual task's deadline is scaled by
    its cost share (``weight / mean weight``), so a huge task is not
    misdiagnosed as hung.  ``None`` disables deadlines.
    """

    max_retries: int = 3
    task_timeout: float | None = None
    poison_threshold: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Multiplicative jitter fraction on each backoff delay (0 disables).
    #: Jitter is drawn deterministically from ``jitter_seed`` keyed by
    #: (task, attempt), so a seeded chaos run retries on an identical
    #: schedule every time — delays never influence the clustering, only
    #: when retries land.
    backoff_jitter: float = 0.0
    jitter_seed: int = 0
    #: Cap on the *total* backoff wall-clock one task may accumulate; a
    #: retry whose delay would exceed it fails fatally (the existing
    #: retry budget, expressed in seconds instead of attempts).
    max_retry_wall: float | None = None
    heartbeat_interval: float = 0.2
    heartbeat_timeout: float | None = None
    max_respawns: int | None = None
    min_workers: int = 1
    speculative: bool = True
    straggler_after: float = 0.5

    def respawn_budget(self, workers: int) -> int:
        if self.max_respawns is not None:
            return self.max_respawns
        return 4 * workers

    def backoff(self, attempt: int, *, task: int = 0) -> float:
        """Delay before dispatching ``attempt`` (attempt 1 = first retry)."""
        delay = min(
            self.backoff_base * (2 ** max(attempt - 1, 0)), self.backoff_cap
        )
        if self.backoff_jitter > 0.0:
            # random.Random wants an int seed; mix (seed, task, attempt)
            # with distinct odd multipliers so nearby keys decorrelate.
            mixed = (
                self.jitter_seed * 1_000_003 + task * 8191 + attempt
            ) & 0x7FFFFFFFFFFFFFFF
            frac = Random(mixed).random()
            delay *= 1.0 + self.backoff_jitter * frac
        return delay


@dataclass(frozen=True)
class RecoveryEvent:
    """One supervisor action, in occurrence order."""

    kind: str  # crash | timeout | heartbeat_gap | retry | respawn |
    #            quarantine | degrade | speculative | task_error
    phase: int
    task: int | None = None
    attempt: int | None = None
    worker: int | None = None
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "phase": self.phase,
            "task": self.task,
            "attempt": self.attempt,
            "worker": self.worker,
            "detail": self.detail,
        }


@dataclass
class TaskFailure:
    """One failed attempt of one task."""

    task: int
    attempt: int
    worker: int | None
    kind: str  # crash | timeout | heartbeat_gap | error
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "task": self.task,
            "attempt": self.attempt,
            "worker": self.worker,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class QuarantineReport:
    """Structured description of a quarantined (poison) task."""

    task: int
    task_range: tuple[int, int]
    phase: int
    workers_killed: int
    failures: list[TaskFailure] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "task": self.task,
            "task_range": list(self.task_range),
            "phase": self.phase,
            "workers_killed": self.workers_killed,
            "failures": [f.as_dict() for f in self.failures],
        }

    def describe(self) -> str:
        beg, end = self.task_range
        lines = [
            f"quarantined poison task {self.task} "
            f"(vertices [{beg}, {end}), phase {self.phase}): "
            f"killed {self.workers_killed} workers in a row",
        ]
        for f in self.failures:
            lines.append(
                f"  attempt {f.attempt}: {f.kind} on worker {f.worker}"
                + (f" — {f.detail}" if f.detail else "")
            )
        return "\n".join(lines)


class ExecutionFaultError(RuntimeError):
    """A phase could not be completed within the fault-tolerance policy."""

    def __init__(
        self,
        message: str,
        *,
        failures: list[TaskFailure] | None = None,
        events: list[RecoveryEvent] | None = None,
    ) -> None:
        super().__init__(message)
        self.failures = failures or []
        self.events = events or []
        self.stage: str | None = None
        self.algorithm: str | None = None

    def locate(self, *, stage: str, algorithm: str) -> "ExecutionFaultError":
        """Attach the phase-loop context (stage + algorithm) and return self."""
        self.stage = stage
        self.algorithm = algorithm
        return self

    def __str__(self) -> str:
        base = super().__str__()
        if self.stage is not None:
            where = self.algorithm or "run"
            return f"{base} [in {where} stage {self.stage!r}]"
        return base


class RetryBudgetExhaustedError(ExecutionFaultError):
    """A task failed more times than ``policy.max_retries`` allows."""


class PoisonTaskError(ExecutionFaultError):
    """A task was quarantined after killing too many workers in a row."""

    def __init__(self, report: QuarantineReport, **kwargs) -> None:
        super().__init__(report.describe().splitlines()[0], **kwargs)
        self.report = report


class ResumableAbort(ExecutionFaultError):
    """A fatal execution fault *after* a final checkpoint was written.

    Raised by checkpoint-aware phase loops in place of the underlying
    :class:`ExecutionFaultError` (kept as ``__cause__``) once the run's
    progress up to the failed phase is durably on disk: the caller can
    re-run with ``--resume`` and lose only the phase suffix that never
    committed.  Carries the saved ``epoch`` and ``checkpoint_dir``.
    """

    def __init__(
        self, message: str, *, epoch: int, checkpoint_dir, **kwargs
    ) -> None:
        super().__init__(message, **kwargs)
        self.epoch = epoch
        self.checkpoint_dir = checkpoint_dir

    @classmethod
    def from_fault(
        cls, fault: ExecutionFaultError, *, epoch: int, directory
    ) -> "ResumableAbort":
        out = cls(
            f"{RuntimeError.__str__(fault)} — checkpoint epoch {epoch} "
            f"saved to {directory}; re-run with --resume to continue",
            epoch=epoch,
            checkpoint_dir=directory,
            failures=list(fault.failures),
            events=list(fault.events),
        )
        out.stage = fault.stage
        out.algorithm = fault.algorithm
        out.__cause__ = fault
        return out


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

# Installed in the parent immediately before forking a phase's workers so
# that workers resolve them from their inherited address space; only small
# tuples travel through the queues.
_TASK_FN: TaskFn | None = None
_FAULT_PLAN: FaultPlan | None = None
_PHASE_INDEX: int = 0


def _worker_peak_rss_kb() -> int:
    """This process's peak RSS in kB (0 where ``resource`` is missing).

    Shipped back piggybacked on each ``done`` message's timing tuple so
    the parent can expose per-lane memory high-water marks without any
    extra IPC round trip.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _worker_main(worker_id: int, task_q, conn, hb_interval: float) -> None:
    """Worker loop: pull tasks from the shared queue, report on ``conn``.

    Messages go through a per-worker pipe with *synchronous* sends
    (``Connection.send`` writes before returning, unlike ``mp.Queue``'s
    feeder thread), so a worker that dies immediately after reporting
    ``start`` cannot lose the message — crash attribution stays exact.
    A lock serializes the heartbeat thread and the task loop on the pipe.
    """
    fn = _TASK_FN
    plan = _FAULT_PLAN
    phase = _PHASE_INDEX
    assert fn is not None, "worker forked without an active task function"

    stop = threading.Event()
    send_lock = threading.Lock()

    def send(msg) -> bool:
        try:
            with send_lock:
                conn.send(msg)
            return True
        except OSError:  # parent reaped this worker's channel
            return False

    def beat() -> None:
        while not stop.wait(hb_interval):
            if not send(("hb", worker_id, time.perf_counter())):
                return

    beater = threading.Thread(target=beat, daemon=True)
    beater.start()
    try:
        while True:
            item = task_q.get()
            if item is None:
                send(("bye", worker_id))
                return
            task_idx, attempt, beg, end = item
            if not send(
                ("start", worker_id, task_idx, attempt, time.perf_counter())
            ):
                return
            try:
                if plan is not None:
                    plan.apply(phase, task_idx, attempt, worker_id)
                t0 = time.perf_counter()
                payload = fn(beg, end)
                t1 = time.perf_counter()
                send(
                    (
                        "done",
                        worker_id,
                        task_idx,
                        attempt,
                        payload,
                        (t0, t1, _worker_peak_rss_kb()),
                    )
                )
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                send(
                    (
                        "err",
                        worker_id,
                        task_idx,
                        attempt,
                        f"{type(exc).__name__}: {exc}",
                        traceback.format_exc(limit=8),
                    )
                )
    finally:
        stop.set()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@dataclass
class _TaskState:
    index: int
    beg: int
    end: int
    weight: float
    attempts: int = 0  # dispatches so far
    consecutive_kills: int = 0
    completed: bool = False
    speculated: bool = False
    backoff_spent: float = 0.0  # total backoff wall-clock accumulated
    failures: list[TaskFailure] = field(default_factory=list)


@dataclass
class _Flight:
    task: int
    attempt: int
    worker: int | None = None  # None until the 'start' message arrives
    started: float | None = None
    deadline: float | None = None
    enqueued_at: float = 0.0


class Supervisor:
    """Run one phase's tasks across monitored worker processes.

    ``cost_model(beg, end)`` returns the modelled cost of a task (used
    to scale per-task deadlines); the default is the vertex-range width.
    ``phase_index`` keys fault-plan matching across a run's phases.
    """

    _TICK = 0.02

    def __init__(
        self,
        workers: int,
        policy: FaultTolerancePolicy | None = None,
        *,
        chaos: FaultPlan | None = None,
        cost_model: Callable[[int, int], float] | None = None,
        phase_index: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.policy = policy if policy is not None else FaultTolerancePolicy()
        self.chaos = chaos
        self.cost_model = cost_model
        self.phase_index = phase_index
        self.events: list[RecoveryEvent] = []
        self.degraded = False

    # -- event plumbing ---------------------------------------------------

    def _event(
        self,
        kind: str,
        *,
        task: int | None = None,
        attempt: int | None = None,
        worker: int | None = None,
        detail: str = "",
    ) -> None:
        self.events.append(
            RecoveryEvent(
                kind=kind,
                phase=self.phase_index,
                task=task,
                attempt=attempt,
                worker=worker,
                detail=detail,
            )
        )
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count(f"supervisor.{kind}", 1)
            now = time.perf_counter()
            tracer.add_span(
                f"recovery:{kind}",
                now,
                now,
                lane=0,
                depth=2,
                phase=self.phase_index,
                task=task,
                attempt=attempt,
                worker=worker,
                detail=detail,
            )

    # -- main entry -------------------------------------------------------

    def run_phase(
        self,
        tasks: Sequence[tuple[int, int]],
        run_task: TaskFn,
        commit: CommitFn,
    ) -> list[TaskCost]:
        if not tasks:
            return []
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            return self._run_serial_phase(tasks, run_task, commit)

        global _TASK_FN, _FAULT_PLAN, _PHASE_INDEX
        policy = self.policy
        weights = [
            float(self.cost_model(beg, end))
            if self.cost_model is not None
            else float(end - beg)
            for beg, end in tasks
        ]
        mean_w = max(sum(weights) / len(weights), 1e-12)
        states = [
            _TaskState(i, beg, end, weights[i])
            for i, (beg, end) in enumerate(tasks)
        ]

        lanes = min(self.workers, len(tasks))
        task_q = ctx.Queue()
        procs: dict[int, multiprocessing.process.BaseProcess] = {}
        conns: dict[int, Any] = {}  # per-worker parent-side pipe ends
        last_seen: dict[int, float] = {}
        worker_flight: dict[int, _Flight | None] = {}
        flights: dict[tuple[int, int], _Flight] = {}
        backoff: list[tuple[float, _TaskState]] = []  # (eligible_at, state)
        respawns_left = policy.respawn_budget(lanes)
        results: dict[int, tuple[Any, TaskCost]] = {}
        timings: dict[int, tuple[int, float, float, int]] = {}
        completed = 0
        fatal: ExecutionFaultError | None = None
        progress = current_progress()
        progress.phase_begin(sum(weights))

        _TASK_FN = run_task
        _FAULT_PLAN = self.chaos
        _PHASE_INDEX = self.phase_index

        def spawn(worker_id: int) -> None:
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(worker_id, task_q, send_end, policy.heartbeat_interval),
                daemon=True,
            )
            proc.start()
            send_end.close()  # the worker holds the only write end now
            procs[worker_id] = proc
            conns[worker_id] = recv_end
            last_seen[worker_id] = time.perf_counter()
            worker_flight[worker_id] = None

        def enqueue(state: _TaskState, *, speculative: bool = False) -> None:
            attempt = state.attempts
            state.attempts += 1
            flights[(state.index, attempt)] = _Flight(
                state.index, attempt, enqueued_at=time.perf_counter()
            )
            task_q.put((state.index, attempt, state.beg, state.end))
            if speculative:
                state.speculated = True
                self._event(
                    "speculative",
                    task=state.index,
                    attempt=attempt,
                    detail="straggler re-dispatched near the phase barrier",
                )

        def fail_attempt(
            state: _TaskState, attempt: int, kind: str,
            worker: int | None, detail: str,
        ) -> None:
            """Record one failed attempt and retry or give up."""
            nonlocal fatal
            state.failures.append(
                TaskFailure(state.index, attempt, worker, kind, detail)
            )
            if state.completed:
                return  # a speculative twin already finished this task
            if kind in ("crash", "timeout", "heartbeat_gap"):
                state.consecutive_kills += 1
            else:
                state.consecutive_kills = 0
            if (
                kind == "crash"
                and state.consecutive_kills >= policy.poison_threshold
            ):
                report = QuarantineReport(
                    task=state.index,
                    task_range=(state.beg, state.end),
                    phase=self.phase_index,
                    workers_killed=state.consecutive_kills,
                    failures=list(state.failures),
                )
                self._event(
                    "quarantine",
                    task=state.index,
                    attempt=attempt,
                    worker=worker,
                    detail=report.describe().splitlines()[0],
                )
                if fatal is None:
                    fatal = PoisonTaskError(
                        report,
                        failures=list(state.failures),
                        events=self.events,
                    )
                return
            if state.attempts > policy.max_retries:
                if fatal is None:
                    fatal = RetryBudgetExhaustedError(
                        f"task {state.index} failed {state.attempts} "
                        f"attempt(s) (budget: 1 + {policy.max_retries} "
                        f"retries); last: {kind} — {detail}",
                        failures=list(state.failures),
                        events=self.events,
                    )
                return
            delay = policy.backoff(state.attempts, task=state.index)
            if (
                policy.max_retry_wall is not None
                and state.backoff_spent + delay > policy.max_retry_wall
            ):
                if fatal is None:
                    fatal = RetryBudgetExhaustedError(
                        f"task {state.index} exhausted its retry "
                        f"wall-clock budget ({policy.max_retry_wall:.2f}s: "
                        f"{state.backoff_spent:.2f}s spent + {delay:.2f}s "
                        f"next backoff); last: {kind} — {detail}",
                        failures=list(state.failures),
                        events=self.events,
                    )
                return
            state.backoff_spent += delay
            self._event(
                "retry",
                task=state.index,
                attempt=state.attempts,
                worker=worker,
                detail=f"after {kind}; backoff {delay * 1e3:.0f}ms",
            )
            backoff.append((time.perf_counter() + delay, state))

        def handle_msg(msg) -> None:
            kind = msg[0]
            if kind == "hb":
                _, worker_id, _t = msg
                if worker_id in last_seen:
                    last_seen[worker_id] = time.perf_counter()
            elif kind == "start":
                _, worker_id, task_idx, attempt, _t_start = msg
                flight = flights.get((task_idx, attempt))
                if worker_id not in procs:
                    # The worker is already reaped; its synchronous 'start'
                    # outlived it.  Fail the attempt so the task retries.
                    if flight is not None:
                        flights.pop((task_idx, attempt), None)
                        fail_attempt(
                            states[task_idx],
                            attempt,
                            "crash",
                            worker_id,
                            "worker died while executing the task",
                        )
                    return
                last_seen[worker_id] = time.perf_counter()
                if flight is None:
                    # A stale attempt the parent gave up on: the worker is
                    # executing it anyway, so track it again (its result is
                    # as good as any other attempt's).
                    flight = _Flight(task_idx, attempt)
                    flights[(task_idx, attempt)] = flight
                flight.worker = worker_id
                flight.started = time.perf_counter()
                if policy.task_timeout is not None:
                    scale = max(states[task_idx].weight / mean_w, 1.0)
                    flight.deadline = (
                        flight.started + policy.task_timeout * scale
                    )
                worker_flight[worker_id] = flight
            elif kind == "done":
                nonlocal completed
                _, worker_id, task_idx, attempt, payload, timing = msg
                t0, t1 = timing[0], timing[1]
                rss_kb = int(timing[2]) if len(timing) > 2 else 0
                if worker_id in last_seen:
                    last_seen[worker_id] = time.perf_counter()
                flights.pop((task_idx, attempt), None)
                if worker_flight.get(worker_id) is not None:
                    worker_flight[worker_id] = None
                state = states[task_idx]
                if state.completed:
                    return  # duplicate (speculative) completion
                state.completed = True
                state.consecutive_kills = 0
                results[task_idx] = payload
                timings[task_idx] = (worker_id % lanes + 1, t0, t1, rss_kb)
                completed += 1
                progress.advance(weights[task_idx])
            elif kind == "err":
                _, worker_id, task_idx, attempt, detail, _tb = msg
                if worker_id in last_seen:
                    last_seen[worker_id] = time.perf_counter()
                flights.pop((task_idx, attempt), None)
                if worker_flight.get(worker_id) is not None:
                    worker_flight[worker_id] = None
                self._event(
                    "task_error",
                    task=task_idx,
                    attempt=attempt,
                    worker=worker_id,
                    detail=detail,
                )
                fail_attempt(
                    states[task_idx], attempt, "error", worker_id, detail
                )

        def drain_conn(worker_id: int) -> None:
            """Process messages a dying worker managed to send (its
            synchronous ``start`` is what makes crash attribution exact)."""
            conn = conns.get(worker_id)
            if conn is None:
                return
            while True:
                try:
                    if not conn.poll(0):
                        return
                    msg = conn.recv()
                except (EOFError, OSError):
                    return
                except Exception:  # torn write from a killed worker
                    return
                handle_msg(msg)

        def handle_worker_death(worker_id: int, kind: str, detail: str) -> None:
            drain_conn(worker_id)
            proc = procs.pop(worker_id, None)
            if proc is not None:
                if proc.is_alive():
                    proc.kill()
                proc.join(timeout=2.0)
            conn = conns.pop(worker_id, None)
            if conn is not None:
                conn.close()
            last_seen.pop(worker_id, None)
            flight = worker_flight.pop(worker_id, None)
            if flight is not None and states[flight.task].completed:
                flight = None  # its last act was finishing the task
            self._event(
                kind,
                task=flight.task if flight else None,
                attempt=flight.attempt if flight else None,
                worker=worker_id,
                detail=detail,
            )
            if flight is not None:
                flights.pop((flight.task, flight.attempt), None)
                state = states[flight.task]
                fail_attempt(state, flight.attempt, "crash" if kind == "crash"
                             else kind, worker_id, detail)
            if fatal is not None:
                return
            outstanding = len(tasks) - completed
            if outstanding > len(procs) and respawns():
                return

        def respawns() -> bool:
            """Respawn a replacement lane if the budget allows; report it."""
            nonlocal respawns_left
            if respawns_left <= 0:
                return False
            respawns_left -= 1
            worker_id = max(list(procs) + [lanes - 1]) + 1
            spawn(worker_id)
            self._event(
                "respawn",
                worker=worker_id,
                detail=f"{respawns_left} respawn(s) left",
            )
            return True

        try:
            for wid in range(lanes):
                spawn(wid)
            for state in states:
                enqueue(state)

            while completed < len(tasks) and fatal is None:
                now = time.perf_counter()

                # Release retry-eligible tasks from backoff.
                if backoff:
                    still: list[tuple[float, _TaskState]] = []
                    for eligible_at, state in backoff:
                        if state.completed:
                            continue
                        if now >= eligible_at:
                            enqueue(state)
                        else:
                            still.append((eligible_at, state))
                    backoff[:] = still

                # Per-task deadlines (hung tasks whose heartbeats beat on).
                if policy.task_timeout is not None:
                    for flight in list(flights.values()):
                        if (
                            flight.deadline is not None
                            and flight.worker is not None
                            and now > flight.deadline
                            and not states[flight.task].completed
                        ):
                            handle_worker_death(
                                flight.worker,
                                "timeout",
                                f"task {flight.task} exceeded its "
                                f"deadline of "
                                f"{flight.deadline - flight.started:.2f}s",
                            )

                # Heartbeat-gap detection (frozen processes).
                if policy.heartbeat_timeout is not None:
                    for worker_id, seen in list(last_seen.items()):
                        if now - seen > policy.heartbeat_timeout:
                            handle_worker_death(
                                worker_id,
                                "heartbeat_gap",
                                f"no heartbeat for {now - seen:.2f}s",
                            )

                # Liveness: a worker that died without a message.
                for worker_id, proc in list(procs.items()):
                    if not proc.is_alive():
                        handle_worker_death(
                            worker_id,
                            "crash",
                            f"worker exited with code {proc.exitcode}",
                        )

                if fatal is not None:
                    break

                # Pool collapse → degrade to serial execution in-parent.
                if len(procs) < policy.min_workers:
                    if not respawns():
                        self._event(
                            "degrade",
                            detail=(
                                f"pool collapsed ({len(procs)} alive, "
                                "respawn budget exhausted); running "
                                f"{len(tasks) - completed} remaining "
                                "task(s) serially in the parent"
                            ),
                        )
                        self.degraded = True
                        for state in states:
                            if state.completed:
                                continue
                            t0 = time.perf_counter()
                            results[state.index] = run_task(state.beg, state.end)
                            timings[state.index] = (
                                0, t0, time.perf_counter(),
                                _worker_peak_rss_kb(),
                            )
                            state.completed = True
                            completed += 1
                            progress.advance(weights[state.index])
                        break

                # Requeue claims lost with their worker: a task pulled from
                # the queue whose worker died before the 'start' message
                # (sub-millisecond window, but a real crash can hit it).
                if completed < len(tasks) and not backoff and procs:
                    unstarted = [
                        fl for fl in flights.values() if fl.worker is None
                    ]
                    if unstarted and all(
                        fl is None for fl in worker_flight.values()
                    ):
                        grace = max(0.5, policy.heartbeat_interval * 2)
                        for fl in unstarted:
                            if now - fl.enqueued_at <= grace:
                                continue
                            flights.pop((fl.task, fl.attempt), None)
                            if not states[fl.task].completed:
                                self._event(
                                    "requeue_lost",
                                    task=fl.task,
                                    attempt=fl.attempt,
                                    detail="dispatched attempt lost with "
                                    "its worker",
                                )
                                enqueue(states[fl.task])

                # Speculative straggler re-dispatch near the barrier.
                if (
                    policy.speculative
                    and not backoff
                    and completed < len(tasks)
                    and not any(fl.worker is None for fl in flights.values())
                ):
                    idle = [
                        wid for wid, fl in worker_flight.items() if fl is None
                    ]
                    if idle:
                        candidates = [
                            fl
                            for fl in flights.values()
                            if fl.started is not None
                            and not states[fl.task].speculated
                            and not states[fl.task].completed
                            and now - fl.started > policy.straggler_after
                        ]
                        if candidates:
                            slowest = max(
                                candidates, key=lambda fl: now - fl.started
                            )
                            enqueue(states[slowest.task], speculative=True)

                # Drain the message stream (one pipe per worker; a torn
                # write from a killed worker poisons only that pipe).
                if not conns:
                    time.sleep(self._TICK)
                    continue
                try:
                    ready = connection.wait(
                        list(conns.values()), timeout=self._TICK
                    )
                except OSError:  # a pipe closed under us mid-wait
                    continue
                if not ready:
                    continue
                by_conn = {conn: wid for wid, conn in conns.items()}
                for conn in ready:
                    worker_id = by_conn.get(conn)
                    if worker_id is None or worker_id not in conns:
                        continue
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        continue  # the liveness check will reap it
                    except Exception:  # torn pickle from a killed worker
                        continue
                    handle_msg(msg)
                    if fatal is not None:
                        break
        finally:
            _TASK_FN = None
            _FAULT_PLAN = None
            _PHASE_INDEX = 0
            for _ in range(len(procs) + 1):
                try:
                    task_q.put_nowait(None)
                except Exception:  # pragma: no cover - full queue
                    break
            deadline = time.monotonic() + 1.0
            for proc in procs.values():
                proc.join(timeout=max(deadline - time.monotonic(), 0.05))
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=1.0)
            for conn in conns.values():
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            task_q.cancel_join_thread()
            task_q.close()

        progress.phase_end()
        if fatal is not None:
            raise fatal

        # Barrier commit, in task order, exactly once per task.
        tracer = current_tracer()
        if tracer.enabled:
            lane_rss: dict[int, int] = {}
            for task_idx, (lane, t0, t1, rss_kb) in sorted(timings.items()):
                beg, end = tasks[task_idx]
                tracer.add_span(
                    "task", t0, t1, lane=lane, depth=1, beg=beg, stop=end
                )
                if rss_kb > 0:
                    lane_rss[lane] = max(lane_rss.get(lane, 0), rss_kb)
            for lane, rss_kb in sorted(lane_rss.items()):
                tracer.gauge(f"memory.lane.{lane}.peak_rss_kb", rss_kb)
            tracer.count("backend.process.tasks", len(tasks))
            with tracer.span("commit", lane=0, tasks=len(tasks)):
                records = self._commit_all(tasks, results, commit)
        else:
            records = self._commit_all(tasks, results, commit)
        return records

    @staticmethod
    def _commit_all(tasks, results, commit) -> list[TaskCost]:
        records: list[TaskCost] = []
        for task_idx in range(len(tasks)):
            writes, cost = results[task_idx]
            commit(writes)
            records.append(cost)
        return records

    def _run_serial_phase(
        self, tasks, run_task: TaskFn, commit: CommitFn
    ) -> list[TaskCost]:  # pragma: no cover - non-POSIX fallback
        self._event("degrade", detail="fork unavailable; serial execution")
        self.degraded = True
        results = {i: run_task(beg, end) for i, (beg, end) in enumerate(tasks)}
        return self._commit_all(tasks, results, commit)
