"""Deterministic fault injection for the supervised process backend.

A :class:`FaultPlan` is a seeded, fully explicit list of :class:`Fault`
rules.  The plan is installed in the parent *before* the phase's workers
fork, so every worker sees the identical plan; each time a worker is
about to execute a task attempt it asks the plan whether a fault fires
for ``(phase, task_index, attempt, worker)``.  Because matching is pure
(no clocks, no randomness at fire time), every recovery path of the
:mod:`~repro.parallel.supervisor` is reproducible in CI from a seed.

Fault kinds
-----------
``kill``
    The worker process exits immediately (``os._exit``), simulating a
    segfault / OOM kill.  The supervisor must detect the dead worker,
    re-queue its task and respawn the lane.
``hang``
    The worker sleeps for ``seconds`` before computing the task,
    simulating a stuck task.  Only a per-task deadline catches this (the
    heartbeat thread keeps beating through a ``sleep``).
``stall``
    The worker SIGSTOPs itself, freezing *including* its heartbeat
    thread — the scenario heartbeat-gap detection exists for.
``delay``
    The worker sleeps for ``seconds`` and then completes normally; used
    to manufacture stragglers for speculative re-dispatch.
``error``
    The task attempt raises :class:`ChaosError` inside the worker,
    exercising the retry/backoff path without losing the process.

A fault with ``attempt=0`` (the default) fires only on the first
execution attempt, so the retry recovers; ``attempt=None`` fires on
*every* attempt, which is how a poison task is modelled.

Whole-process crashes
---------------------
The faults above kill *workers*; the supervisor survives them.  A
:class:`ProcessCrashPoint` kills the *driving process itself* at a
chosen checkpoint epoch — either just before the snapshot is written
(``before-save``, i.e. crash-mid-phase: the previous epoch must carry
the resume) or just after (``after-save``, i.e. crash-at-barrier: the
fresh epoch must).  The crash-restart harness arms one via the
``REPRO_CRASH_EPOCH`` / ``REPRO_CRASH_MODE`` environment variables and
SIGKILL-equivalently ``os._exit``\\ s the real CLI process; in-process
tests inject an ``exit_fn`` that raises instead, so the Python state
dies but the checkpoint files remain inspectable.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, fields
from enum import Enum
from random import Random

__all__ = [
    "FaultKind",
    "Fault",
    "FaultPlan",
    "ChaosError",
    "ProcessCrashPoint",
    "CRASH_EXIT_CODE",
]

#: Exit status of an armed :class:`ProcessCrashPoint` — the classic
#: 128+SIGKILL value, so the harness can tell an injected crash from
#: any ordinary failure.
CRASH_EXIT_CODE = 137


@dataclass(frozen=True)
class ProcessCrashPoint:
    """Kill the whole driving process at one checkpoint epoch.

    ``mode`` selects which side of the durable write dies:
    ``"after-save"`` (crash-at-barrier — epoch ``epoch`` is on disk)
    or ``"before-save"`` (crash-mid-phase — epoch ``epoch`` is *not*).
    ``epoch=None`` disarms the point entirely, which is the default a
    :class:`~repro.checkpoint.CheckpointManager` runs with.

    ``exit_fn`` exists for in-process tests: the default ``None`` means
    ``os._exit(CRASH_EXIT_CODE)`` (no atexit, no finally blocks — as
    close to SIGKILL as Python gets), while a test can substitute a
    function that raises, leaving the checkpoint directory behind for
    a resume assertion.
    """

    epoch: int | None = None
    mode: str = "after-save"
    exit_fn: object = None

    def __post_init__(self) -> None:
        if self.mode not in ("after-save", "before-save"):
            raise ValueError(
                f"crash mode must be 'after-save' or 'before-save', "
                f"got {self.mode!r}"
            )

    @classmethod
    def from_env(cls, environ: dict | None = None) -> "ProcessCrashPoint":
        """An armed point from ``REPRO_CRASH_EPOCH``/``REPRO_CRASH_MODE``,
        or a disarmed one when the variables are absent or malformed."""
        env = os.environ if environ is None else environ
        raw = env.get("REPRO_CRASH_EPOCH")
        if raw is None:
            return cls()
        try:
            epoch = int(raw)
        except ValueError:
            return cls()
        mode = env.get("REPRO_CRASH_MODE", "after-save")
        if mode not in ("after-save", "before-save"):
            mode = "after-save"
        return cls(epoch=epoch, mode=mode)

    def fire(self, mode: str, epoch: int) -> None:
        """Die iff this point is armed for exactly (``mode``, ``epoch``)."""
        if self.epoch is None or self.epoch != epoch or self.mode != mode:
            return
        if self.exit_fn is not None:
            self.exit_fn(CRASH_EXIT_CODE)
            return
        os._exit(CRASH_EXIT_CODE)


class ChaosError(RuntimeError):
    """Raised inside a worker by an ``error`` fault."""


class FaultKind(str, Enum):
    """What an injected fault does to the worker executing the task."""

    KILL = "kill"
    HANG = "hang"
    STALL = "stall"
    DELAY = "delay"
    ERROR = "error"


@dataclass(frozen=True)
class Fault:
    """One injection rule.

    ``None`` for ``task``, ``attempt``, ``worker`` or ``phase`` means
    "match any".  ``seconds`` parameterizes ``hang``/``delay``.
    """

    kind: FaultKind
    task: int | None = None
    attempt: int | None = 0
    worker: int | None = None
    phase: int | None = None
    seconds: float = 30.0

    def matches(
        self, phase: int, task: int, attempt: int, worker: int
    ) -> bool:
        return (
            (self.task is None or self.task == task)
            and (self.attempt is None or self.attempt == attempt)
            and (self.worker is None or self.worker == worker)
            and (self.phase is None or self.phase == phase)
        )

    def as_dict(self) -> dict:
        out = {"kind": self.kind.value}
        for f in fields(self):
            if f.name == "kind":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        data = dict(data)
        data["kind"] = FaultKind(data["kind"])
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of fault rules, optionally derived from a seed."""

    faults: tuple[Fault, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def lookup(
        self, phase: int, task: int, attempt: int, worker: int
    ) -> Fault | None:
        """First fault matching this execution attempt, or ``None``."""
        for fault in self.faults:
            if fault.matches(phase, task, attempt, worker):
                return fault
        return None

    def apply(self, phase: int, task: int, attempt: int, worker: int) -> None:
        """Fire the matching fault (if any) inside the worker process."""
        fault = self.lookup(phase, task, attempt, worker)
        if fault is None:
            return
        if fault.kind is FaultKind.KILL:
            os._exit(23)
        elif fault.kind is FaultKind.STALL:
            os.kill(os.getpid(), signal.SIGSTOP)
        elif fault.kind in (FaultKind.HANG, FaultKind.DELAY):
            time.sleep(fault.seconds)
        elif fault.kind is FaultKind.ERROR:
            raise ChaosError(
                f"injected fault: task {task} attempt {attempt} "
                f"(worker {worker}, phase {phase})"
            )

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        tasks: int = 16,
        kills: int = 0,
        hangs: int = 0,
        delays: int = 0,
        errors: int = 0,
        poison: int = 0,
        phase: int | None = None,
        seconds: float = 30.0,
    ) -> "FaultPlan":
        """Sample distinct task indices for each fault kind from ``seed``.

        The same ``(seed, tasks, counts)`` always produce the same plan;
        indices are drawn without replacement so at most ``tasks`` faults
        fit.  ``poison`` kills fire on every attempt (a quarantinable
        task); plain ``kills`` fire only on attempt 0 (recoverable).
        """
        want = kills + hangs + delays + errors + poison
        if want > tasks:
            raise ValueError(
                f"cannot place {want} faults on {tasks} task indices"
            )
        rng = Random(seed)
        picked = rng.sample(range(tasks), want)
        it = iter(picked)
        plan: list[Fault] = []
        for _ in range(kills):
            plan.append(Fault(FaultKind.KILL, task=next(it), phase=phase))
        for _ in range(hangs):
            plan.append(
                Fault(FaultKind.HANG, task=next(it), phase=phase, seconds=seconds)
            )
        for _ in range(delays):
            plan.append(
                Fault(FaultKind.DELAY, task=next(it), phase=phase, seconds=seconds)
            )
        for _ in range(errors):
            plan.append(Fault(FaultKind.ERROR, task=next(it), phase=phase))
        for _ in range(poison):
            plan.append(
                Fault(FaultKind.KILL, task=next(it), attempt=None, phase=phase)
            )
        return cls(faults=tuple(plan), seed=seed)

    @classmethod
    def poison(cls, task: int, *, phase: int | None = None) -> "FaultPlan":
        """A plan whose single task kills its worker on every attempt."""
        return cls(
            faults=(Fault(FaultKind.KILL, task=task, attempt=None, phase=phase),)
        )

    # -- serialization ----------------------------------------------------

    def as_dict(self) -> dict:
        out: dict = {"faults": [f.as_dict() for f in self.faults]}
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            faults=tuple(Fault.from_dict(f) for f in data.get("faults", ())),
            seed=data.get("seed"),
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI ``--chaos-plan`` value.

        Accepts a path to a JSON plan file (``.save`` output) or a
        compact ``key=value`` spec, e.g. ``seed=42,tasks=16,kill=2`` —
        keys: ``seed``, ``tasks``, ``kill``, ``hang``, ``delay``,
        ``error``, ``poison``, ``phase``, ``seconds``.
        """
        if os.path.exists(spec) or spec.endswith(".json"):
            return cls.load(spec)
        kwargs: dict = {"seed": 0}
        aliases = {
            "kill": "kills",
            "hang": "hangs",
            "delay": "delays",
            "error": "errors",
        }
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad chaos spec field {part!r}: expected key=value"
                )
            key, _, value = part.partition("=")
            key = aliases.get(key.strip(), key.strip())
            if key == "seconds":
                kwargs[key] = float(value)
            else:
                kwargs[key] = int(value)
        seed = kwargs.pop("seed")
        return cls.from_seed(seed, **kwargs)
