"""Degree-based dynamic task construction (paper Algorithm 5).

The master thread walks the vertex array, accumulates the degrees of
vertices that still need computation, and cuts a task whenever the
accumulated degree sum exceeds a threshold (the paper tunes 32768 for its
servers).  Tasks are contiguous vertex ranges, which keeps worker memory
access on adjacent regions of the CSR arrays — the locality advantage the
paper calls out in §4.4.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..obs.tracer import current_tracer

__all__ = [
    "DEFAULT_DEGREE_THRESHOLD",
    "degree_based_tasks",
    "uniform_tasks",
    "arc_range_cost_model",
]

#: The paper's tuned degree-sum threshold per task.
DEFAULT_DEGREE_THRESHOLD = 32768


def _degree_based_tasks_np(
    degrees: np.ndarray,
    needs_work: np.ndarray | None,
    threshold: int,
) -> list[tuple[int, int]]:
    """Vectorized task cutting: one cumulative sum, one ``searchsorted``
    per emitted task — identical output to the scalar greedy walk."""
    weights = (
        degrees
        if needs_work is None
        else np.where(np.asarray(needs_work, dtype=bool), degrees, 0)
    )
    cumulative = np.cumsum(weights, dtype=np.int64)
    n = int(cumulative.size)
    tasks: list[tuple[int, int]] = []
    beg = 0
    base = 0
    while True:
        cut = int(np.searchsorted(cumulative, base + threshold, side="right"))
        if cut >= n:
            break
        tasks.append((beg, cut + 1))
        beg = cut + 1
        base = int(cumulative[cut])
    if beg < n:
        tasks.append((beg, n))
    return tasks


def degree_based_tasks(
    degrees: Sequence[int],
    needs_work: Sequence[bool] | None = None,
    threshold: int = DEFAULT_DEGREE_THRESHOLD,
) -> list[tuple[int, int]]:
    """Cut ``[beg, end)`` vertex-range tasks by accumulated degree sum.

    ``needs_work[u]`` mirrors Algorithm 5's ``role[u] == Unknown`` check:
    vertices that don't need computation contribute no degree (workers skip
    them in O(1)).  The trailing remainder is always submitted, matching
    the paper's final ``SubmitTaskToPool(Task(next_beg, |V|))``.

    NumPy ``degrees`` take a vectorized cutting path (used by the phase
    drivers, which keep roles as an int8 array and pass
    ``roles == needs_role`` masks straight through); list inputs keep the
    scalar greedy walk.  Both produce identical task lists.

    >>> degree_based_tasks([5, 1, 9, 3], None, threshold=4)
    [(0, 1), (1, 3), (3, 4)]
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    if isinstance(degrees, np.ndarray):
        tasks = _degree_based_tasks_np(degrees, needs_work, threshold)
    else:
        n = len(degrees)
        tasks = []
        deg_sum = 0
        beg = 0
        for u in range(n):
            if needs_work is None or needs_work[u]:
                deg_sum += degrees[u]
                if deg_sum > threshold:
                    tasks.append((beg, u + 1))
                    deg_sum = 0
                    beg = u + 1
        if beg < n:
            tasks.append((beg, n))
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("scheduler.phases", 1)
        tracer.count("scheduler.tasks", len(tasks))
    return tasks


def arc_range_cost_model(offsets: np.ndarray):
    """Model a ``[beg, end)`` vertex-range task's cost as its arc count.

    The same degree-sum weight Algorithm 5 cuts tasks by; the supervised
    process backend uses it to scale per-task deadlines so a
    high-degree-sum task is not misdiagnosed as hung.

    >>> import numpy as np
    >>> model = arc_range_cost_model(np.array([0, 5, 6, 15, 18]))
    >>> model(0, 2), model(2, 4)
    (6.0, 12.0)
    """

    def model(beg: int, end: int) -> float:
        return float(offsets[end] - offsets[beg])

    return model


def uniform_tasks(n: int, chunk: int) -> list[tuple[int, int]]:
    """Fixed-size vertex chunks — the naive splitter the ablation compares
    against degree-based cutting on skewed graphs."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    return [(beg, min(beg + chunk, n)) for beg in range(0, n, chunk)]
