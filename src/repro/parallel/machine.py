"""Machine models that price work records into simulated seconds.

The paper evaluates on two servers; we model both as documented constants:

* ``CPU_SERVER`` — 2 × 10-core Xeon E5-2650 @ 2.3 GHz, 2-way SMT (40
  hardware threads, the paper runs 64), AVX2 (8 × 32-bit lanes), ~100 GB/s
  aggregate DRAM bandwidth.
* ``KNL_SERVER`` — Xeon Phi 7210 @ 1.3 GHz, 64 cores, 4-way SMT (256
  threads), AVX512 (16 lanes), MCDRAM in cache mode (~380 GB/s), weaker
  scalar pipeline (higher CPI), pricier atomics.

Because this reproduction runs graphs ~10^3× smaller than the paper's
(with the task threshold scaled down accordingly), the fixed per-task
submission and per-phase barrier constants are scaled down by a similar
factor — otherwise they would dominate in a way they do not at paper
scale.  The task-threshold ablation bench re-inflates them to study the
granularity trade-off explicitly.

Pricing converts a :class:`~repro.metrics.TaskCost` into cycles and bytes,
runs the greedy list schedule the degree-based task scheduler produces, and
takes the roofline max of compute makespan and memory streaming time.  SMT
is modelled as partial extra throughput past the physical core count, and
atomic operations pay a contention factor that grows with the thread count
(the lock-free union-find overhead the paper reports in §6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

from ..metrics.records import RunRecord, StageRecord, TaskCost
from .simthread import greedy_makespan

__all__ = ["MachineSpec", "CPU_SERVER", "KNL_SERVER"]


@dataclass(frozen=True)
class MachineSpec:
    """A priced execution platform.

    All cost constants are in cycles (per thread) or bytes; see the module
    docstring for how the two presets were chosen.
    """

    name: str
    physical_cores: int
    smt_ways: int
    clock_hz: float
    #: scalar cycles per comparison in the data-dependent merge loop,
    #: including the branch-misprediction penalty the paper's §3.2.2 cites;
    #: much higher on KNL's in-order-ish pipeline than on the OoO Xeon.
    scalar_cpi: float
    #: cycles for one branch-free merge step (no misprediction penalty).
    branchless_cpi: float
    #: cycles for one vector block op (load + compare + popcount bundle).
    vector_op_cycles: float
    #: vector lanes (32-bit elements per vector register).
    lanes: int
    #: aggregate memory bandwidth, bytes/second.
    mem_bandwidth: float
    #: base cost of one uncontended atomic (CAS / atomic read-modify-write).
    atomic_cycles: float
    #: per-adjacency-entry bookkeeping cost outside the kernels.
    arc_cycles: float
    #: cost of one du/dv/cn bound update.
    bound_update_cycles: float
    #: cost of one dynamic allocation (anySCAN's overhead source).
    alloc_cycles: float
    #: master-side cost of constructing + submitting one task.
    task_submit_cycles: float
    #: barrier latency coefficient (seconds × log2(threads)).
    barrier_seconds: float
    #: fraction of a full thread each SMT sibling adds past the core count.
    smt_gain: float = 0.45
    #: atomic contention growth per log2(threads).
    atomic_contention: float = 0.3

    # -- throughput model ---------------------------------------------------

    def max_threads(self) -> int:
        return self.physical_cores * self.smt_ways

    def throughput(self, threads: int) -> float:
        """Aggregate throughput in single-thread units for ``threads``."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        cores = self.physical_cores
        base = min(threads, cores)
        smt_threads = min(max(threads - cores, 0), cores * (self.smt_ways - 1))
        return base + self.smt_gain * smt_threads

    # -- task pricing -------------------------------------------------------

    def task_cycles(self, cost: TaskCost, threads: int = 1) -> float:
        contention = 1.0 + self.atomic_contention * log2(max(threads, 1))
        return (
            cost.scalar_cmp * self.scalar_cpi
            + cost.branchless_cmp * self.branchless_cpi
            + cost.vector_ops * self.vector_op_cycles
            + cost.bound_updates * self.bound_update_cycles
            + cost.arcs * self.arc_cycles
            + cost.atomics * self.atomic_cycles * contention
            + cost.allocs * self.alloc_cycles * contention
        )

    def task_bytes(self, cost: TaskCost) -> float:
        # DRAM traffic model: adjacency lists enjoy heavy cache reuse (a
        # vertex's list is re-read once per incident CompSim, and the
        # pivot walk re-touches the same cache lines block after block),
        # so kernel comparisons cost ~1 byte of DRAM traffic each and a
        # vector block op ~2; per-arc bookkeeping streams the property
        # arrays.
        return (
            cost.scalar_cmp * 1.0
            + cost.branchless_cmp * 1.0
            + cost.vector_ops * 2.0
            + cost.arcs * 8.0
            + cost.atomics * 16.0
        )

    # -- stage / run pricing ---------------------------------------------

    def stage_seconds(self, stage: StageRecord, threads: int) -> float:
        """Roofline-priced duration of one phase at a given thread count."""
        if not stage.tasks:
            return 0.0
        cycles = [self.task_cycles(t, threads) for t in stage.tasks]
        # T SMT threads behave like throughput(T) full-speed workers: the
        # pool balances load across siblings, while a straggler task's
        # tail runs on a core it has to itself (full single-thread speed).
        workers = max(1, round(self.throughput(threads)))
        makespan = greedy_makespan(cycles, workers)
        compute = makespan / self.clock_hz
        # Task submission streams from the master concurrently with worker
        # execution; it binds only when tasks are tiny relative to it.
        submit = len(stage.tasks) * self.task_submit_cycles / self.clock_hz
        mem = sum(self.task_bytes(t) for t in stage.tasks) / self.mem_bandwidth
        barrier = self.barrier_seconds * log2(max(threads, 2))
        return max(compute, submit, mem) + barrier

    def stage_breakdown(
        self, record: RunRecord, threads: int
    ) -> dict[str, float]:
        return {
            stage.name: self.stage_seconds(stage, threads)
            for stage in record.stages
        }

    def run_seconds(self, record: RunRecord, threads: int) -> float:
        return sum(self.stage_breakdown(record, threads).values())


CPU_SERVER = MachineSpec(
    name="CPU (2x Xeon E5-2650, 40 HW threads, AVX2)",
    physical_cores=20,
    smt_ways=2,
    clock_hz=2.3e9,
    scalar_cpi=4.5,
    branchless_cpi=1.3,
    vector_op_cycles=1.0,
    lanes=8,
    mem_bandwidth=100e9,
    atomic_cycles=18.0,
    arc_cycles=0.8,
    bound_update_cycles=0.4,
    alloc_cycles=220.0,
    task_submit_cycles=5.0,
    barrier_seconds=0.05e-6,
)

KNL_SERVER = MachineSpec(
    name="KNL (Xeon Phi 7210, 256 threads, AVX512)",
    physical_cores=64,
    smt_ways=4,
    clock_hz=1.3e9,
    scalar_cpi=6.0,
    branchless_cpi=2.2,
    vector_op_cycles=2.0,
    lanes=16,
    mem_bandwidth=450e9,
    atomic_cycles=40.0,
    arc_cycles=1.5,
    bound_update_cycles=0.5,
    alloc_cycles=450.0,
    task_submit_cycles=6.0,
    barrier_seconds=0.1e-6,
)
