"""Execution backends for the phase/task/commit model.

ppSCAN's phases are executed through a small protocol:

* ``run_task(beg, end) -> (writes, TaskCost)`` — performs the vertex
  computations of one task.  Reads shared state freely; buffers its writes.
* ``commit(writes)`` — applies a task's buffered writes to shared state.

``SerialBackend`` commits after every task, which is one legal
interleaving of the paper's lock-free execution (later tasks observe
earlier tasks' similarity values, maximizing reuse — this is the canonical
backend whose counts the figures report).

``ProcessBackend`` runs each phase's tasks in forked worker processes and
commits all writes at the phase barrier (bulk-synchronous).  That is the
*weakest* write visibility the paper's correctness proofs admit (Theorems
4.1–4.5 hold under any interleaving, including "none within a phase"), so
results are identical; only the amount of intra-phase similarity reuse can
differ.  Fork-based workers inherit the shared CSR arrays copy-on-write,
so no graph data is pickled.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Protocol, Sequence

import numpy as np

from ..metrics.records import TaskCost
from ..obs.progress import current_progress
from ..obs.tracer import current_tracer
from .chaos import FaultPlan
from .supervisor import FaultTolerancePolicy, RecoveryEvent, Supervisor
from .supervisor import _worker_peak_rss_kb

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "commit_arc_states",
]


def commit_arc_states(
    sim: np.ndarray,
    rev: np.ndarray,
    arcs: np.ndarray,
    states: np.ndarray,
) -> None:
    """Batch-aware commit of vectorized similarity writes.

    The batched execution mode buffers a task's similarity results as one
    ``(arc ids, int8 states)`` array pair; applying them (and their
    reverse-arc mirrors — pSCAN's similarity-reuse invariant) is two
    fancy-indexed stores instead of a Python loop per arc.  Process
    workers ship the same two arrays through the pool's pickle channel,
    so the per-arc commit cost is independent of the batch size.
    """
    if len(arcs) == 0:
        return
    sim[arcs] = states
    sim[rev[arcs]] = states

TaskFn = Callable[[int, int], tuple[Any, TaskCost]]
CommitFn = Callable[[Any], None]


class ExecutionBackend(Protocol):
    """Anything that can execute one phase's task list."""

    def run_phase(
        self,
        tasks: Sequence[tuple[int, int]],
        run_task: TaskFn,
        commit: CommitFn,
    ) -> list[TaskCost]: ...


class SerialBackend:
    """Execute tasks in submission order, committing after each task."""

    name = "serial"

    def run_phase(
        self,
        tasks: Sequence[tuple[int, int]],
        run_task: TaskFn,
        commit: CommitFn,
    ) -> list[TaskCost]:
        records: list[TaskCost] = []
        tracer = current_tracer()
        progress = current_progress()
        if not (tracer.enabled or progress.enabled):
            # The hot path: no span objects, no clock reads per task.
            for beg, end in tasks:
                writes, cost = run_task(beg, end)
                commit(writes)
                records.append(cost)
            return records
        # Serial cost model: vertex-range width (the scheduler's floor).
        progress.phase_begin(
            float(sum(end - beg for beg, end in tasks))
        )
        for beg, end in tasks:
            with tracer.span("task", lane=0, beg=beg, stop=end):
                writes, cost = run_task(beg, end)
                commit(writes)
            records.append(cost)
            progress.advance(float(end - beg))
        progress.phase_end()
        tracer.count("backend.serial.tasks", len(tasks))
        return records


# The task closure is installed in a module global immediately before the
# fork so that workers resolve it from their inherited address space; only
# the (beg, end) integers travel through the pool's pickle channel.
_ACTIVE_TASK_FN: TaskFn | None = None
# When the parent's tracer is enabled at fork time, workers also ship back
# (lane, begin, end) timing triples.  perf_counter is CLOCK_MONOTONIC on
# POSIX — system-wide, so worker timestamps land on the parent's timeline.
# Pool process identities increment globally across the per-phase pools,
# so the lane is normalized modulo the pool size (set before the fork) to
# keep one stable lane per worker slot across all phases of a run.
_POOL_LANES = 1


def _invoke_task(beg: int, end: int) -> tuple[Any, TaskCost]:
    fn = _ACTIVE_TASK_FN
    assert fn is not None, "worker forked without an active task function"
    return fn(beg, end)


def _invoke_task_traced(
    beg: int, end: int
) -> tuple[tuple[Any, TaskCost], tuple[int, float, float, int]]:
    fn = _ACTIVE_TASK_FN
    assert fn is not None, "worker forked without an active task function"
    identity = multiprocessing.current_process()._identity
    lane = ((identity[0] - 1) % _POOL_LANES + 1) if identity else 0
    t0 = time.perf_counter()
    result = fn(beg, end)
    return result, (lane, t0, time.perf_counter(), _worker_peak_rss_kb())


class ProcessBackend:
    """Fork-based bulk-synchronous phase execution.

    Falls back to serial execution when ``fork`` is unavailable (non-POSIX)
    or when a phase has fewer tasks than workers would help with.

    When a :class:`~repro.parallel.supervisor.FaultTolerancePolicy` or a
    :class:`~repro.parallel.chaos.FaultPlan` is supplied (or
    ``supervised=True``), phases run under the
    :class:`~repro.parallel.supervisor.Supervisor` instead of a plain
    pool: crashed/hung workers are detected via liveness + heartbeats,
    their tasks are retried with backoff under a bounded budget, poison
    tasks are quarantined, and the phase degrades to in-parent serial
    execution if the worker pool collapses.  Clustering output is
    bit-identical either way — commits stay at the phase barrier.

    ``cost_model(beg, end)`` models a task's cost (e.g. its arc count)
    and is used by the supervisor to scale per-task deadlines.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        *,
        policy: FaultTolerancePolicy | None = None,
        chaos: FaultPlan | None = None,
        cost_model: Callable[[int, int], float] | None = None,
        supervised: bool | None = None,
    ) -> None:
        if workers is None:
            workers = max(1, (os.cpu_count() or 1))
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.policy = policy
        self.chaos = chaos
        self.cost_model = cost_model
        self.supervised = (
            supervised
            if supervised is not None
            else (policy is not None or chaos is not None)
        )
        #: Recovery actions accumulated across this backend's phases.
        self.recovery_events: list[RecoveryEvent] = []
        self._phase_index = 0

    def _run_supervised(
        self,
        tasks: Sequence[tuple[int, int]],
        run_task: TaskFn,
        commit: CommitFn,
    ) -> list[TaskCost]:
        supervisor = Supervisor(
            self.workers,
            self.policy,
            chaos=self.chaos,
            cost_model=self.cost_model,
            phase_index=self._phase_index,
        )
        try:
            return supervisor.run_phase(tasks, run_task, commit)
        finally:
            self.recovery_events.extend(supervisor.events)

    def run_phase(
        self,
        tasks: Sequence[tuple[int, int]],
        run_task: TaskFn,
        commit: CommitFn,
    ) -> list[TaskCost]:
        global _ACTIVE_TASK_FN, _POOL_LANES
        if self.supervised:
            try:
                return self._run_supervised(tasks, run_task, commit)
            finally:
                self._phase_index += 1
        tracer = current_tracer()
        progress = current_progress()
        timings: list[tuple[int, float, float, int]] | None = None
        # The plain pool's starmap is opaque mid-phase; progress brackets
        # the phase (per-task advancement needs the supervised path).
        weight = (
            float(
                sum(
                    self.cost_model(beg, end) if self.cost_model else end - beg
                    for beg, end in tasks
                )
            )
            if tasks
            else 0.0
        )
        progress.phase_begin(weight)
        if self.workers == 1 or len(tasks) <= 1:
            # Still bulk-synchronous: run all, then commit all.
            results = []
            for beg, end in tasks:
                results.append(run_task(beg, end))
                progress.advance(
                    float(self.cost_model(beg, end))
                    if self.cost_model
                    else float(end - beg)
                )
        else:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                results = [run_task(beg, end) for beg, end in tasks]
            else:
                _ACTIVE_TASK_FN = run_task
                _POOL_LANES = min(self.workers, len(tasks))
                invoke = _invoke_task_traced if tracer.enabled else _invoke_task
                try:
                    with ctx.Pool(_POOL_LANES) as pool:
                        results = pool.starmap(invoke, tasks)
                finally:
                    _ACTIVE_TASK_FN = None
                if tracer.enabled:
                    timings = [timing for _, timing in results]
                    results = [result for result, _ in results]
        progress.phase_end()
        if timings is not None:
            lane_rss: dict[int, int] = {}
            for (beg, end), (lane, t0, t1, rss_kb) in zip(tasks, timings):
                tracer.add_span(
                    "task", t0, t1, lane=lane, depth=1, beg=beg, stop=end
                )
                if rss_kb > 0:
                    lane_rss[lane] = max(lane_rss.get(lane, 0), rss_kb)
            for lane, rss_kb in sorted(lane_rss.items()):
                tracer.gauge(f"memory.lane.{lane}.peak_rss_kb", rss_kb)
            tracer.count("backend.process.tasks", len(tasks))
        records: list[TaskCost] = []
        if tracer.enabled:
            with tracer.span("commit", lane=0, tasks=len(tasks)):
                for writes, cost in results:
                    commit(writes)
                    records.append(cost)
        else:
            for writes, cost in results:
                commit(writes)
                records.append(cost)
        return records
