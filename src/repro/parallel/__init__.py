"""Parallel runtime: machine models, task scheduling, execution backends."""

from .machine import CPU_SERVER, KNL_SERVER, MachineSpec
from .scheduler import (
    DEFAULT_DEGREE_THRESHOLD,
    degree_based_tasks,
    uniform_tasks,
)
from .simthread import assign_tasks, greedy_makespan
from .backend import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    commit_arc_states,
)
from .trace import ScheduleTrace, trace_stage

__all__ = [
    "MachineSpec",
    "CPU_SERVER",
    "KNL_SERVER",
    "DEFAULT_DEGREE_THRESHOLD",
    "degree_based_tasks",
    "uniform_tasks",
    "assign_tasks",
    "greedy_makespan",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "commit_arc_states",
    "ScheduleTrace",
    "trace_stage",
]
