"""Parallel runtime: machine models, scheduling, backends, supervision."""

from .machine import CPU_SERVER, KNL_SERVER, MachineSpec
from .scheduler import (
    DEFAULT_DEGREE_THRESHOLD,
    arc_range_cost_model,
    degree_based_tasks,
    uniform_tasks,
)
from .simthread import assign_tasks, greedy_makespan
from .chaos import (
    CRASH_EXIT_CODE,
    ChaosError,
    Fault,
    FaultKind,
    FaultPlan,
    ProcessCrashPoint,
)
from .supervisor import (
    ExecutionFaultError,
    FaultTolerancePolicy,
    PoisonTaskError,
    QuarantineReport,
    RecoveryEvent,
    ResumableAbort,
    RetryBudgetExhaustedError,
    Supervisor,
    TaskFailure,
)
from .backend import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    commit_arc_states,
)
from .trace import ScheduleTrace, trace_stage

__all__ = [
    "MachineSpec",
    "CPU_SERVER",
    "KNL_SERVER",
    "DEFAULT_DEGREE_THRESHOLD",
    "degree_based_tasks",
    "uniform_tasks",
    "arc_range_cost_model",
    "assign_tasks",
    "greedy_makespan",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "commit_arc_states",
    "ScheduleTrace",
    "trace_stage",
    # fault tolerance
    "FaultTolerancePolicy",
    "Supervisor",
    "RecoveryEvent",
    "TaskFailure",
    "QuarantineReport",
    "ExecutionFaultError",
    "RetryBudgetExhaustedError",
    "PoisonTaskError",
    "ResumableAbort",
    # fault injection
    "FaultKind",
    "Fault",
    "FaultPlan",
    "ChaosError",
    "ProcessCrashPoint",
    "CRASH_EXIT_CODE",
]
