"""Schedule traces: per-worker timelines of a priced stage.

Turns the greedy list schedule the machine model prices into a readable
report — which worker ran which tasks, per-worker load, and the imbalance
ratio — the tool behind the task-threshold ablation's narrative.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.records import StageRecord
from .machine import MachineSpec
from .simthread import assign_tasks

__all__ = ["ScheduleTrace", "trace_stage"]


@dataclass(frozen=True)
class ScheduleTrace:
    """Summary of one stage's simulated schedule."""

    stage_name: str
    workers: int
    loads: list[float]
    assignment: list[int]
    task_cycles: list[float]

    @property
    def makespan(self) -> float:
        return max(self.loads) if self.loads else 0.0

    @property
    def total_work(self) -> float:
        return sum(self.task_cycles)

    @property
    def imbalance(self) -> float:
        """Makespan / (total work / workers); 1.0 is a perfect balance."""
        if not self.task_cycles or self.total_work == 0:
            return 1.0
        ideal = self.total_work / self.workers
        return self.makespan / ideal if ideal else 1.0

    def tasks_per_worker(self) -> list[int]:
        counts = [0] * self.workers
        for w in self.assignment:
            counts[w] += 1
        return counts

    def report(self, max_workers: int = 8) -> str:
        lines = [
            f"schedule trace: {self.stage_name} on {self.workers} workers",
            f"  tasks={len(self.task_cycles)}, makespan={self.makespan:.0f} "
            f"cycles, imbalance={self.imbalance:.2f}x",
        ]
        counts = self.tasks_per_worker()
        for w in range(min(self.workers, max_workers)):
            lines.append(
                f"  worker {w}: {counts[w]} tasks, load {self.loads[w]:.0f}"
            )
        if self.workers > max_workers:
            lines.append(f"  ... {self.workers - max_workers} more workers")
        return "\n".join(lines)


def trace_stage(
    stage: StageRecord, machine: MachineSpec, threads: int
) -> ScheduleTrace:
    """Simulate and capture the schedule of one stage at a thread count."""
    cycles = [machine.task_cycles(t, threads) for t in stage.tasks]
    workers = max(1, round(machine.throughput(threads)))
    loads, assignment = assign_tasks(cycles, workers)
    return ScheduleTrace(
        stage_name=stage.name,
        workers=workers,
        loads=loads,
        assignment=assignment,
        task_cycles=cycles,
    )
