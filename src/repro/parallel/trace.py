"""Schedule traces: per-worker timelines of a priced stage.

Turns the greedy list schedule the machine model prices into a readable
report — which worker ran which tasks, per-worker load, and the imbalance
ratio — the tool behind the task-threshold ablation's narrative.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.records import StageRecord
from .machine import MachineSpec
from .simthread import assign_tasks

__all__ = ["ScheduleTrace", "trace_stage"]


@dataclass(frozen=True)
class ScheduleTrace:
    """Summary of one stage's simulated schedule."""

    stage_name: str
    workers: int
    loads: list[float]
    assignment: list[int]
    task_cycles: list[float]

    @property
    def makespan(self) -> float:
        return max(self.loads) if self.loads else 0.0

    @property
    def total_work(self) -> float:
        return sum(self.task_cycles)

    @property
    def imbalance(self) -> float:
        """Makespan / (total work / workers); 1.0 is a perfect balance."""
        if not self.task_cycles or self.total_work == 0:
            return 1.0
        ideal = self.total_work / self.workers
        return self.makespan / ideal if ideal else 1.0

    def tasks_per_worker(self) -> list[int]:
        counts = [0] * self.workers
        for w in self.assignment:
            counts[w] += 1
        return counts

    def imbalance_contributions(self) -> list[float]:
        """Per-worker deviation from the ideal load, as a fraction.

        ``contribution[w] = (load[w] - ideal) / ideal`` where ``ideal =
        total_work / workers``: positive for overloaded workers (the
        makespan-setting straggler has the largest value), negative for
        underloaded ones, all zeros at perfect balance.  Summing the
        positive contributions bounds the parallel-time loss the stage's
        imbalance costs.
        """
        if not self.task_cycles or self.total_work == 0:
            return [0.0] * self.workers
        ideal = self.total_work / self.workers
        return [(load - ideal) / ideal for load in self.loads]

    def worker_intervals(self) -> list[tuple[int, int, float, float]]:
        """Replay the schedule into ``(task, worker, begin, end)`` rows.

        Workers run their assigned tasks back to back in submission order
        (greedy list scheduling has no intra-stage idle gaps), so each
        worker's clock advances by its tasks' cycles; the final clocks
        equal :attr:`loads`.  This is the per-worker timeline the Chrome
        exporter renders as one swimlane per virtual worker.
        """
        clocks = [0.0] * self.workers
        intervals: list[tuple[int, int, float, float]] = []
        for task, (worker, cycles) in enumerate(
            zip(self.assignment, self.task_cycles)
        ):
            begin = clocks[worker]
            end = begin + cycles
            clocks[worker] = end
            intervals.append((task, worker, begin, end))
        return intervals

    def report(self, max_workers: int = 8) -> str:
        lines = [
            f"schedule trace: {self.stage_name} on {self.workers} workers",
            f"  tasks={len(self.task_cycles)}, makespan={self.makespan:.0f} "
            f"cycles, imbalance={self.imbalance:.2f}x",
        ]
        counts = self.tasks_per_worker()
        contributions = self.imbalance_contributions()
        for w in range(min(self.workers, max_workers)):
            lines.append(
                f"  worker {w}: {counts[w]} tasks, load {self.loads[w]:.0f}"
                f" ({contributions[w]:+.1%} vs ideal)"
            )
        if self.workers > max_workers:
            lines.append(f"  ... {self.workers - max_workers} more workers")
        return "\n".join(lines)


def trace_stage(
    stage: StageRecord, machine: MachineSpec, threads: int
) -> ScheduleTrace:
    """Simulate and capture the schedule of one stage at a thread count."""
    cycles = [machine.task_cycles(t, threads) for t in stage.tasks]
    workers = max(1, round(machine.throughput(threads)))
    loads, assignment = assign_tasks(cycles, workers)
    return ScheduleTrace(
        stage_name=stage.name,
        workers=workers,
        loads=loads,
        assignment=assignment,
        task_cycles=cycles,
    )
