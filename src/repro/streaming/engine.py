"""Batched streaming maintenance of the GS*-Index and its query state.

The :class:`StreamingEngine` owns one evolving graph and keeps three
layers consistent across batches of edge edits:

1. **Index** — :meth:`~repro.core.dynamic_index.DynamicGSIndex.apply_batch`
   repairs only the affected-arc frontier (arcs incident to a vertex
   whose adjacency changed) and refreshes neighbor orders for the
   touched vertices and their neighbors.
2. **SimilarityStore** — every snapshot has its own content fingerprint,
   so a batch *moves* the store entry: overlaps of arcs untouched by the
   batch are migrated to the new fingerprint's entry (their exact values
   cannot have changed), touched arcs are deliberately dropped
   (invalidated), frontier arcs are re-recorded from the just-repaired
   index, and the superseded entry is discarded.
3. **Materialized (ε, µ) points** — for every point a query has
   materialized, the engine caches each vertex's ε-similar prefix.  A
   batch re-derives prefixes only for the dirty vertices, then rebuilds
   roles / core labels / non-core pairs from the cached prefixes — a
   scoped re-cluster that is bit-identical to a from-scratch
   :class:`~repro.core.gsindex.GSIndex` query (verified by the
   differential harness in :mod:`repro.streaming.differential`).

Only the prefix-repair step scales with the batch's footprint; the
label rebuild is a cheap union-find over cached prefixes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..cache.store import SimilarityStore, graph_fingerprint
from ..core.dynamic_index import BatchMaintenance, DynamicGSIndex
from ..core.result import ClusteringResult
from ..graph.csr import CSRGraph
from ..graph.dynamic import DynamicGraph
from ..metrics.records import RunRecord, StageRecord, TaskCost
from ..obs.tracer import current_tracer
from ..types import CORE, NONCORE, ScanParams
from ..unionfind import UnionFind
from .edits import EditBatch

__all__ = ["BatchReport", "StreamingEngine"]


@dataclass(frozen=True)
class BatchReport:
    """Everything one applied batch changed, for ledgers and callers."""

    batch: int
    inserted: int
    removed: int
    skipped: int
    arcs_repaired: int
    vertices_reclustered: int
    points_repaired: int
    overlaps_carried: int
    fingerprint: str
    num_vertices: int
    num_edges: int
    wall_seconds: float

    @property
    def effective(self) -> int:
        return self.inserted + self.removed

    def as_dict(self) -> dict:
        return {
            "batch": self.batch,
            "inserted": self.inserted,
            "removed": self.removed,
            "skipped": self.skipped,
            "arcs_repaired": self.arcs_repaired,
            "vertices_reclustered": self.vertices_reclustered,
            "points_repaired": self.points_repaired,
            "overlaps_carried": self.overlaps_carried,
            "fingerprint": self.fingerprint,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "wall_seconds": self.wall_seconds,
        }


class _PointState:
    """One materialized (ε, µ) point: per-vertex similar prefixes + result.

    A vertex's prefix depends only on its own neighbor order and the
    similarity keys of its incident arcs, so after a batch only the
    dirty vertices' prefixes can change; everything downstream (roles,
    labels, pairs) is rebuilt from the cached prefixes.
    """

    __slots__ = ("params", "eps_num", "eps_den", "prefixes", "result")

    def __init__(self, params: ScanParams, index: DynamicGSIndex) -> None:
        self.params = params
        frac = params.eps_fraction
        self.eps_num = frac.numerator * frac.numerator
        self.eps_den = frac.denominator * frac.denominator
        n = index.graph.num_vertices
        self.prefixes: list[list[int]] = [
            index.similar_prefix(u, self.eps_num, self.eps_den)
            for u in range(n)
        ]
        self.result = self._rebuild()

    def repair(self, index: DynamicGSIndex, dirty) -> int:
        """Re-derive the dirty vertices' prefixes, rebuild the result."""
        for u in dirty:
            self.prefixes[u] = index.similar_prefix(
                u, self.eps_num, self.eps_den
            )
        self.result = self._rebuild()
        return len(dirty)

    def _rebuild(self) -> ClusteringResult:
        """Roles / labels / pairs from cached prefixes.

        Mirrors :meth:`repro.core.gsindex.GSIndex.query` exactly — core
        iff the similar prefix reaches µ, ascending-core union order,
        cluster id = first core seen per union-find root — so the
        result is bit-identical to a from-scratch index build.
        """
        t0 = time.perf_counter()
        mu = self.params.mu
        prefixes = self.prefixes
        n = len(prefixes)
        lens = np.fromiter(
            (len(p) for p in prefixes), count=n, dtype=np.int64
        )
        roles = np.where(lens >= mu, CORE, NONCORE).astype(np.int8)

        uf = UnionFind(n)
        pairs: list[tuple[int, int]] = []
        arcs_walked = n
        for u in np.flatnonzero(roles == CORE).tolist():
            for v in prefixes[u]:
                arcs_walked += 1
                if roles[v] == CORE:
                    if u < v:
                        uf.union(u, v)
                else:
                    pairs.append((u, v))

        cluster_id: dict[int, int] = {}
        labels = np.full(n, -1, dtype=np.int64)
        for u in np.flatnonzero(roles == CORE).tolist():
            root = uf.find(u)
            if root not in cluster_id:
                cluster_id[root] = u
            labels[u] = cluster_id[root]
        pair_rows = [(int(labels[u]), v) for u, v in pairs]

        record = RunRecord(
            algorithm="StreamingEngine (recluster)",
            stages=[
                StageRecord(
                    "scoped recluster",
                    [TaskCost(arcs=arcs_walked, atomics=uf.num_unions)],
                )
            ],
            wall_seconds=time.perf_counter() - t0,
        )
        record.apportion_wall()
        return ClusteringResult(
            algorithm="StreamingEngine",
            params=self.params,
            roles=roles,
            core_labels=labels,
            noncore_pairs=pair_rows,
            record=record,
        )


class StreamingEngine:
    """Serve exact (ε, µ) queries while batches of edits stream in."""

    def __init__(
        self,
        graph: CSRGraph | DynamicGraph,
        *,
        store: SimilarityStore | None = None,
        record_frontier: bool = True,
        label: str | None = None,
    ) -> None:
        if isinstance(graph, DynamicGraph):
            self._dyn = graph
            snapshot = graph.snapshot()
        else:
            snapshot = graph
            self._dyn = DynamicGraph.from_csr(graph)
        self._index = DynamicGSIndex(self._dyn)
        self._index.refresh()
        self.store = store
        self.record_frontier = record_frontier
        self.label = label
        self._snapshot = snapshot
        self._fingerprint = graph_fingerprint(snapshot)
        self._points: dict[tuple, _PointState] = {}
        self.batches_applied = 0
        self.edits_applied = 0
        self.edits_skipped = 0
        self.arcs_repaired = 0
        self.vertices_reclustered = 0
        self.overlaps_carried = 0
        if self.store is not None:
            self._seed_store()

    # -- identity --------------------------------------------------------

    @property
    def graph(self) -> DynamicGraph:
        return self._dyn

    @property
    def snapshot(self) -> CSRGraph:
        """CSR snapshot of the current state (refreshed per batch)."""
        return self._snapshot

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def num_points(self) -> int:
        return len(self._points)

    # -- queries ---------------------------------------------------------

    def _point_key(self, params: ScanParams) -> tuple:
        frac = params.eps_fraction
        return (frac.numerator, frac.denominator, params.mu)

    def query(self, params: ScanParams) -> ClusteringResult:
        """Exact clustering at ``params``, memoized and batch-maintained."""
        key = self._point_key(params)
        state = self._points.get(key)
        if state is None:
            self._index.refresh()
            state = _PointState(params, self._index)
            self._points[key] = state
        return state.result

    def materialized(self) -> dict[tuple, ClusteringResult]:
        """Current results for every materialized point (post-repair)."""
        return {key: st.result for key, st in self._points.items()}

    # -- batches ---------------------------------------------------------

    def apply(self, edits) -> BatchReport:
        """Apply one batch of edits and repair index, store and points."""
        batch = EditBatch.coerce(edits)
        t0 = time.perf_counter()
        tracer = current_tracer()
        with tracer.span(
            "stream:apply",
            batch=self.batches_applied,
            ops=len(batch),
            fingerprint=self._fingerprint[:12],
        ):
            stats = self._index.apply_batch(batch)
            self._index.refresh()

            carried = 0
            if stats.effective:
                old_snapshot = self._snapshot
                old_fingerprint = self._fingerprint
                self._snapshot = self._dyn.snapshot()
                self._fingerprint = graph_fingerprint(self._snapshot)
                if self.store is not None:
                    carried = self._migrate_store(
                        old_snapshot, old_fingerprint, stats
                    )

            points_repaired = 0
            reclustered = 0
            if stats.dirty:
                for state in self._points.values():
                    reclustered += state.repair(self._index, stats.dirty)
                    points_repaired += 1

        wall = time.perf_counter() - t0
        self.batches_applied += 1
        self.edits_applied += stats.effective
        self.edits_skipped += stats.skipped
        self.arcs_repaired += len(stats.frontier)
        self.vertices_reclustered += reclustered
        self.overlaps_carried += carried
        if tracer.enabled:
            tracer.count("stream.batches", 1)
            tracer.count("stream.edits_applied", stats.effective)
            tracer.count("stream.edits_skipped", stats.skipped)
            tracer.count("stream.arcs_repaired", len(stats.frontier))
            tracer.count("stream.reclustered", reclustered)
            tracer.count("stream.overlaps_carried", carried)
        return BatchReport(
            batch=self.batches_applied - 1,
            inserted=stats.inserted,
            removed=stats.removed,
            skipped=stats.skipped,
            arcs_repaired=len(stats.frontier),
            vertices_reclustered=reclustered,
            points_repaired=points_repaired,
            overlaps_carried=carried,
            fingerprint=self._fingerprint,
            num_vertices=self._snapshot.num_vertices,
            num_edges=self._snapshot.num_edges,
            wall_seconds=wall,
        )

    # -- store maintenance ----------------------------------------------

    def _seed_store(self) -> None:
        """Commit the freshly built index's overlaps for the start state."""
        entry = self.store.entry_for(self._snapshot)
        graph = self._snapshot
        arcs: list[int] = []
        overlaps: list[int] = []
        for (u, v), overlap in self._index.overlaps():
            arcs.append(graph.edge_offset(u, v))
            overlaps.append(overlap)
        if arcs:
            entry.record(
                np.asarray(arcs, dtype=np.int64),
                np.asarray(overlaps, dtype=np.int64),
            )

    def _migrate_store(
        self,
        old_snapshot: CSRGraph,
        old_fingerprint: str,
        stats: BatchMaintenance,
    ) -> int:
        """Move the store entry across one batch's fingerprint change.

        Exactness argument: a batch only mutates the adjacency of its
        touched vertices, so for every arc whose endpoints are both
        untouched the source vertex's neighbor list is byte-identical in
        both snapshots — the arc's position merely shifts by the source's
        offset delta, and its overlap (a function of the two unchanged
        closed neighborhoods) carries over verbatim.  Arcs incident to a
        touched vertex are *not* migrated: their old values may be stale,
        so they miss until recomputed (``record_frontier`` re-records
        them immediately from the just-repaired index).
        """
        store = self.store
        new_snapshot = self._snapshot
        old_entry = store.peek(old_fingerprint)
        new_entry = store.entry_for(new_snapshot)
        carried = 0
        if old_entry is not None and old_entry.covered and stats.touched:
            n = new_snapshot.num_vertices
            touched_mask = np.zeros(n, dtype=bool)
            touched_mask[list(stats.touched)] = True
            src_new = np.repeat(
                np.arange(n, dtype=np.int64), new_snapshot.degrees
            )
            dst_new = new_snapshot.dst.astype(np.int64)
            # Forward arcs only: record() mirrors onto the reverse arc.
            keep = (
                ~touched_mask[src_new]
                & ~touched_mask[dst_new]
                & (src_new < dst_new)
            )
            arcs_new = np.flatnonzero(keep)
            if arcs_new.size:
                shift = old_snapshot.offsets[src_new[arcs_new]].astype(
                    np.int64
                ) - new_snapshot.offsets[src_new[arcs_new]].astype(np.int64)
                arcs_old = arcs_new + shift
                covered = old_entry.coverage[arcs_old]
                if np.any(covered):
                    sel_new = arcs_new[covered]
                    new_entry.record(
                        sel_new, old_entry.overlap[arcs_old[covered]]
                    )
                    carried = int(sel_new.size)
        if self.record_frontier and stats.frontier:
            arcs = np.fromiter(
                (
                    new_snapshot.edge_offset(u, v)
                    for u, v in stats.frontier
                ),
                count=len(stats.frontier),
                dtype=np.int64,
            )
            overlaps = np.fromiter(
                (self._index.overlap(u, v) for u, v in stats.frontier),
                count=len(stats.frontier),
                dtype=np.int64,
            )
            new_entry.record(arcs, overlaps)
        store.discard(old_fingerprint)
        return carried

    # -- reporting -------------------------------------------------------

    def stats(self) -> dict:
        """JSON-able counters over the engine's lifetime."""
        return {
            "fingerprint": self._fingerprint,
            "label": self.label,
            "num_vertices": self._snapshot.num_vertices,
            "num_edges": self._snapshot.num_edges,
            "batches_applied": self.batches_applied,
            "edits_applied": self.edits_applied,
            "edits_skipped": self.edits_skipped,
            "arcs_repaired": self.arcs_repaired,
            "vertices_reclustered": self.vertices_reclustered,
            "overlaps_carried": self.overlaps_carried,
            "points_materialized": len(self._points),
        }
