"""Streaming clustering: batched index maintenance + differential checks.

Public surface:

* :class:`~repro.streaming.engine.StreamingEngine` — apply batches of
  edge edits in one repair pass while serving exact warm (ε, µ) queries;
* :class:`~repro.streaming.edits.EditScript` /
  :func:`~repro.streaming.edits.random_edit_script` — the edit-script
  data model, text format and seeded generator;
* :func:`~repro.streaming.differential.replay_differential` /
  :func:`~repro.streaming.differential.build_corpus` — the randomized
  differential harness that makes the incremental path trustworthy.
"""

from .edits import EditBatch, EditOp, EditScript, random_edit_script
from .engine import BatchReport, StreamingEngine
from .differential import (
    CorpusCase,
    DifferentialMismatch,
    ReplayReport,
    build_corpus,
    corpus_fixtures,
    replay_differential,
)

__all__ = [
    "BatchReport",
    "CorpusCase",
    "DifferentialMismatch",
    "EditBatch",
    "EditOp",
    "EditScript",
    "ReplayReport",
    "StreamingEngine",
    "build_corpus",
    "corpus_fixtures",
    "random_edit_script",
    "replay_differential",
]
