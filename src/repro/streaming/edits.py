"""Edit scripts: batched edge insert/delete sequences with a file format.

An :class:`EditScript` is an ordered list of :class:`EditBatch`\\ es, each
an ordered list of :class:`EditOp`\\ s — the unit the
:class:`~repro.streaming.engine.StreamingEngine` applies in one repair
pass.  The text format is line-oriented so scripts diff and version
well::

    #! {"seed": 7, "kind": "mixed", "num_vertices": 200}
    batch
    + 3 17
    - 41 9
    batch
    + 0 5

``+ u v`` inserts, ``- u v`` removes, ``batch`` starts a new batch, and
``#`` lines are comments (``#!`` carries optional JSON metadata).

:func:`random_edit_script` is the seeded generator behind the
differential corpus: it tracks a simulated copy of the graph so deletes
target existing edges and inserts target non-edges, with a small
deliberate no-op rate to exercise the skipped-edit paths.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, NamedTuple

from ..graph.csr import CSRGraph
from ..graph.dynamic import DynamicGraph

__all__ = [
    "EditOp",
    "EditBatch",
    "EditScript",
    "random_edit_script",
]


class EditOp(NamedTuple):
    """One undirected edge edit: insert (``insert=True``) or remove."""

    insert: bool
    u: int
    v: int

    @property
    def pair(self) -> tuple[int, int]:
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)

    def inverse(self) -> "EditOp":
        return EditOp(not self.insert, self.u, self.v)

    def as_line(self) -> str:
        return f"{'+' if self.insert else '-'} {self.u} {self.v}"


_OP_KIND = {
    "+": True,
    "-": False,
    "insert": True,
    "remove": False,
    "delete": False,
    "i": True,
    "d": False,
    True: True,
    False: False,
}


def _coerce_op(op) -> EditOp:
    if isinstance(op, EditOp):
        return op
    kind, u, v = op
    if isinstance(kind, str):
        kind = kind.strip().lower()
    try:
        insert = _OP_KIND[kind]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown edit kind {kind!r}; expected one of "
            "+/-/insert/remove/delete or a bool"
        ) from None
    return EditOp(insert, int(u), int(v))


@dataclass
class EditBatch:
    """An ordered group of edits applied in one index-repair pass."""

    ops: list[EditOp] = field(default_factory=list)

    @classmethod
    def coerce(cls, edits) -> "EditBatch":
        """Accept an :class:`EditBatch`, an iterable of op triples, or a
        ``{"insert": [[u, v], ...], "remove": [[u, v], ...]}`` mapping
        (the service's JSON body shape; inserts apply first)."""
        if isinstance(edits, EditBatch):
            return edits
        if isinstance(edits, dict):
            ops = [
                EditOp(True, int(u), int(v))
                for u, v in edits.get("insert", ())
            ]
            ops += [
                EditOp(False, int(u), int(v))
                for u, v in edits.get("remove", ())
            ]
            extra = set(edits) - {"insert", "remove"}
            if extra:
                raise ValueError(
                    f"unknown edit-batch key(s): {sorted(extra)}"
                )
            return cls(ops)
        return cls([_coerce_op(op) for op in edits])

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[EditOp]:
        return iter(self.ops)

    def as_triples(self) -> list[list]:
        """The ordered JSON-able ``[["+"/"-", u, v], ...]`` form.

        Round-trips exactly through :meth:`coerce` (order preserved),
        which is what lets the service WAL log an accepted batch and
        recovery re-apply it to a bit-identical result.
        """
        return [
            ["+" if op.insert else "-", op.u, op.v] for op in self.ops
        ]

    def inverse(self) -> "EditBatch":
        """The batch undoing this one (reversed order, flipped kinds)."""
        return EditBatch([op.inverse() for op in reversed(self.ops)])


@dataclass
class EditScript:
    """A whole edit workload: batches plus optional JSON-able metadata."""

    batches: list[EditBatch] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[EditBatch]:
        return iter(self.batches)

    @property
    def num_ops(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def inverse(self) -> "EditScript":
        """The script undoing this one batch-by-batch, in reverse."""
        return EditScript(
            [batch.inverse() for batch in reversed(self.batches)],
            meta={**self.meta, "inverse": True},
        )

    # -- text format -----------------------------------------------------

    def dumps(self) -> str:
        lines: list[str] = []
        if self.meta:
            lines.append("#! " + json.dumps(self.meta, sort_keys=True))
        for batch in self.batches:
            lines.append("batch")
            lines.extend(op.as_line() for op in batch)
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(cls, text: str) -> "EditScript":
        meta: dict = {}
        batches: list[EditBatch] = []
        current: list[EditOp] | None = None
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#!"):
                meta.update(json.loads(line[2:]))
                continue
            if line.startswith("#"):
                continue
            if line == "batch":
                current = []
                batches.append(EditBatch(current))
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(
                    f"line {lineno}: expected '+/- u v', got {raw!r}"
                )
            if current is None:
                # Ops before any explicit ``batch`` line form a first
                # implicit batch.
                current = []
                batches.append(EditBatch(current))
            current.append(_coerce_op(parts))
        return cls(batches, meta=meta)

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.dumps(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path) -> "EditScript":
        return cls.loads(Path(path).read_text(encoding="utf-8"))


def _sample_absent_pair(
    rng: random.Random, sim: DynamicGraph
) -> tuple[int, int] | None:
    n = sim.num_vertices
    if n < 2:
        return None
    for _ in range(64):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not sim.has_edge(u, v):
            return (u, v)
    return None


def random_edit_script(
    graph: CSRGraph | DynamicGraph,
    *,
    kind: str = "mixed",
    batches: int = 8,
    batch_size: int = 16,
    seed: int = 0,
    noop_rate: float = 0.05,
) -> EditScript:
    """A seeded random edit script valid against ``graph``'s start state.

    ``kind`` is ``"insert"`` (all insertions), ``"delete"`` (all
    removals of existing edges) or ``"mixed"``.  The generator tracks a
    simulated copy of the graph so removals target edges that exist and
    insertions target non-edges at apply time; ``noop_rate`` of the ops
    are deliberate duplicates/absent-removals so the skipped-edit path
    stays exercised.  Deterministic for a given ``(graph, kind, batches,
    batch_size, seed)``.
    """
    if kind not in ("insert", "delete", "mixed"):
        raise ValueError(f"unknown script kind {kind!r}")
    rng = random.Random(seed)
    sim = (
        DynamicGraph.from_csr(graph)
        if isinstance(graph, CSRGraph)
        else DynamicGraph.from_csr(graph.snapshot())
    )
    edges: list[tuple[int, int]] = [
        (u, v)
        for u in range(sim.num_vertices)
        for v in sim.neighbors(u)
        if u < v
    ]
    edge_pos = {pair: i for i, pair in enumerate(edges)}

    def pop_edge(pair: tuple[int, int]) -> None:
        i = edge_pos.pop(pair)
        last = edges.pop()
        if i < len(edges):
            edges[i] = last
            edge_pos[last] = i

    def push_edge(pair: tuple[int, int]) -> None:
        edge_pos[pair] = len(edges)
        edges.append(pair)

    script = EditScript(
        meta={
            "kind": kind,
            "seed": seed,
            "batches": batches,
            "batch_size": batch_size,
            "num_vertices": sim.num_vertices,
            "num_edges_start": sim.num_edges,
        }
    )
    for _ in range(batches):
        ops: list[EditOp] = []
        while len(ops) < batch_size:
            if kind == "insert":
                want_insert = True
            elif kind == "delete":
                want_insert = False
            else:
                want_insert = rng.random() < 0.5
            if rng.random() < noop_rate:
                # A deliberate no-op: duplicate insert or absent remove.
                if want_insert and edges:
                    u, v = edges[rng.randrange(len(edges))]
                    ops.append(EditOp(True, u, v))
                    continue
                if not want_insert:
                    pair = _sample_absent_pair(rng, sim)
                    if pair is not None:
                        ops.append(EditOp(False, *pair))
                        continue
            if want_insert:
                pair = _sample_absent_pair(rng, sim)
                if pair is None:
                    if not edges:
                        break
                    want_insert = False
            if not want_insert:
                if not edges:
                    if kind == "delete":
                        break
                    pair = _sample_absent_pair(rng, sim)
                    if pair is None:
                        break
                    want_insert = True
                else:
                    pair = edges[rng.randrange(len(edges))]
            u, v = pair
            if want_insert:
                sim.insert_edge(u, v)
                push_edge((min(u, v), max(u, v)))
                ops.append(EditOp(True, u, v))
            else:
                sim.remove_edge(u, v)
                pop_edge((min(u, v), max(u, v)))
                ops.append(EditOp(False, u, v))
        script.batches.append(EditBatch(ops))
    return script
