"""Differential verification of the streaming engine.

Incremental maintenance earns trust differentially: replay an edit
script through the :class:`~repro.streaming.engine.StreamingEngine` and,
at **every** batch checkpoint, rebuild a from-scratch
:class:`~repro.core.gsindex.GSIndex` over the engine's snapshot and
assert bit-identity — roles, core labels, non-core pairs — at every
requested (ε, µ) point (plus fingerprint equality of the snapshot
against an independently maintained plain :class:`DynamicGraph`).

:func:`replay_differential` also times both sides, so the CI gate reads
its per-batch speedup (incremental apply + query vs. full rebuild +
query) straight out of the :class:`ReplayReport`.

:func:`build_corpus` is the fixed-seed corpus behind
``benchmarks/check_stream.py`` and the property tests: three fixture
families (ER / LFR / powerlaw) × three script kinds
(insert / delete / mixed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cache.store import SimilarityStore, graph_fingerprint
from ..core.gsindex import GSIndex
from ..graph.csr import CSRGraph
from ..graph.dynamic import DynamicGraph
from ..graph.generators import chung_lu, erdos_renyi, lfr_graph
from ..types import ScanParams
from .edits import EditScript, random_edit_script
from .engine import StreamingEngine

__all__ = [
    "CorpusCase",
    "DifferentialMismatch",
    "ReplayReport",
    "build_corpus",
    "corpus_fixtures",
    "replay_differential",
]

#: Default (ε, µ) checkpoints — two ε regimes, two µ regimes.
DEFAULT_POINTS = (ScanParams(0.4, 2), ScanParams(0.7, 3))


class DifferentialMismatch(AssertionError):
    """The engine diverged from a from-scratch rebuild at a checkpoint."""

    def __init__(self, batch: int, what: str, detail: str = "") -> None:
        self.batch = batch
        self.what = what
        message = f"batch {batch}: {what}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


@dataclass
class ReplayReport:
    """Outcome of one differential replay (all checkpoints verified)."""

    fixture: str
    kind: str
    batches: int = 0
    ops_applied: int = 0
    ops_skipped: int = 0
    arcs_repaired: int = 0
    points: int = 0
    setup_seconds: float = 0.0
    incremental_seconds: float = 0.0
    rebuild_seconds: float = 0.0
    checkpoints: list[dict] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Full-recompute wall over incremental wall, per-batch steady
        state (one-time engine setup is excluded: a streaming deployment
        pays it once, the rebuild side pays construction every batch)."""
        if self.incremental_seconds <= 0.0:
            return float("inf")
        return self.rebuild_seconds / self.incremental_seconds

    @property
    def edits_per_second(self) -> float:
        if self.incremental_seconds <= 0.0:
            return float("inf")
        return self.ops_applied / self.incremental_seconds

    def as_dict(self) -> dict:
        return {
            "fixture": self.fixture,
            "kind": self.kind,
            "batches": self.batches,
            "ops_applied": self.ops_applied,
            "ops_skipped": self.ops_skipped,
            "arcs_repaired": self.arcs_repaired,
            "points": self.points,
            "setup_seconds": self.setup_seconds,
            "incremental_seconds": self.incremental_seconds,
            "rebuild_seconds": self.rebuild_seconds,
            "speedup": self.speedup,
            "edits_per_second": self.edits_per_second,
        }


def replay_differential(
    graph: CSRGraph,
    script: EditScript,
    points=DEFAULT_POINTS,
    *,
    store: SimilarityStore | None = None,
    fixture: str = "graph",
    kind: str | None = None,
    collect_checkpoints: bool = False,
) -> ReplayReport:
    """Replay ``script`` and verify every batch checkpoint bit-for-bit.

    Raises :class:`DifferentialMismatch` on the first divergence —
    snapshot fingerprint vs. an independently maintained plain
    :class:`DynamicGraph`, or any (ε, µ) clustering vs. a from-scratch
    :class:`GSIndex` rebuild.  Timings for the incremental side (batch
    apply + warm queries) and the rebuild side (index construction +
    queries) accumulate in the returned :class:`ReplayReport`.
    """
    points = [p if isinstance(p, ScanParams) else ScanParams(*p) for p in points]
    engine = StreamingEngine(graph, store=store)
    shadow = DynamicGraph.from_csr(graph)
    report = ReplayReport(
        fixture=fixture,
        kind=kind if kind is not None else str(script.meta.get("kind", "?")),
        points=len(points),
    )

    # Materialize every point once up front so later queries measure the
    # warm serving path a streaming deployment actually runs.
    t0 = time.perf_counter()
    for params in points:
        engine.query(params)
    report.setup_seconds += time.perf_counter() - t0

    for batch_no, batch in enumerate(script):
        t0 = time.perf_counter()
        applied = engine.apply(batch)
        incremental = {
            id(params): engine.query(params) for params in points
        }
        report.incremental_seconds += time.perf_counter() - t0
        report.batches += 1
        report.ops_applied += applied.effective
        report.ops_skipped += applied.skipped
        report.arcs_repaired += applied.arcs_repaired

        # Shadow graph: same edits through the plain DynamicGraph.
        for op in batch:
            if op.insert:
                shadow.insert_edge(op.u, op.v)
            else:
                shadow.remove_edge(op.u, op.v)
        shadow_snapshot = shadow.snapshot()
        if graph_fingerprint(shadow_snapshot) != applied.fingerprint:
            raise DifferentialMismatch(
                batch_no,
                "snapshot fingerprint diverged from shadow graph",
                f"engine={applied.fingerprint[:12]}",
            )

        # From-scratch rebuild at this checkpoint, every point.
        t0 = time.perf_counter()
        reference_index = GSIndex(engine.snapshot)
        references = {
            id(params): reference_index.query(params) for params in points
        }
        report.rebuild_seconds += time.perf_counter() - t0

        for params in points:
            got = incremental[id(params)]
            want = references[id(params)]
            if not want.same_clustering(got):
                raise DifferentialMismatch(
                    batch_no,
                    "clustering diverged from from-scratch rebuild",
                    f"eps={float(params.eps)} mu={params.mu}",
                )
        if collect_checkpoints:
            report.checkpoints.append(
                {
                    "batch": batch_no,
                    "fingerprint": applied.fingerprint,
                    "num_edges": applied.num_edges,
                    "arcs_repaired": applied.arcs_repaired,
                }
            )
    return report


# ---------------------------------------------------------------------------
# The fixed-seed corpus
# ---------------------------------------------------------------------------

SCRIPT_KINDS = ("insert", "delete", "mixed")


def corpus_fixtures(scale: float = 1.0, seed: int = 2026) -> dict[str, CSRGraph]:
    """The three fixture families the corpus replays scripts on."""
    n_er = max(24, int(120 * scale))
    n_lfr = max(48, int(160 * scale))
    n_pl = max(24, int(120 * scale))
    lfr, _ = lfr_graph(
        n_lfr, avg_degree=8.0, mu_mix=0.2, min_community=8, seed=seed + 1
    )
    weights = [(k + 1) ** -0.8 for k in range(n_pl)]
    return {
        "er": erdos_renyi(n_er, int(4 * n_er), seed=seed),
        "lfr": lfr,
        "powerlaw": chung_lu(weights, int(3 * n_pl), seed=seed + 2),
    }


@dataclass(frozen=True)
class CorpusCase:
    """One corpus cell: a fixture graph plus a seeded edit script."""

    fixture: str
    kind: str
    graph: CSRGraph
    script: EditScript

    def describe(self) -> dict:
        return {
            "fixture": self.fixture,
            "kind": self.kind,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
            "batches": len(self.script),
            "ops": self.script.num_ops,
            "meta": dict(self.script.meta),
        }


def build_corpus(
    *,
    scale: float = 1.0,
    seed: int = 2026,
    batches: int = 6,
    batch_size: int = 12,
    kinds=SCRIPT_KINDS,
) -> list[CorpusCase]:
    """The fixed-seed differential corpus: fixtures × script kinds."""
    cases: list[CorpusCase] = []
    fixtures = corpus_fixtures(scale, seed)
    for f_no, (fixture, graph) in enumerate(sorted(fixtures.items())):
        for k_no, kind in enumerate(kinds):
            script = random_edit_script(
                graph,
                kind=kind,
                batches=batches,
                batch_size=batch_size,
                seed=seed + 10 * f_no + k_no,
            )
            script.meta["fixture"] = fixture
            cases.append(
                CorpusCase(fixture=fixture, kind=kind, graph=graph, script=script)
            )
    return cases
