"""Command-line interface: ``repro-scan`` / ``python -m repro``.

Subcommands
-----------
cluster
    Cluster an edge-list (or binary CSR) graph file and print the
    summary, roles and clusters; optionally save the result (.npz).
compare
    Run every algorithm on a graph, assert they produce the identical
    clustering, and print a work/time comparison table.
sweep
    Cluster over an (eps, mu) grid and print/export one row per cell.
stream
    Apply an edit-script file in batches, serving warm (eps, mu)
    queries between batches (see docs/streaming.md).
stats
    Print Table-1-style statistics for a graph file.
generate
    Write a synthetic evaluation graph to an edge-list file.
bench
    Run one of the paper-figure experiments and print its table.
serve
    Start the always-on clustering service (HTTP, see docs/service.md).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack, contextmanager

import numpy as np

from . import __version__, api
from .bench.experiments import EXPERIMENTS
from .checkpoint import ResumeMismatchError
from .graph import graph_stats, load_graph, write_edge_list
from .graph.generators import (
    REAL_WORLD_STANDINS,
    real_world_standin,
    roll_graph,
)
from .obs import TRACE_FORMATS, Tracer, use_tracer, write_trace
from .options import BackendKind, ExecMode, ExecutionOptions, Kernel
from .parallel import (
    ExecutionFaultError,
    FaultPlan,
    PoisonTaskError,
    ResumableAbort,
)
from .similarity import EXEC_MODES, KERNELS
from .types import CORE, HUB, OUTLIER, ScanParams

#: Exit code for a run the fault-tolerance layer could not complete
#: (retry budget exhausted or a task quarantined as poison).
EXIT_EXECUTION_FAULT = 3
#: Exit code for ``--resume`` against a checkpoint directory that records
#: a different graph / parameters / algorithm.
EXIT_RESUME_MISMATCH = 4


def _print_fingerprint(graph) -> None:
    """One ``fingerprint:`` line so every subcommand names the graph it
    ran on — the same CSR content key the cache, checkpoints and the
    service registry use."""
    from .cache import graph_fingerprint

    print(f"fingerprint: {graph_fingerprint(graph)}")


def _cache_store(args: argparse.Namespace):
    """The disk-backed similarity store the flags ask for, or ``None``.

    ``cluster`` / ``compare`` cache only when ``--cache-dir`` is given
    (a single run has nothing to reuse from an empty in-memory store);
    ``--no-cache`` wins over everything.
    """
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None or getattr(args, "no_cache", False):
        return None
    from .cache import SimilarityStore

    return SimilarityStore(cache_dir=cache_dir)


def _report_cache(store) -> None:
    """One summary line of store traffic after a cached run."""
    if store is None:
        return
    spilled = store.spill()
    stats = store.stats()
    line = (
        f"cache: {stats.hits} hits, {stats.misses} misses "
        f"({stats.reuse_fraction * 100:.1f}% reuse)"
    )
    if spilled:
        line += f"; spilled {spilled} graph entr" + (
            "y" if spilled == 1 else "ies"
        ) + f" to {store.cache_dir}"
    print(line)


def _checkpoint_manager(args: argparse.Namespace):
    """The durable checkpoint manager the flags ask for, or ``None``.

    ``--resume`` without ``--checkpoint-dir`` is a usage error: there is
    no state to resume from.
    """
    ck_dir = getattr(args, "checkpoint_dir", None)
    resume = bool(getattr(args, "resume", False))
    if resume and ck_dir is None:
        raise SystemExit(
            "error: --resume requires --checkpoint-dir (there is no "
            "checkpoint directory to resume from)"
        )
    if ck_dir is None:
        return None
    from .checkpoint import CheckpointManager

    return CheckpointManager(
        ck_dir,
        every=getattr(args, "checkpoint_every", None),
        resume=resume,
    )


def _sketch_params(args: argparse.Namespace):
    """The :class:`SketchParams` the flags describe, or ``None``.

    Sketch tuning flags only take effect under ``--kernel sketch``; the
    estimators never run behind any other kernel, so silently building
    params there would suggest an approximation that does not happen.
    """
    if getattr(args, "kernel", None) != "sketch":
        return None
    from .sketch import SketchParams

    return SketchParams(
        bits=getattr(args, "sketch_bits", None) or 256,
        error=getattr(args, "sketch_error", None) or 0.0,
        gate=getattr(args, "sketch_gate", None),
    )


def _execution_options(args: argparse.Namespace) -> ExecutionOptions:
    """Build the typed execution options one subcommand's flags describe."""
    workers = getattr(args, "workers", 0)
    chaos_spec = getattr(args, "chaos_plan", None)
    kernel = getattr(args, "kernel", None)
    return ExecutionOptions(
        backend=BackendKind.PROCESS if workers > 0 else BackendKind.SERIAL,
        workers=workers if workers > 0 else None,
        exec_mode=ExecMode(getattr(args, "exec_mode", "scalar")),
        kernel=Kernel(kernel) if kernel else None,
        sketch=_sketch_params(args),
        max_retries=getattr(args, "max_retries", None),
        task_timeout=getattr(args, "task_timeout", None),
        chaos=FaultPlan.parse(chaos_spec) if chaos_spec else None,
        cache=_cache_store(args),
        checkpoint=_checkpoint_manager(args),
    )


_IGNORED_NOTES = {
    "backend": "{name} is sequential; --workers ignored",
    "exec_mode": "{name} has no batched mode; --exec-mode ignored",
    "kernel": "{name} has a fixed kernel; --kernel ignored",
    "cache": "{name} cannot use the similarity store; --cache-dir ignored",
    "checkpoint": "{name} cannot checkpoint; --checkpoint-dir ignored",
    "sketch": "{name} has no sketch pre-pass; sketch options ignored",
}


def _report_ignored(spec: api.AlgorithmSpec, options: ExecutionOptions) -> None:
    for what in spec.ignored_options(options):
        print(
            "note: " + _IGNORED_NOTES[what].format(name=spec.name),
            file=sys.stderr,
        )


def _print_fault_report(exc: ExecutionFaultError) -> None:
    """Structured stderr report for a run the supervisor gave up on."""
    print(f"execution fault: {exc}", file=sys.stderr)
    if isinstance(exc, ResumableAbort):
        print(
            f"  checkpoint: epoch {exc.epoch} saved to "
            f"{exc.checkpoint_dir}; re-run with --resume to continue "
            "from it",
            file=sys.stderr,
        )
    if isinstance(exc, PoisonTaskError):
        for line in exc.report.describe().splitlines():
            print(f"  {line}", file=sys.stderr)
    if exc.failures:
        print(f"  failed attempts ({len(exc.failures)}):", file=sys.stderr)
        for failure in exc.failures[-8:]:
            print(
                f"    task {failure.task} attempt {failure.attempt} "
                f"[worker {failure.worker}]: {failure.kind} — "
                f"{failure.detail}",
                file=sys.stderr,
            )
    kinds: dict[str, int] = {}
    for event in exc.events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    if kinds:
        summary = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        print(f"  recovery events: {summary}", file=sys.stderr)


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write run telemetry (spans + metrics) to PATH",
    )
    parser.add_argument(
        "--trace-format",
        choices=list(TRACE_FORMATS),
        default="chrome",
        help="trace file format: Chrome trace events (Perfetto-loadable), "
        "JSONL, or a plain-text report",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live progress on stderr: per-phase completion with a "
        "cost-model ETA (rewritten status line on a TTY, periodic log "
        "lines otherwise)",
    )
    parser.add_argument(
        "--profile-spans",
        action="store_true",
        help="sample the active span stack (~10ms period) and print a "
        "self/cumulative time profile per span kind after the run",
    )
    parser.add_argument(
        "--profile-memory",
        action="store_true",
        help="account tracemalloc allocation deltas and peaks per "
        "top-level phase (slows the run; implies --profile-spans output)",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append this run's record (workload, options, stage walls, "
        "counters, memory) to the run ledger at PATH (a directory or a "
        ".jsonl file)",
    )


class _ObsSession:
    """Per-invocation observability plumbing shared by the run commands.

    Decides whether a tracer must exist (trace export, profiling and the
    ledger all consume one), owns the optional profiler and progress
    reporter, and installs everything ambiently for the run body.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.trace_path = getattr(args, "trace", None)
        self.profile = bool(getattr(args, "profile_spans", False))
        self.memory = bool(getattr(args, "profile_memory", False))
        self.ledger_path = getattr(args, "ledger", None)
        self.progress = bool(getattr(args, "progress", False))
        need_tracer = bool(
            self.trace_path
            or self.profile
            or self.memory
            or self.ledger_path
        )
        self.tracer: Tracer | None = Tracer() if need_tracer else None
        self.profiler = None
        self._ingested = False

    @contextmanager
    def activate(self):
        with ExitStack() as stack:
            if self.tracer is not None:
                stack.enter_context(use_tracer(self.tracer))
                if self.profile or self.memory:
                    from .obs.profiler import SpanProfiler

                    self.profiler = stack.enter_context(
                        SpanProfiler(self.tracer, memory=self.memory)
                    )
            if self.progress:
                from .obs.progress import ProgressReporter, use_progress

                reporter = ProgressReporter()
                stack.enter_context(reporter)
                stack.enter_context(use_progress(reporter))
            yield self

    def ingest(self, record) -> None:
        """Fold a RunRecord's tallies into the tracer metrics (once)."""
        if self.tracer is not None and record is not None and not self._ingested:
            self.tracer.metrics.ingest_record(record)
            self._ingested = True

    def print_profile(self) -> None:
        if self.profiler is None:
            return
        summary = self.profiler.as_dict()
        print(
            f"profile: {summary['samples']} samples at "
            f"{summary['interval_seconds'] * 1e3:.0f}ms "
            f"({summary['idle_samples']} idle)"
        )
        for name, seconds in self.profiler.hotspots(limit=8):
            cum = summary["spans"][name]["cum_seconds"]
            print(f"  {name:<32} self {seconds:7.3f}s  cum {cum:7.3f}s")
        for name, entry in summary.get("memory", {}).items():
            print(
                f"  {name:<32} alloc {entry['alloc_delta_kb']:+.0f}kB"
                + (
                    f"  peak {entry['peak_kb']:.0f}kB"
                    if entry.get("peak_kb")
                    else ""
                )
            )

    def append_ledger(
        self,
        kind: str,
        *,
        graph=None,
        graph_label=None,
        params=None,
        options=None,
        result=None,
        wall_seconds=None,
        algorithm=None,
        extra=None,
    ) -> None:
        if not self.ledger_path:
            return
        from .obs.ledger import RunLedger, record_from_run

        record = record_from_run(
            kind,
            graph=graph,
            graph_label=graph_label,
            params=params,
            options=options,
            result=result,
            tracer=self.tracer,
            profiler=self.profiler,
            wall_seconds=wall_seconds,
            algorithm=algorithm,
            extra=extra,
        )
        sealed = RunLedger(self.ledger_path).append(record)
        print(
            f"ledger: appended {kind} record seq={sealed['seq']} "
            f"(workload {sealed['workload_key']}, options "
            f"{sealed['options_key']}) to {self.ledger_path}"
        )


def _export_trace(args: argparse.Namespace, tracer: Tracer, title: str) -> None:
    write_trace(args.trace, tracer, args.trace_format, title=title)
    print(f"wrote {args.trace_format} trace to {args.trace}")


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="snapshot durable run state under DIR at every phase barrier "
        "(crash-safe: atomic writes, checksummed manifest)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="also snapshot mid-phase every N tasks (finer-grained crash "
        "recovery at the cost of more checkpoint writes)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest valid checkpoint in --checkpoint-dir; "
        "refuses to run if the directory records a different graph, "
        "parameters or algorithm",
    )


def _add_sketch_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        choices=sorted(KERNELS),
        default=None,
        help="similarity kernel override; 'sketch' enables the Bloom+KMV "
        "pre-pass with exact fallback on uncertain arcs",
    )
    parser.add_argument(
        "--sketch-bits",
        type=int,
        default=256,
        metavar="BITS",
        help="Bloom filter bits per vertex (power of two; --kernel sketch)",
    )
    parser.add_argument(
        "--sketch-error",
        type=float,
        default=0.0,
        metavar="EPS",
        help="per-arc misclassification tolerance; 0 keeps the sketch "
        "pass conservative and the clustering bit-identical "
        "(--kernel sketch)",
    )
    parser.add_argument(
        "--sketch-gate",
        type=int,
        default=None,
        metavar="DEG",
        help="min endpoint degree for an arc to be sketch-classified; "
        "cheaper arcs go straight to the exact kernel (default: "
        "8 x bloom words; 0 sketches everything)",
    )


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist the cross-run similarity store under DIR; a later "
        "run on the same graph reuses its exact overlaps",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the similarity store entirely",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scan",
        description="ppSCAN reproduction: graph structural clustering",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_cluster = sub.add_parser("cluster", help="cluster a graph file")
    p_cluster.add_argument("graph", help="edge-list (.txt) or CSR (.bin) file")
    p_cluster.add_argument("--eps", type=float, default=0.5)
    p_cluster.add_argument("--mu", type=int, default=2)
    p_cluster.add_argument(
        "--algorithm",
        choices=sorted(api.available_algorithms()),
        default="ppscan",
    )
    p_cluster.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-backend workers (0 = serial; ppscan/scanxp/anyscan only)",
    )
    p_cluster.add_argument(
        "--exec-mode",
        choices=list(EXEC_MODES),
        default="scalar",
        help="arc-resolution strategy: per-arc scalar kernels or batched "
        "vectorized resolution (ppscan/pscan/scanxp)",
    )
    _add_sketch_args(p_cluster)
    p_cluster.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retry budget per task under the supervised process backend",
    )
    p_cluster.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task deadline (scaled by modelled task cost); a task "
        "over deadline is killed and retried",
    )
    p_cluster.add_argument(
        "--chaos-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection: a JSON plan file or a "
        "compact spec like 'seed=42,tasks=16,kill=2'",
    )
    p_cluster.add_argument(
        "--show-clusters", action="store_true", help="print cluster members"
    )
    p_cluster.add_argument(
        "--save", default=None, help="save the clustering to an .npz file"
    )
    _add_cache_args(p_cluster)
    _add_checkpoint_args(p_cluster)
    _add_trace_args(p_cluster)
    _add_obs_args(p_cluster)
    p_cluster.add_argument(
        "--sim-trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace of the *simulated* per-worker schedule "
        "(machine-model replay of the run's stages)",
    )
    p_cluster.add_argument(
        "--sim-threads",
        type=int,
        default=16,
        help="thread count for the simulated schedule",
    )
    p_cluster.add_argument(
        "--sim-machine",
        choices=("cpu", "knl"),
        default="cpu",
        help="machine model pricing the simulated schedule",
    )

    p_compare = sub.add_parser(
        "compare", help="run all algorithms and verify they agree"
    )
    p_compare.add_argument("graph")
    p_compare.add_argument("--eps", type=float, default=0.5)
    p_compare.add_argument("--mu", type=int, default=2)
    _add_sketch_args(p_compare)
    p_compare.add_argument(
        "--csv", default=None, help="also write the comparison table as CSV"
    )
    _add_cache_args(p_compare)
    _add_checkpoint_args(p_compare)
    _add_trace_args(p_compare)
    _add_obs_args(p_compare)

    p_sweep = sub.add_parser("sweep", help="cluster over an (eps, mu) grid")
    p_sweep.add_argument("graph")
    p_sweep.add_argument(
        "--eps",
        default="0.2,0.4,0.6,0.8",
        help="comma-separated eps values",
    )
    p_sweep.add_argument(
        "--mu", default="2,5", help="comma-separated mu values"
    )
    p_sweep.add_argument(
        "--algorithm",
        choices=sorted(api.available_algorithms()),
        default="ppscan",
    )
    p_sweep.add_argument(
        "--csv", default=None, help="also write the grid as CSV"
    )
    _add_cache_args(p_sweep)
    _add_checkpoint_args(p_sweep)
    _add_trace_args(p_sweep)
    _add_obs_args(p_sweep)

    p_stream = sub.add_parser(
        "stream",
        help="apply an edit script in batches, serving warm (eps, mu) "
        "queries between batches",
    )
    p_stream.add_argument("graph", help="edge-list (.txt) or CSR (.bin) file")
    p_stream.add_argument(
        "script",
        help="edit-script file ('+ u v' / '- u v' lines grouped by "
        "'batch' lines; see docs/streaming.md)",
    )
    p_stream.add_argument(
        "--eps",
        default="0.5",
        help="comma-separated eps values to keep materialized",
    )
    p_stream.add_argument(
        "--mu", default="2", help="comma-separated mu values"
    )
    p_stream.add_argument(
        "--verify",
        action="store_true",
        help="after every batch, rebuild a from-scratch GS*-Index and "
        "assert the streamed clustering is bit-identical (slow; the "
        "differential harness the tests and CI gate run)",
    )
    p_stream.add_argument(
        "--csv", default=None, help="also write one row per batch as CSV"
    )
    _add_cache_args(p_stream)
    _add_trace_args(p_stream)
    _add_obs_args(p_stream)

    p_stats = sub.add_parser("stats", help="print graph statistics")
    p_stats.add_argument("graph")

    p_validate = sub.add_parser(
        "validate",
        help="validate a graph file (format, ids, CSR structure)",
    )
    p_validate.add_argument("graph")

    p_gen = sub.add_parser("generate", help="write a synthetic graph")
    p_gen.add_argument(
        "kind",
        choices=sorted(REAL_WORLD_STANDINS) + ["roll"],
        help="stand-in name or 'roll'",
    )
    p_gen.add_argument("output", help="output edge-list path")
    p_gen.add_argument("--scale", type=float, default=1.0)
    p_gen.add_argument("--avg-degree", type=int, default=40, help="roll only")
    p_gen.add_argument("--vertices", type=int, default=50000, help="roll only")
    p_gen.add_argument("--seed", type=int, default=42)

    p_bench = sub.add_parser("bench", help="run a paper experiment")
    p_bench.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    p_bench.add_argument("--scale", type=float, default=None)
    p_bench.add_argument(
        "--out", default=None, help="directory to write result tables into"
    )
    _add_trace_args(p_bench)

    p_serve = sub.add_parser(
        "serve",
        help="start the always-on clustering service (HTTP)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="TCP port (0 picks an ephemeral port and prints it)",
    )
    p_serve.add_argument(
        "--graph",
        action="append",
        default=[],
        metavar="PATH",
        dest="preload",
        help="pre-load and index this graph file at startup (repeatable)",
    )
    p_serve.add_argument(
        "--max-graphs",
        type=int,
        default=8,
        help="LRU registry capacity: resident graph count cap",
    )
    p_serve.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="LRU registry capacity: resident byte budget (graph + index "
        "+ memoized results); idle graphs age out past it",
    )
    p_serve.add_argument(
        "--max-concurrent-queries",
        type=int,
        default=4,
        help="admission limit on simultaneous heavy operations; beyond "
        "it the service answers 429 with Retry-After",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist the shared similarity store under DIR",
    )
    p_serve.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append one service record per query batch to the run "
        "ledger at PATH",
    )
    p_serve.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help="make the service durable: write-ahead-log every submission "
        "and edit batch under DIR before acknowledging, replay it on "
        "startup (see docs/service.md)",
    )
    p_serve.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        metavar="N",
        help="compact the WAL into a snapshot after N appends "
        "(default 64; requires --wal-dir)",
    )
    p_serve.add_argument(
        "--max-request-seconds",
        type=float,
        default=120.0,
        metavar="S",
        help="server-side ceiling on any per-request timeout= parameter; "
        "past it the request gets a structured 504 while the work "
        "continues (default 120)",
    )
    p_serve.add_argument(
        "--idle-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="close a keep-alive connection after S seconds with no "
        "request bytes (slow-loris defense; 0 disables, default 60)",
    )
    p_serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="S",
        help="on SIGTERM/SIGINT, wait up to S seconds for in-flight "
        "requests before force-closing (default 10)",
    )

    p_verify = sub.add_parser(
        "verify", help="verify a saved clustering against a graph"
    )
    p_verify.add_argument("graph")
    p_verify.add_argument("clustering", help=".npz file from cluster --save")

    p_profile = sub.add_parser(
        "profile", help="similarity/pruning profile of a graph"
    )
    p_profile.add_argument("graph")
    p_profile.add_argument("--mu", type=int, default=5)
    p_profile.add_argument(
        "--eps", default="0.2,0.4,0.6,0.8", help="comma-separated eps values"
    )

    p_history = sub.add_parser(
        "history", help="list the records of a run ledger"
    )
    p_history.add_argument(
        "ledger", help="ledger directory or .jsonl file (see --ledger)"
    )
    p_history.add_argument(
        "--kind",
        default=None,
        help="only records of this kind (cluster/compare/sweep/bench/smoke)",
    )
    p_history.add_argument(
        "--workload-key", default=None, help="only this workload fingerprint"
    )
    p_history.add_argument(
        "--options-key", default=None, help="only this options fingerprint"
    )
    p_history.add_argument(
        "--limit", type=int, default=None, help="only the last N records"
    )
    p_history.add_argument(
        "--json", action="store_true", help="dump matching records as JSON"
    )

    p_report = sub.add_parser(
        "report",
        help="trend report over a run ledger (median/MAD per workload)",
    )
    p_report.add_argument(
        "ledger", help="ledger directory or .jsonl file (see --ledger)"
    )
    p_report.add_argument(
        "--openmetrics",
        default=None,
        metavar="PATH",
        help="also export the latest record's metrics as an OpenMetrics "
        "textfile at PATH",
    )
    p_report.add_argument(
        "--json", action="store_true", help="dump the report as JSON"
    )

    return parser


def _cmd_cluster(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    _print_fingerprint(graph)
    params = ScanParams(eps=args.eps, mu=args.mu)
    spec = api.get_algorithm(args.algorithm)
    options = _execution_options(args)
    _report_ignored(spec, options)
    obs = _ObsSession(args)
    tracer = obs.tracer
    try:
        with obs.activate():
            result = api.cluster(
                graph, params, algorithm=args.algorithm, options=options
            )
    except ExecutionFaultError as exc:
        _print_fault_report(exc)
        if tracer is not None and args.trace:
            _export_trace(args, tracer, title=f"{args.algorithm} (faulted)")
        return EXIT_EXECUTION_FAULT
    except ResumeMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RESUME_MISMATCH
    print(result.summary())
    classified = result.classify(graph)
    print(
        f"cores={int(np.count_nonzero(classified == CORE))}, "
        f"hubs={int(np.count_nonzero(classified == HUB))}, "
        f"outliers={int(np.count_nonzero(classified == OUTLIER))}"
    )
    if result.record is not None:
        print(f"wall time: {result.record.wall_seconds:.3f}s")
    _report_cache(options.cache)
    if args.show_clusters:
        for cid, members in result.clusters().items():
            print(f"cluster {cid}: {members.tolist()}")
    if args.save:
        result.save(args.save)
        print(f"saved clustering to {args.save}")
    obs.ingest(result.record)
    obs.print_profile()
    if args.trace:
        _export_trace(
            args, tracer, title=f"{args.algorithm} on {args.graph}"
        )
    obs.append_ledger(
        "cluster",
        graph=graph,
        graph_label=args.graph,
        params=params,
        options=options,
        result=result,
        algorithm=args.algorithm,
    )
    if args.sim_trace:
        if result.record is None:
            print("note: no run record; --sim-trace skipped", file=sys.stderr)
        else:
            from .obs.export import schedule_chrome_events, write_chrome_trace
            from .parallel.machine import CPU_SERVER, KNL_SERVER
            from .parallel.trace import trace_stage

            machine = KNL_SERVER if args.sim_machine == "knl" else CPU_SERVER
            traces = [
                trace_stage(stage, machine, args.sim_threads)
                for stage in result.record.stages
                if stage.tasks
            ]
            doc = schedule_chrome_events(
                traces,
                clock_hz=machine.clock_hz,
                process_name=f"simulated {machine.name}",
            )
            write_chrome_trace(args.sim_trace, doc)
            print(
                f"wrote simulated-schedule chrome trace "
                f"({args.sim_threads} threads, {args.sim_machine}) to "
                f"{args.sim_trace}"
            )
    return 0


#: Canonical presentation order for ``compare`` (papers' baselines first).
_COMPARE_ORDER = ("scan", "pscan", "scanpp", "anyscan", "scanxp", "ppscan")


def _cmd_compare(args: argparse.Namespace) -> int:
    from .bench.reporting import format_table

    graph = load_graph(args.graph)
    _print_fingerprint(graph)
    params = ScanParams(eps=args.eps, mu=args.mu)
    names = [
        name
        for name in _COMPARE_ORDER
        if name in api.available_algorithms()
    ]
    store = _cache_store(args)
    checkpoint = _checkpoint_manager(args)
    kernel = getattr(args, "kernel", None)
    options = None
    if store is not None or checkpoint is not None or kernel is not None:
        options = ExecutionOptions(
            cache=store,
            checkpoint=checkpoint,
            kernel=Kernel(kernel) if kernel else None,
            sketch=_sketch_params(args),
        )
    probe = options or ExecutionOptions()

    def _kernel_label(spec: api.AlgorithmSpec) -> str:
        if kernel is None or "kernel" in spec.ignored_options(probe):
            return "exact"
        if kernel == "sketch":
            sk = probe.effective_sketch()
            band = "exact" if sk is None or sk.conservative else "approx"
            return f"sketch/{band}"
        return kernel

    obs = _ObsSession(args)
    tracer = obs.tracer
    try:
        with obs.activate():
            outcome = api.compare(
                graph, params, algorithms=names, options=options
            )
    except ExecutionFaultError as exc:
        _print_fault_report(exc)
        return EXIT_EXECUTION_FAULT
    except ResumeMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RESUME_MISMATCH
    except AssertionError as exc:
        # Only reachable when an aggressive sketch band was requested:
        # approximate legs may legitimately diverge from the exact ones.
        print(f"DISAGREE: {exc}", file=sys.stderr)
        print(
            "note: --sketch-error > 0 permits misclassified arcs; rerun "
            "with --sketch-error 0 for the bit-identical conservative band",
            file=sys.stderr,
        )
        return 1
    reference = outcome.results[outcome.reference]
    header = [
        "algorithm",
        "kernel",
        "CompSims",
        "scalar ops",
        "vector ops",
        "wall",
        "stage wall",
        "peak RSS",
    ]
    rows = []
    for name in names:
        spec = api.get_algorithm(name)
        display = spec.display_name
        record = outcome.results[name].record
        total = record.total()
        stats = outcome.leg_stats.get(name, {})
        rss_kb = stats.get("peak_rss_kb")
        rows.append(
            [
                display,
                _kernel_label(spec),
                f"{record.compsim_invocations}",
                f"{total.scalar_cmp + total.branchless_cmp}",
                f"{total.vector_ops}",
                f"{record.wall_seconds * 1e3:.1f}ms",
                f"{record.stage_wall_seconds * 1e3:.1f}ms",
                f"{rss_kb / 1024:.1f}MB" if rss_kb is not None else "-",
            ]
        )
        if tracer is not None:
            tracer.metrics.ingest_record(record, prefix=display)
    print(
        format_table(
            f"all algorithms agree on {args.graph} ({params}): "
            f"{reference.num_clusters} clusters, {reference.num_cores} cores",
            header,
            rows,
        )
    )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(",".join(header) + "\n")
            for row in rows:
                fh.write(",".join(row) + "\n")
        print(f"wrote {args.csv}")
    obs.print_profile()
    if args.trace:
        _export_trace(args, tracer, title=f"compare on {args.graph}")
    obs.append_ledger(
        "compare",
        graph=graph,
        graph_label=args.graph,
        params=params,
        options=options,
        wall_seconds=sum(
            stats.get("wall_seconds", 0.0)
            for stats in outcome.leg_stats.values()
        ),
        extra={"legs": outcome.leg_stats},
    )
    _report_cache(store)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .bench.reporting import format_table
    from .sweep import SweepEngine

    graph = load_graph(args.graph)
    _print_fingerprint(graph)
    eps_values = [float(x) for x in args.eps.split(",") if x]
    mu_values = [int(x) for x in args.mu.split(",") if x]
    # Unlike cluster/compare, a sweep reuses overlaps *within* one
    # invocation, so the store is on by default; --cache-dir merely adds
    # the disk layer and --no-cache restores fully independent runs.
    engine = SweepEngine(
        graph,
        algorithm=args.algorithm,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        checkpoint=_checkpoint_manager(args),
    )
    obs = _ObsSession(args)
    tracer = obs.tracer
    import time as _time

    t0 = _time.perf_counter()
    try:
        with obs.activate():
            outcome = engine.run(eps_values, mu_values)
    except ExecutionFaultError as exc:
        _print_fault_report(exc)
        return EXIT_EXECUTION_FAULT
    except ResumeMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RESUME_MISMATCH
    header = ["eps", "mu", "clusters", "cores", "CompSims", "wall_ms", "reuse"]
    rows = []
    for mu in mu_values:  # presentation order: as given, not execution order
        for eps in eps_values:
            point = outcome.point(eps, mu)
            rows.append(
                [
                    f"{eps:g}",
                    f"{mu}",
                    f"{point.result.num_clusters}",
                    f"{point.result.num_cores}",
                    f"{point.result.record.compsim_invocations}",
                    f"{point.wall_seconds * 1e3:.1f}",
                    f"{point.reuse_fraction * 100:.1f}%"
                    if outcome.cached
                    else "-",
                ]
            )
    print(format_table(f"parameter sweep on {args.graph}", header, rows))
    if outcome.cached:
        stats = outcome.stats
        line = (
            f"store: {stats.hits} hits, {stats.misses} misses "
            f"({stats.reuse_fraction * 100:.1f}% reuse)"
        )
        if outcome.spilled:
            line += f"; spilled to {args.cache_dir}"
        print(line)
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(",".join(header) + "\n")
            for row in rows:
                fh.write(",".join(row) + "\n")
        print(f"wrote {args.csv}")
    obs.print_profile()
    if args.trace:
        _export_trace(args, tracer, title=f"sweep on {args.graph}")
    obs.append_ledger(
        "sweep",
        graph=graph,
        graph_label=args.graph,
        wall_seconds=_time.perf_counter() - t0,
        algorithm=args.algorithm,
        extra={
            "grid": {
                "eps": eps_values,
                "mu": mu_values,
                "points": len(eps_values) * len(mu_values),
            }
        },
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import time as _time

    from .core import assert_same_clustering
    from .core.gsindex import GSIndex
    from .streaming import EditScript, StreamingEngine

    graph = load_graph(args.graph)
    _print_fingerprint(graph)
    script = EditScript.load(args.script)
    try:
        eps_values = [float(x) for x in args.eps.split(",") if x.strip()]
        mu_values = [int(x) for x in args.mu.split(",") if x.strip()]
    except ValueError as exc:
        print(f"error: malformed --eps/--mu: {exc}", file=sys.stderr)
        return 2
    points = [
        ScanParams(eps, mu) for eps in eps_values for mu in mu_values
    ]
    if not points:
        print("error: empty (eps, mu) point set", file=sys.stderr)
        return 2
    store = _cache_store(args)
    obs = _ObsSession(args)
    tracer = obs.tracer
    header = [
        "batch",
        "+",
        "-",
        "skip",
        "arcs",
        "reclustered",
        "edges",
        "ms",
    ]
    rows: list[list[str]] = []
    ledger = None
    if obs.ledger_path:
        from .obs.ledger import RunLedger

        ledger = RunLedger(obs.ledger_path)
    t0 = _time.perf_counter()
    with obs.activate():
        engine = StreamingEngine(graph, store=store, label=args.graph)
        for params in points:
            engine.query(params)
        for batch in script:
            report = engine.apply(batch)
            if args.verify:
                reference = GSIndex(engine.snapshot)
                for params in points:
                    assert_same_clustering(
                        reference.query(params), engine.query(params)
                    )
            rows.append(
                [
                    f"{report.batch}",
                    f"{report.inserted}",
                    f"{report.removed}",
                    f"{report.skipped}",
                    f"{report.arcs_repaired}",
                    f"{report.vertices_reclustered}",
                    f"{report.num_edges}",
                    f"{report.wall_seconds * 1e3:.2f}",
                ]
            )
            if ledger is not None:
                from .obs.ledger import build_record

                ledger.append(
                    build_record(
                        "stream",
                        workload={
                            "graph": args.graph,
                            "fingerprint": report.fingerprint,
                            "num_vertices": report.num_vertices,
                            "num_edges": report.num_edges,
                        },
                        algorithm="StreamingEngine",
                        wall_seconds=report.wall_seconds,
                        metrics={
                            "stream.batch": report.batch,
                            "stream.edits_applied": report.effective,
                            "stream.edits_skipped": report.skipped,
                            "stream.arcs_repaired": report.arcs_repaired,
                            "stream.reclustered": (
                                report.vertices_reclustered
                            ),
                            "stream.overlaps_carried": (
                                report.overlaps_carried
                            ),
                        },
                        extra={"points": len(points)},
                    )
                )
    wall = _time.perf_counter() - t0
    from .bench.reporting import format_table

    print(
        format_table(
            f"streamed {len(script)} batches onto {args.graph}",
            header,
            rows,
        )
    )
    summary = engine.stats()
    throughput = (
        summary["edits_applied"] / wall if wall > 0 else float("inf")
    )
    print(
        f"applied {summary['edits_applied']} edits "
        f"({summary['edits_skipped']} skipped) in {wall:.3f}s "
        f"({throughput:,.0f} edits/s); repaired "
        f"{summary['arcs_repaired']} arcs, reclustered "
        f"{summary['vertices_reclustered']} vertex-points across "
        f"{summary['points_materialized']} warm point(s)"
    )
    print(f"final fingerprint: {engine.fingerprint}")
    if args.verify:
        print(
            f"verify: all {len(script)} checkpoints bit-identical to "
            "from-scratch rebuilds"
        )
    for params in points:
        result = engine.query(params)
        print(
            f"  eps={float(params.eps):g} mu={params.mu}: "
            f"{result.num_clusters} clusters, {result.num_cores} cores"
        )
    _report_cache(store)
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(",".join(header) + "\n")
            for row in rows:
                fh.write(",".join(row) + "\n")
        print(f"wrote {args.csv}")
    obs.print_profile()
    if args.trace:
        _export_trace(args, tracer, title=f"stream on {args.graph}")
    if ledger is not None:
        print(
            f"ledger: appended {len(rows)} stream record(s) to "
            f"{obs.ledger_path}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    _print_fingerprint(graph)
    stats = graph_stats(args.graph, graph)
    print(
        f"|V| = {stats.num_vertices:,}\n|E| = {stats.num_edges:,}\n"
        f"avg degree = {stats.average_degree:.2f}\n"
        f"max degree = {stats.max_degree:,}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .core.validate import validate_graph
    from .graph.io import GraphFormatError

    try:
        graph = load_graph(args.graph, strict=True)
    except GraphFormatError as exc:
        print(f"INVALID: {exc}")
        return 1
    except OSError as exc:
        print(f"error: cannot read {args.graph}: {exc}", file=sys.stderr)
        return 1
    _print_fingerprint(graph)
    problems = validate_graph(graph)
    if problems:
        print(f"INVALID: {args.graph}")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"OK: {args.graph} — |V|={graph.num_vertices:,}, "
        f"|E|={graph.num_edges:,}"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "roll":
        graph = roll_graph(args.vertices, args.avg_degree, seed=args.seed)
    else:
        graph = real_world_standin(args.kind, scale=args.scale, seed=args.seed)
    write_edge_list(graph, args.output)
    _print_fingerprint(graph)
    print(
        f"wrote {args.output}: |V|={graph.num_vertices:,}, "
        f"|E|={graph.num_edges:,}"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    tracer = Tracer() if args.trace else None
    for name in names:
        if tracer is not None:
            with use_tracer(tracer), tracer.span(f"bench:{name}", lane=0):
                result = EXPERIMENTS[name](scale=args.scale)
        else:
            result = EXPERIMENTS[name](scale=args.scale)
        print(result.text)
        print()
        if out_dir is not None:
            (out_dir / f"{result.exp_id}.txt").write_text(result.text + "\n")
    if tracer is not None:
        _export_trace(args, tracer, title=f"bench {args.experiment}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal as _signal

    from .service import ClusteringService

    service = ClusteringService(
        cache_dir=args.cache_dir,
        max_graphs=args.max_graphs,
        memory_budget_mb=args.memory_budget_mb,
        max_concurrent_queries=args.max_concurrent_queries,
        ledger_path=args.ledger,
        wal_dir=args.wal_dir,
        snapshot_every=args.snapshot_every,
        max_request_seconds=args.max_request_seconds,
        idle_timeout_seconds=args.idle_timeout,
        drain_grace_seconds=args.drain_grace,
    )

    async def run() -> int:
        # Bind + recover before preloading: a --graph already restored
        # from the WAL dedupes to already_loaded instead of rebuilding.
        await service.start(args.host, args.port)
        report = service.recovery_report
        if report is not None and (
            report.graphs_restored
            or report.records_replayed
            or report.skipped_lines
        ):
            print(
                f"recovered {len(report.fingerprints)} graph(s) from "
                f"{args.wal_dir}: {report.records_replayed} WAL record(s) "
                f"replayed, {report.warm_points} warm point(s), "
                f"{report.wall_seconds:.2f}s"
            )
        for path in args.preload:
            graph = load_graph(path)
            # The full submission transaction: durable (WAL-logged)
            # when --wal-dir is set, deduped against recovered state.
            _, payload, _ = await service._submit_txn(graph, label=path)
            note = " (recovered)" if payload.get("already_loaded") else ""
            print(
                f"loaded {path}: fingerprint {payload['fingerprint']} "
                f"(|V|={graph.num_vertices:,}, "
                f"|E|={graph.num_edges:,}){note}"
            )
        stopping = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stopping.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        print(
            f"serving on http://{args.host}:{service.port} "
            f"(max {args.max_concurrent_queries} concurrent heavy "
            "queries; SIGTERM or Ctrl-C drains and stops)",
            flush=True,  # supervisors wait on this line to learn the port
        )
        await stopping.wait()
        print("shutting down: draining in-flight work", flush=True)
        summary = await service.drain(grace_seconds=args.drain_grace)
        if summary.get("snapshot_written"):
            print(
                f"final snapshot written "
                f"(lsn {summary['final_lsn']}, "
                f"{summary['drained_inflight']} request(s) were in flight)"
            )
        await service.stop()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - pre-loop Ctrl-C
        print("shutting down")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .core import ClusteringResult, verify_clustering
    from .core.verify import ClusteringVerificationError

    graph = load_graph(args.graph)
    _print_fingerprint(graph)
    result = ClusteringResult.load(args.clustering)
    try:
        verify_clustering(graph, result)
    except ClusteringVerificationError as exc:
        print(f"INVALID: {exc}")
        return 1
    print(
        f"OK: {args.clustering} is the exact SCAN clustering of "
        f"{args.graph} at {result.params}"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .analysis import core_ratio_curve, pruning_profile, similarity_histogram
    from .bench.reporting import format_table

    graph = load_graph(args.graph)
    _print_fingerprint(graph)
    eps_values = tuple(float(x) for x in args.eps.split(",") if x)

    counts, bins = similarity_histogram(graph, bins=10)
    print("edge similarity distribution:")
    total = max(int(counts.sum()), 1)
    for i, count in enumerate(counts):
        bar = "#" * int(40 * count / total)
        print(f"  [{bins[i]:.1f}, {bins[i + 1]:.1f}): {int(count):>8,}  {bar}")

    rows = []
    curve = core_ratio_curve(graph, eps_values, args.mu)
    for eps in eps_values:
        profile = pruning_profile(graph, ScanParams(eps, args.mu))
        rows.append(
            [
                f"{eps}",
                f"{profile.arcs_resolved_fraction:.1%}",
                f"{profile.roles_settled_fraction:.1%}",
                f"{curve[eps]:.1%}",
            ]
        )
    print()
    print(
        format_table(
            f"pruning and core profile (mu={args.mu})",
            ["eps", "arcs pruned free", "roles settled", "core fraction"],
            rows,
        )
    )
    return 0


def _ledger_summary_label(record: dict) -> str:
    workload = record.get("workload", {})
    label = workload.get("graph") or workload.get("bench") or ""
    if "eps" in workload and "mu" in workload:
        label += f" (eps={workload['eps']:g}, mu={workload['mu']})"
    return label.strip() or record.get("workload_key", "?")


def _cmd_history(args: argparse.Namespace) -> int:
    import json as _json

    from .bench.reporting import format_table
    from .obs.ledger import RunLedger

    ledger = RunLedger(args.ledger)
    records = ledger.history(
        kind=args.kind,
        workload_key=args.workload_key,
        options_key=args.options_key,
        passed_only=False,
        limit=args.limit,
    )
    if args.json:
        print(_json.dumps(records, indent=1, sort_keys=True, default=str))
        return 0
    if not records:
        print(f"no matching records in {args.ledger}")
        if ledger.last_skipped:
            print(f"({ledger.last_skipped} invalid line(s) skipped)")
        return 0
    rows = []
    for record in records:
        import datetime

        ts = datetime.datetime.fromtimestamp(
            record.get("ts_unix", 0), datetime.timezone.utc
        ).strftime("%Y-%m-%d %H:%M")
        wall = record.get("wall_seconds")
        gate = record.get("gate")
        rows.append(
            [
                str(record.get("seq", "?")),
                ts,
                record.get("kind", "?"),
                _ledger_summary_label(record),
                record.get("workload_key", "?"),
                record.get("options_key", "?"),
                f"{wall:.3f}s" if isinstance(wall, (int, float)) else "-",
                (
                    ("pass" if gate.get("passed") else "FAIL")
                    if isinstance(gate, dict)
                    else "-"
                ),
            ]
        )
    title = f"run ledger {args.ledger}: {len(records)} record(s)"
    if ledger.last_skipped:
        title += f", {ledger.last_skipped} invalid line(s) skipped"
    print(
        format_table(
            title,
            [
                "seq",
                "recorded (UTC)",
                "kind",
                "workload",
                "wkey",
                "okey",
                "wall",
                "gate",
            ],
            rows,
        )
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json as _json

    from .bench.reporting import format_table
    from .obs.ledger import RunLedger
    from .obs.regression import median_mad

    ledger = RunLedger(args.ledger)
    records = ledger.read()
    if not records:
        print(f"no records in {args.ledger}")
        return 0
    groups: dict[tuple[str, str, str], list[dict]] = {}
    for record in records:
        key = (
            record.get("kind", "?"),
            record.get("workload_key", "?"),
            record.get("options_key", "?"),
        )
        groups.setdefault(key, []).append(record)
    report = []
    for (kind, wkey, okey), members in sorted(groups.items()):
        walls = [
            r["wall_seconds"]
            for r in members
            if isinstance(r.get("wall_seconds"), (int, float))
        ]
        entry: dict = {
            "kind": kind,
            "workload_key": wkey,
            "options_key": okey,
            "workload": _ledger_summary_label(members[-1]),
            "runs": len(members),
        }
        if walls:
            med, mad = median_mad(walls)
            entry.update(
                {
                    "wall_median_seconds": med,
                    "wall_mad_seconds": mad,
                    "wall_last_seconds": walls[-1],
                }
            )
        report.append(entry)
    if args.json:
        print(_json.dumps(report, indent=1, sort_keys=True))
    else:
        rows = [
            [
                e["kind"],
                e["workload"],
                e["workload_key"],
                e["options_key"],
                str(e["runs"]),
                (
                    f"{e['wall_median_seconds']:.3f}s"
                    if "wall_median_seconds" in e
                    else "-"
                ),
                (
                    f"{e['wall_mad_seconds']:.3f}s"
                    if "wall_mad_seconds" in e
                    else "-"
                ),
                (
                    f"{e['wall_last_seconds']:.3f}s"
                    if "wall_last_seconds" in e
                    else "-"
                ),
            ]
            for e in report
        ]
        print(
            format_table(
                f"trend report over {args.ledger} "
                f"({len(records)} record(s), {len(groups)} workload(s))",
                [
                    "kind",
                    "workload",
                    "wkey",
                    "okey",
                    "runs",
                    "wall median",
                    "wall MAD",
                    "wall last",
                ],
                rows,
            )
        )
    if args.openmetrics:
        from .obs.export import write_openmetrics

        latest = records[-1]
        metrics = dict(latest.get("metrics") or {})
        if isinstance(latest.get("wall_seconds"), (int, float)):
            metrics["run.wall_seconds"] = latest["wall_seconds"]
        for stage, wall in (latest.get("stage_walls") or {}).items():
            metrics[f"stage.{stage}.wall_seconds"] = wall
        write_openmetrics(
            args.openmetrics,
            metrics,
            labels={
                "kind": latest.get("kind", "?"),
                "workload_key": latest.get("workload_key", "?"),
                "options_key": latest.get("options_key", "?"),
            },
        )
        print(f"wrote OpenMetrics textfile to {args.openmetrics}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "cluster": _cmd_cluster,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "stream": _cmd_stream,
        "stats": _cmd_stats,
        "validate": _cmd_validate,
        "generate": _cmd_generate,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "verify": _cmd_verify,
        "profile": _cmd_profile,
        "history": _cmd_history,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
