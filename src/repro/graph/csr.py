"""Compressed-sparse-row graph representation (paper Definition 2.11).

The graph is undirected and unweighted.  Each undirected edge ``{u, v}`` is
stored twice, once in each endpoint's adjacency list, and every adjacency
list is sorted in ascending vertex order — the invariant every
set-intersection kernel in :mod:`repro.intersect` relies on.

``CSRGraph`` is immutable after construction: the offset/destination arrays
are marked non-writeable so they can be shared freely between the serial,
simulated and process execution backends without copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CSRGraph"]

#: dtype used for vertex ids and offsets throughout the library.  int64
#: offsets allow billion-edge-scale CSR; vertex ids stay int32-compatible
#: for cache friendliness but we keep a single dtype for simplicity.
VERTEX_DTYPE = np.int64


@dataclass(frozen=True)
class CSRGraph:
    """An immutable undirected graph in CSR form with sorted neighbor lists.

    Attributes
    ----------
    offsets:
        ``int64[n + 1]``; vertex ``u``'s neighbors live in
        ``dst[offsets[u]:offsets[u + 1]]``.
    dst:
        ``int64[2m]``; concatenated, per-vertex-sorted adjacency lists.
    """

    offsets: np.ndarray
    dst: np.ndarray
    degrees: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(self.dst, dtype=VERTEX_DTYPE)
        if offsets.ndim != 1 or dst.ndim != 1:
            raise ValueError("offsets and dst must be one-dimensional")
        if offsets.size == 0:
            raise ValueError("offsets must have at least one entry")
        if offsets[0] != 0 or offsets[-1] != dst.size:
            raise ValueError("offsets must start at 0 and end at len(dst)")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        degrees = np.diff(offsets)
        for arr in (offsets, dst, degrees):
            arr.setflags(write=False)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "dst", dst)
        object.__setattr__(self, "degrees", degrees)

    # -- basic shape ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges (half the directed arc count)."""
        return self.dst.size // 2

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs stored (``2 * num_edges``)."""
        return self.dst.size

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"avg_d={self.average_degree():.2f})"
        )

    # -- neighborhood access --------------------------------------------

    def degree(self, u: int) -> int:
        return int(self.degrees[u])

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor array of ``u`` (a zero-copy view)."""
        return self.dst[self.offsets[u] : self.offsets[u + 1]]

    def neighbor_range(self, u: int) -> tuple[int, int]:
        """Half-open edge-offset range ``[off[u], off[u+1])`` of ``u``."""
        return int(self.offsets[u]), int(self.offsets[u + 1])

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.size and int(nbrs[i]) == v

    def edge_offset(self, u: int, v: int) -> int:
        """Offset ``e(u, v)`` such that ``dst[e(u, v)] == v`` (Def. 2.11).

        This is the binary search used by pSCAN's similarity-reuse step to
        locate the reverse arc.  Raises ``KeyError`` if the edge is absent.
        """
        lo, hi = self.neighbor_range(u)
        i = lo + int(np.searchsorted(self.dst[lo:hi], v))
        if i >= hi or int(self.dst[i]) != v:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        return i

    # -- statistics -------------------------------------------------------

    def average_degree(self) -> float:
        n = self.num_vertices
        return float(self.dst.size) / n if n else 0.0

    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.num_vertices else 0

    # -- invariant checking ------------------------------------------------

    def validate(self) -> None:
        """Check the full CSR invariant set; raise ``ValueError`` on failure.

        Verified: neighbor ids in range, per-vertex sorted strictly
        ascending (no duplicate arcs), no self loops, and symmetry (every
        arc has its reverse arc).
        """
        n = self.num_vertices
        if self.dst.size and (self.dst.min() < 0 or self.dst.max() >= n):
            raise ValueError("neighbor id out of range")
        for u in range(n):
            nbrs = self.neighbors(u)
            if nbrs.size:
                if np.any(np.diff(nbrs) <= 0):
                    raise ValueError(f"adjacency of {u} not strictly sorted")
                idx = int(np.searchsorted(nbrs, u))
                if idx < nbrs.size and int(nbrs[idx]) == u:
                    raise ValueError(f"self loop at {u}")
        # Symmetry: the multiset of (u, v) arcs must equal that of (v, u).
        src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), self.degrees)
        forward = src * n + self.dst
        backward = self.dst * n + src
        if not np.array_equal(np.sort(forward), np.sort(backward)):
            raise ValueError("graph is not symmetric")

    # -- conversions --------------------------------------------------------

    def edge_list(self) -> np.ndarray:
        """Return the ``m x 2`` array of undirected edges with ``u < v``."""
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), self.degrees)
        mask = src < self.dst
        return np.column_stack([src[mask], self.dst[mask]])

    def arc_source(self) -> np.ndarray:
        """Source vertex of every stored arc (length ``num_arcs``)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.degrees
        )
