"""Graph preprocessing transforms.

The pSCAN/ppSCAN code bases preprocess their inputs: vertex ids are
relabelled for locality and disconnected debris can be dropped.  These
transforms keep every algorithm's input assumptions (sorted CSR, no self
loops) intact and return the id mapping so results can be translated back.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph, VERTEX_DTYPE
from .builders import from_edge_array

__all__ = [
    "relabel_by_degree",
    "largest_connected_component",
    "subgraph",
    "connected_component_labels",
]


def relabel_by_degree(
    graph: CSRGraph, descending: bool = True
) -> tuple[CSRGraph, np.ndarray]:
    """Relabel vertices by degree; returns ``(graph, old_of_new)``.

    Descending order places hubs at low ids — the layout that maximizes
    the degree-based task scheduler's locality (hot property-array
    regions cluster at the front of the CSR arrays).  ``old_of_new[new]``
    is the original id of vertex ``new``.
    """
    degrees = graph.degrees
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    new_of_old = np.empty(graph.num_vertices, dtype=VERTEX_DTYPE)
    new_of_old[order] = np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
    edges = graph.edge_list()
    remapped = new_of_old[edges]
    return (
        from_edge_array(remapped, num_vertices=graph.num_vertices),
        order.astype(VERTEX_DTYPE),
    )


def connected_component_labels(graph: CSRGraph) -> np.ndarray:
    """``labels[v]`` = smallest vertex id in ``v``'s connected component."""
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=VERTEX_DTYPE)
    offsets, dst = graph.offsets, graph.dst
    for seed in range(n):
        if labels[seed] != -1:
            continue
        labels[seed] = seed
        stack = [seed]
        while stack:
            u = stack.pop()
            for v in dst[offsets[u] : offsets[u + 1]]:
                v = int(v)
                if labels[v] == -1:
                    labels[v] = seed
                    stack.append(v)
    return labels


def subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph on ``vertices``; returns ``(graph, old_of_new)``.

    Vertices are compacted to ``0..k-1`` preserving relative order.
    """
    vertices = np.unique(np.asarray(vertices, dtype=VERTEX_DTYPE))
    keep = np.zeros(graph.num_vertices, dtype=bool)
    keep[vertices] = True
    new_of_old = np.full(graph.num_vertices, -1, dtype=VERTEX_DTYPE)
    new_of_old[vertices] = np.arange(vertices.size, dtype=VERTEX_DTYPE)
    edges = graph.edge_list()
    mask = keep[edges[:, 0]] & keep[edges[:, 1]]
    remapped = new_of_old[edges[mask]]
    return (
        from_edge_array(remapped, num_vertices=vertices.size),
        vertices,
    )


def largest_connected_component(
    graph: CSRGraph,
) -> tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of the largest component, with id mapping."""
    labels = connected_component_labels(graph)
    if labels.size == 0:
        return graph, np.arange(0, dtype=VERTEX_DTYPE)
    roots, counts = np.unique(labels, return_counts=True)
    biggest = roots[np.argmax(counts)]
    return subgraph(graph, np.flatnonzero(labels == biggest))
