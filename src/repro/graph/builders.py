"""Constructing :class:`~repro.graph.csr.CSRGraph` from various inputs.

All builders normalize their input the same way the pSCAN/ppSCAN C++ code
bases do when ingesting SNAP-style edge lists: self loops are dropped,
duplicate edges are collapsed, both arc directions are materialized, and
every adjacency list is sorted.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .csr import CSRGraph, VERTEX_DTYPE

__all__ = [
    "from_edge_array",
    "from_edges",
    "from_adjacency",
    "from_networkx",
    "empty_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
]


def from_edge_array(edges: np.ndarray, num_vertices: int | None = None) -> CSRGraph:
    """Build a graph from an ``(m, 2)`` integer edge array.

    Self loops are removed and duplicates (including reversed duplicates)
    collapsed.  ``num_vertices`` may extend the vertex set past the largest
    endpoint id to include isolated vertices.
    """
    edges = np.asarray(edges, dtype=VERTEX_DTYPE)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must have shape (m, 2)")
    if edges.size and edges.min() < 0:
        raise ValueError("vertex ids must be non-negative")
    n = int(edges.max()) + 1 if edges.size else 0
    if num_vertices is not None:
        if num_vertices < n:
            raise ValueError("num_vertices smaller than largest endpoint id")
        n = int(num_vertices)

    # Canonicalize u < v, drop self loops, deduplicate.
    u = np.minimum(edges[:, 0], edges[:, 1])
    v = np.maximum(edges[:, 0], edges[:, 1])
    keep = u != v
    u, v = u[keep], v[keep]
    if u.size:
        key = u * n + v
        _, unique_idx = np.unique(key, return_index=True)
        u, v = u[unique_idx], v[unique_idx]

    # Materialize both directions, then counting-sort into CSR.
    src = np.concatenate([u, v])
    dst = np.concatenate([v, u])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    offsets = np.zeros(n + 1, dtype=VERTEX_DTYPE)
    np.add.at(offsets, src + 1, 1)
    np.cumsum(offsets, out=offsets)
    return CSRGraph(offsets=offsets, dst=dst)


def from_edges(
    edges: Iterable[tuple[int, int]], num_vertices: int | None = None
) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v)`` pairs.

    >>> g = from_edges([(0, 1), (1, 2), (0, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 3)
    >>> g.neighbors(0).tolist()
    [1, 2]
    """
    arr = np.array(list(edges), dtype=VERTEX_DTYPE).reshape(-1, 2)
    return from_edge_array(arr, num_vertices=num_vertices)


def from_adjacency(adjacency: Sequence[Sequence[int]]) -> CSRGraph:
    """Build a graph from an adjacency-list sequence (index = vertex id)."""
    pairs = [(u, v) for u, nbrs in enumerate(adjacency) for v in nbrs]
    return from_edges(pairs, num_vertices=len(adjacency))


def from_networkx(nx_graph) -> CSRGraph:
    """Build a graph from an undirected :mod:`networkx` graph.

    Node labels are compacted to ``0..n-1`` in sorted label order; the
    mapping is returned on the graph via the second tuple element.
    """
    nodes = sorted(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[a], index[b]) for a, b in nx_graph.edges()]
    return from_edges(edges, num_vertices=len(nodes))


# -- tiny canonical graphs used pervasively in tests -------------------------


def empty_graph(n: int) -> CSRGraph:
    return from_edge_array(np.empty((0, 2), dtype=VERTEX_DTYPE), num_vertices=n)


def complete_graph(n: int) -> CSRGraph:
    return from_edges(
        ((u, v) for u in range(n) for v in range(u + 1, n)), num_vertices=n
    )


def path_graph(n: int) -> CSRGraph:
    return from_edges(((i, i + 1) for i in range(n - 1)), num_vertices=n)


def cycle_graph(n: int) -> CSRGraph:
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    return from_edges(
        [(i, (i + 1) % n) for i in range(n)], num_vertices=n
    )


def star_graph(n_leaves: int) -> CSRGraph:
    """Hub vertex 0 connected to ``n_leaves`` leaves."""
    return from_edges(
        [(0, i) for i in range(1, n_leaves + 1)], num_vertices=n_leaves + 1
    )
