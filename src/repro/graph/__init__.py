"""Graph substrate: CSR representation, builders, IO, stats, generators."""

from .csr import CSRGraph
from .builders import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_adjacency,
    from_edge_array,
    from_edges,
    from_networkx,
    path_graph,
    star_graph,
)
from .io import (
    GraphFormatError,
    load_graph,
    read_csr_binary,
    read_edge_list,
    read_matrix_market,
    write_csr_binary,
    write_edge_list,
    write_matrix_market,
)
from .stats import (
    GraphStats,
    clustering_coefficient,
    degree_histogram,
    degree_percentiles,
    format_stats_table,
    graph_stats,
)
from .dynamic import DynamicGraph
from .transform import (
    connected_component_labels,
    largest_connected_component,
    relabel_by_degree,
    subgraph,
)

__all__ = [
    "CSRGraph",
    "from_edge_array",
    "from_edges",
    "from_adjacency",
    "from_networkx",
    "empty_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "GraphFormatError",
    "read_edge_list",
    "write_edge_list",
    "read_csr_binary",
    "write_csr_binary",
    "load_graph",
    "read_matrix_market",
    "write_matrix_market",
    "GraphStats",
    "graph_stats",
    "degree_histogram",
    "format_stats_table",
    "clustering_coefficient",
    "degree_percentiles",
    "relabel_by_degree",
    "largest_connected_component",
    "subgraph",
    "connected_component_labels",
    "DynamicGraph",
]
