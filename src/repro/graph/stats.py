"""Graph statistics in the shape of the paper's Tables 1 and 2."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = [
    "GraphStats",
    "graph_stats",
    "degree_histogram",
    "format_stats_table",
    "clustering_coefficient",
    "degree_percentiles",
]


@dataclass(frozen=True)
class GraphStats:
    """One row of Table 1 / Table 2: name, |V|, |E|, average and max degree."""

    name: str
    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int

    def row(self) -> tuple[str, str, str, str, str]:
        return (
            self.name,
            f"{self.num_vertices:,}",
            f"{self.num_edges:,}",
            f"{self.average_degree:.1f}",
            f"{self.max_degree:,}",
        )


def graph_stats(name: str, graph: CSRGraph) -> GraphStats:
    """Compute the Table-1 statistics row for ``graph``.

    |E| counts undirected edges and the average degree is ``2|E| / |V|``,
    matching the paper's convention (e.g. orkut: |E| = 117M, d = 76.3).
    """
    return GraphStats(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree(),
        max_degree=graph.max_degree(),
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    return np.bincount(graph.degrees, minlength=1)


def clustering_coefficient(
    graph: CSRGraph, sample: int | None = None, seed: int = 0
) -> float:
    """Average local clustering coefficient (triangle density per vertex).

    This is the statistic behind the D3 reproduction deviation: scaled-
    down preferential-attachment graphs have a far denser triangle core
    than their billion-edge counterparts.  ``sample`` limits the
    computation to a random vertex subset on big graphs.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    vertices = np.arange(n)
    if sample is not None and sample < n:
        rng = np.random.default_rng(seed)
        vertices = rng.choice(n, size=sample, replace=False)
    mark = np.zeros(n, dtype=bool)
    total = 0.0
    counted = 0
    offsets, dst = graph.offsets, graph.dst
    for u in vertices.tolist():
        nbrs = dst[offsets[u] : offsets[u + 1]]
        d = nbrs.size
        if d < 2:
            counted += 1
            continue
        mark[nbrs] = True
        links = 0
        for v in nbrs.tolist():
            links += int(
                np.count_nonzero(mark[dst[offsets[v] : offsets[v + 1]]])
            )
        mark[nbrs] = False
        total += links / (d * (d - 1))  # each triangle edge seen once per side
        counted += 1
    return total / counted if counted else 0.0


def degree_percentiles(
    graph: CSRGraph, percentiles: tuple[float, ...] = (50, 90, 99, 100)
) -> dict[float, int]:
    """Degree distribution percentiles (100 = max degree)."""
    if graph.num_vertices == 0:
        return {p: 0 for p in percentiles}
    values = np.percentile(graph.degrees, percentiles)
    return {p: int(v) for p, v in zip(percentiles, values)}


def format_stats_table(rows: list[GraphStats], title: str) -> str:
    """Render a list of stats rows as the paper's table layout."""
    header = ("Name", "|V|", "|E|", "avg d", "max d")
    table = [header] + [r.row() for r in rows]
    widths = [max(len(row[c]) for row in table) for c in range(len(header))]
    lines = [title]
    for i, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
