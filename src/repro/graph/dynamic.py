"""Mutable adjacency structure for dynamic-graph workloads.

The static :class:`~repro.graph.csr.CSRGraph` is what every clustering
algorithm consumes; ``DynamicGraph`` supports edge insertions/removals
(the workload of the incremental GS*-Index in
:mod:`repro.core.dynamic_index`) and snapshots to CSR for batch
re-clustering and cross-validation.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from itertools import chain

import numpy as np

from .csr import CSRGraph, VERTEX_DTYPE

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """An undirected simple graph with sorted mutable adjacency lists.

    >>> g = DynamicGraph(3)
    >>> g.insert_edge(0, 2), g.insert_edge(2, 0)
    (True, False)
    >>> g.neighbors(2)
    [0]
    """

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._adj: list[list[int]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "DynamicGraph":
        dyn = cls(graph.num_vertices)
        dyn._adj = [graph.neighbors(u).tolist() for u in range(len(graph))]
        dyn._num_edges = graph.num_edges
        return dyn

    # -- shape -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def neighbors(self, u: int) -> list[int]:
        """Sorted neighbor list (a direct reference; do not mutate)."""
        return self._adj[u]

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self._adj[u]
        i = bisect_left(nbrs, v)
        return i < len(nbrs) and nbrs[i] == v

    # -- mutation ------------------------------------------------------------

    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id."""
        self._adj.append([])
        return len(self._adj) - 1

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert undirected edge ``{u, v}``; False if it already exists."""
        self._check(u, v)
        if self.has_edge(u, v):
            return False
        insort(self._adj[u], v)
        insort(self._adj[v], u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove undirected edge ``{u, v}``; False if absent."""
        self._check(u, v)
        if not self.has_edge(u, v):
            return False
        self._adj[u].remove(v)
        self._adj[v].remove(u)
        self._num_edges -= 1
        return True

    def _check(self, u: int, v: int) -> None:
        n = len(self._adj)
        if not (0 <= u < n and 0 <= v < n):
            raise IndexError(f"vertex out of range: ({u}, {v}) with n={n}")
        if u == v:
            raise ValueError("self loops are not allowed")

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> CSRGraph:
        """Freeze the current state into a normalized CSR graph.

        The adjacency lists are sorted, unique and symmetric by
        construction, so the CSR arrays are emitted directly — byte-
        identical to :func:`~repro.graph.builders.from_edge_array` over
        the edge list (same fingerprint), without its edge-pair sort.
        This also makes the all-isolated-vertex case trivially safe
        (the old pair-list path reshaped an empty float array).
        """
        n = len(self._adj)
        offsets = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        if n:
            np.cumsum(
                np.fromiter(
                    (len(adj) for adj in self._adj),
                    count=n,
                    dtype=VERTEX_DTYPE,
                ),
                out=offsets[1:],
            )
        dst = np.fromiter(
            chain.from_iterable(self._adj),
            count=int(offsets[-1]),
            dtype=VERTEX_DTYPE,
        )
        return CSRGraph(offsets, dst)
