"""Graph IO: SNAP-style text edge lists and a compact binary CSR format.

The binary format mirrors the ``b_degree.bin`` / ``b_adj.bin`` convention of
the original pSCAN/ppSCAN code bases closely enough to make the round trip
obvious: a small header (magic, vertex count, arc count) followed by the
offset and destination arrays.
"""

from __future__ import annotations

import contextlib
import gzip
import os
import sys
from pathlib import Path

import numpy as np

from .csr import CSRGraph, VERTEX_DTYPE
from .builders import from_edge_array

__all__ = [
    "GraphFormatError",
    "read_edge_list",
    "write_edge_list",
    "read_csr_binary",
    "write_csr_binary",
    "csr_to_bytes",
    "read_matrix_market",
    "write_matrix_market",
    "load_graph",
]

_MAGIC = b"PPSCANG1"


class GraphFormatError(ValueError):
    """A malformed graph file.

    Subclasses ``ValueError`` so historical ``except ValueError`` call
    sites keep working; the message is prefixed with ``path:line:``
    context whenever it is known, so the offending input is one click
    away.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | os.PathLike | None = None,
        line: int | None = None,
    ) -> None:
        self.path = str(path) if path is not None else None
        self.line = line
        prefix = ""
        if self.path is not None:
            prefix = self.path
            if line is not None:
                prefix += f":{line}"
            prefix += ": "
        super().__init__(prefix + message)


def read_edge_list(
    path: str | os.PathLike,
    comment: str = "#",
    compact_ids: bool = False,
    strict: bool = False,
) -> CSRGraph:
    """Read a whitespace-separated edge list (SNAP format).

    Lines starting with ``comment`` are skipped.  Vertex ids must be
    non-negative integers; the graph is normalized (deduplicated,
    symmetric, sorted) on load.  Real SNAP dumps often use sparse,
    non-contiguous ids — pass ``compact_ids=True`` to remap them densely
    to ``0..n-1`` (ascending original-id order) instead of materializing
    ``max(id) + 1`` vertices.

    Malformed input raises :class:`GraphFormatError` with ``path:line:``
    context.  ``strict=True`` additionally rejects what normalization
    would otherwise silently repair: self-loops and duplicate edges.

    ``path="-"`` reads the edge list from standard input (pipes compose:
    ``repro-scan generate ... /dev/stdout | repro-scan stats -``).
    """
    rows: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] | None = set() if strict else None
    if str(path) == "-":
        source = contextlib.nullcontext(sys.stdin)
        path = "<stdin>"
    else:
        opener = gzip.open if Path(path).suffix == ".gz" else open
        source = opener(path, "rt", encoding="utf-8")
    with source as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"malformed edge line: {line!r} (expected at least "
                    "two whitespace-separated vertex ids)",
                    path=path,
                    line=lineno,
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise GraphFormatError(
                    f"non-integer vertex id in line: {line!r}",
                    path=path,
                    line=lineno,
                ) from None
            if u < 0 or v < 0:
                raise GraphFormatError(
                    f"negative vertex id in line: {line!r}",
                    path=path,
                    line=lineno,
                )
            if seen is not None:
                if u == v:
                    raise GraphFormatError(
                        f"self-loop {u}-{v}", path=path, line=lineno
                    )
                key = (u, v) if u < v else (v, u)
                if key in seen:
                    raise GraphFormatError(
                        f"duplicate edge {u}-{v}", path=path, line=lineno
                    )
                seen.add(key)
            rows.append((u, v))
    edges = np.array(rows, dtype=VERTEX_DTYPE).reshape(-1, 2)
    if compact_ids and edges.size:
        unique_ids, edges_flat = np.unique(edges, return_inverse=True)
        edges = edges_flat.reshape(-1, 2).astype(VERTEX_DTYPE)
    return from_edge_array(edges)


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the undirected edge list (one ``u v`` per line, ``u < v``)."""
    edges = graph.edge_list()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# ppSCAN reproduction edge list |V|={graph.num_vertices}\n")
        for u, v in edges:
            fh.write(f"{u} {v}\n")


def csr_to_bytes(graph: CSRGraph) -> bytes:
    """The compact binary CSR serialization as one ``bytes`` payload.

    Byte-exact with what :func:`write_csr_binary` puts on disk, so the
    round trip through :func:`read_csr_binary` preserves the graph's
    content fingerprint — the property the service WAL's spilled
    payloads rely on.
    """
    header = np.array([graph.num_vertices, graph.num_arcs], dtype=np.int64)
    return b"".join(
        (
            _MAGIC,
            header.tobytes(),
            np.asarray(graph.offsets, dtype=np.int64).tobytes(),
            np.asarray(graph.dst, dtype=np.int64).tobytes(),
        )
    )


def write_csr_binary(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the graph in the compact binary CSR format."""
    with open(path, "wb") as fh:
        fh.write(csr_to_bytes(graph))


def read_csr_binary(path: str | os.PathLike) -> CSRGraph:
    """Read a graph written by :func:`write_csr_binary`.

    Truncated files, corrupt headers, non-monotonic offset arrays and
    out-of-range destinations all raise :class:`GraphFormatError`
    (naming the file) instead of silently constructing a wrong graph.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if len(magic) < len(_MAGIC):
            raise GraphFormatError("truncated header", path=path)
        if magic != _MAGIC:
            raise GraphFormatError(f"bad magic {magic!r}", path=path)
        header_bytes = fh.read(16)
        if len(header_bytes) < 16:
            raise GraphFormatError("truncated header", path=path)
        header = np.frombuffer(header_bytes, dtype=np.int64)
        n, arcs = int(header[0]), int(header[1])
        if n < 0 or arcs < 0:
            raise GraphFormatError(
                f"corrupt header: num_vertices={n}, num_arcs={arcs}",
                path=path,
            )
        offsets_bytes = fh.read(8 * (n + 1))
        if len(offsets_bytes) < 8 * (n + 1):
            raise GraphFormatError(
                f"truncated offsets array (expected {n + 1} entries, "
                f"got {len(offsets_bytes) // 8})",
                path=path,
            )
        offsets = np.frombuffer(offsets_bytes, dtype=np.int64).copy()
        dst_bytes = fh.read(8 * arcs)
        if len(dst_bytes) < 8 * arcs:
            raise GraphFormatError(
                f"truncated destination array (expected {arcs} entries, "
                f"got {len(dst_bytes) // 8})",
                path=path,
            )
        dst = np.frombuffer(dst_bytes, dtype=np.int64).copy()
    if offsets.size and int(offsets[0]) != 0:
        raise GraphFormatError(
            f"offsets must start at 0, got {int(offsets[0])}", path=path
        )
    if offsets.size and int(offsets[-1]) != arcs:
        raise GraphFormatError(
            f"final offset {int(offsets[-1])} != num_arcs {arcs}",
            path=path,
        )
    if offsets.size and bool(np.any(np.diff(offsets) < 0)):
        bad = int(np.flatnonzero(np.diff(offsets) < 0)[0])
        raise GraphFormatError(
            f"non-monotonic offsets at vertex {bad} "
            f"({int(offsets[bad])} -> {int(offsets[bad + 1])})",
            path=path,
        )
    if dst.size and (int(dst.min()) < 0 or int(dst.max()) >= n):
        raise GraphFormatError(
            "destination vertex id out of range "
            f"[0, {n}): min={int(dst.min())}, max={int(dst.max())}",
            path=path,
        )
    return CSRGraph(offsets=offsets, dst=dst)


def read_matrix_market(path: str | os.PathLike) -> CSRGraph:
    """Read a MatrixMarket coordinate file as an undirected graph.

    Supports ``pattern``/``real``/``integer`` symmetric or general
    coordinate matrices (1-based indices per the format); entry values are
    ignored, self loops dropped, and the result normalized like every
    other loader.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: missing MatrixMarket header")
        parts = header.split()
        if len(parts) < 4 or parts[2] != "coordinate":
            raise ValueError(f"{path}: only coordinate format is supported")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, _nnz = (int(x) for x in line.split()[:3])
        n = max(rows, cols)
        pairs: list[tuple[int, int]] = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            fields = line.split()
            pairs.append((int(fields[0]) - 1, int(fields[1]) - 1))
    edges = np.array(pairs, dtype=VERTEX_DTYPE).reshape(-1, 2)
    return from_edge_array(edges, num_vertices=n)


def write_matrix_market(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the graph as a symmetric pattern MatrixMarket file."""
    edges = graph.edge_list()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        fh.write(f"% ppSCAN reproduction export\n")
        n = graph.num_vertices
        fh.write(f"{n} {n} {len(edges)}\n")
        for u, v in edges:
            # Symmetric format stores the lower triangle: row >= col.
            fh.write(f"{v + 1} {u + 1}\n")


def load_graph(path: str | os.PathLike, *, strict: bool = False) -> CSRGraph:
    """Load a graph, dispatching on extension: ``.bin`` binary CSR,
    ``.mtx`` MatrixMarket, else a whitespace edge list (optionally
    gzip-compressed, the format SNAP distributes).  ``path="-"`` reads
    an edge list from standard input.

    ``strict=True`` rejects input that normalization would silently
    repair (self-loops, duplicate edges in text formats); binary CSR is
    always fully validated on read.
    """
    if str(path) == "-":
        return read_edge_list(path, strict=strict)
    suffix = Path(path).suffix
    if suffix == ".bin":
        return read_csr_binary(path)
    if suffix == ".mtx":
        return read_matrix_market(path)
    return read_edge_list(path, strict=strict)
