"""Watts–Strogatz small-world graphs.

High clustering coefficient with short paths — the regime where
structural similarity is strong along the ring and SCAN finds elongated
clusters.  Used by the quality studies as a counterpoint to the
power-law generators (whose triangles concentrate in the core).
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph, VERTEX_DTYPE
from ..builders import from_edge_array

__all__ = ["watts_strogatz"]


def watts_strogatz(
    n: int, k: int = 4, rewire_p: float = 0.05, seed: int = 0
) -> CSRGraph:
    """Ring lattice of degree ``k`` with probability-``rewire_p`` rewiring.

    ``k`` must be even (``k/2`` neighbors on each side of the ring).
    """
    if k % 2 != 0 or k < 2:
        raise ValueError("k must be a positive even integer")
    if k >= n:
        raise ValueError("k must be smaller than n")
    if not (0.0 <= rewire_p <= 1.0):
        raise ValueError("rewire_p must be in [0, 1]")
    rng = np.random.default_rng(seed)

    edges: list[tuple[int, int]] = []
    existing: set[tuple[int, int]] = set()
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            a, b = (u, v) if u < v else (v, u)
            if (a, b) not in existing:
                existing.add((a, b))
                edges.append((a, b))

    # Rewire: each lattice edge's far endpoint moves to a random vertex.
    rewired: list[tuple[int, int]] = []
    for u, v in edges:
        if rng.random() < rewire_p:
            for _ in range(8):  # a few attempts to find a fresh endpoint
                w = int(rng.integers(n))
                a, b = (u, w) if u < w else (w, u)
                if w != u and (a, b) not in existing:
                    existing.discard((u, v) if u < v else (v, u))
                    existing.add((a, b))
                    rewired.append((a, b))
                    break
            else:
                rewired.append((u, v))
        else:
            rewired.append((u, v))

    arr = np.array(rewired, dtype=VERTEX_DTYPE).reshape(-1, 2)
    return from_edge_array(arr, num_vertices=n)
