"""R-MAT recursive-matrix graph generator (Chakrabarti et al., SDM'04).

Produces graphs with the extreme hub skew characteristic of web crawls —
our webbase stand-in uses it with a strongly skewed quadrant distribution.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph, VERTEX_DTYPE
from ..builders import from_edge_array

__all__ = ["rmat"]


def rmat(
    scale: int,
    edge_factor: float,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    ``edge_factor`` is the target ratio |E| / |V| before deduplication;
    ``(a, b, c)`` are the standard quadrant probabilities with
    ``d = 1 - a - b - c``.  Edge endpoints are built one bit per level with
    fully vectorized draws.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must not exceed 1")
    n = 1 << scale
    m = int(n * edge_factor)
    rng = np.random.default_rng(seed)

    u = np.zeros(m, dtype=VERTEX_DTYPE)
    v = np.zeros(m, dtype=VERTEX_DTYPE)
    for _ in range(scale):
        r = rng.random(m)
        # Quadrant choice: [a | b / c | d] — row bit set for quadrants c, d,
        # column bit set for quadrants b, d.
        row_bit = r >= a + b
        col_bit = (r >= a) & (r < a + b) | (r >= a + b + c)
        u = (u << 1) | row_bit
        v = (v << 1) | col_bit
    edges = np.column_stack([u, v])
    return from_edge_array(edges, num_vertices=n)
