"""Synthetic graph generators used by the evaluation harness.

Every generator is deterministic given ``seed`` and returns a normalized
:class:`~repro.graph.csr.CSRGraph` (sorted adjacency, no self loops, no
duplicate edges).
"""

from .er import erdos_renyi
from .powerlaw import chung_lu, powerlaw_weights
from .rmat import rmat
from .roll import roll_graph
from .community import planted_partition
from .lfr import lfr_graph
from .smallworld import watts_strogatz
from .realworld import (
    REAL_WORLD_STANDINS,
    real_world_standin,
)

__all__ = [
    "erdos_renyi",
    "chung_lu",
    "powerlaw_weights",
    "rmat",
    "roll_graph",
    "planted_partition",
    "lfr_graph",
    "watts_strogatz",
    "real_world_standin",
    "REAL_WORLD_STANDINS",
]
