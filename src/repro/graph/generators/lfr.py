"""LFR-lite benchmark graphs: power-law degrees *and* community sizes.

A lightweight take on the Lancichinetti–Fortunato–Radicchi benchmark: the
standard stress test for community detection beyond uniform planted
partitions.  Community sizes follow a truncated power law, per-vertex
degrees follow a power law, and a mixing parameter ``mu_mix`` routes that
fraction of each vertex's edge endpoints outside its community.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph, VERTEX_DTYPE
from ..builders import from_edge_array

__all__ = ["lfr_graph"]


def lfr_graph(
    n: int,
    avg_degree: float = 12.0,
    mu_mix: float = 0.1,
    degree_gamma: float = 2.5,
    community_gamma: float = 2.0,
    min_community: int = 16,
    seed: int = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """Sample an LFR-lite graph; returns ``(graph, community_labels)``.

    ``mu_mix`` ∈ [0, 1] is the expected fraction of inter-community edge
    endpoints (0 = perfectly separated communities).
    """
    if not (0.0 <= mu_mix <= 1.0):
        raise ValueError("mu_mix must be in [0, 1]")
    if min_community < 2 or min_community > n:
        raise ValueError("min_community must be in [2, n]")
    rng = np.random.default_rng(seed)

    # Community sizes: truncated power law, sampled until n is covered.
    sizes: list[int] = []
    max_community = max(min_community + 1, n // 4)
    while sum(sizes) < n:
        u = rng.random()
        # Inverse-CDF sampling of P(s) ~ s^-gamma on [min, max].
        a = min_community ** (1 - community_gamma)
        b = max_community ** (1 - community_gamma)
        size = int((a + u * (b - a)) ** (1 / (1 - community_gamma)))
        sizes.append(min(size, n - sum(sizes)) if sum(sizes) + size > n else size)
    if sizes[-1] < min_community and len(sizes) > 1:
        sizes[-2] += sizes[-1]
        sizes.pop()

    labels = np.repeat(
        np.arange(len(sizes), dtype=VERTEX_DTYPE), sizes
    )[:n]
    perm = rng.permutation(n)
    labels = labels[perm]

    # Degrees: power law with the target mean.
    raw = (1.0 - rng.random(n)) ** (-1.0 / (degree_gamma - 1.0))
    degrees = raw * (avg_degree / raw.mean())

    # Edge endpoints: each vertex contributes degree "stubs", a mu_mix
    # fraction wired globally, the rest within its community (Chung-Lu
    # style sampling on both sides).
    members: dict[int, np.ndarray] = {
        int(c): np.flatnonzero(labels == c) for c in np.unique(labels)
    }
    edges: list[np.ndarray] = []
    for c, verts in members.items():
        w = degrees[verts] * (1.0 - mu_mix)
        target = int(w.sum() / 2)
        if target <= 0 or verts.size < 2:
            continue
        p = w / w.sum()
        u = rng.choice(verts, size=2 * target, p=p).astype(VERTEX_DTYPE)
        v = rng.choice(verts, size=2 * target, p=p).astype(VERTEX_DTYPE)
        keep = u != v
        edges.append(np.column_stack([u[keep], v[keep]])[:target])
    if mu_mix > 0:
        w = degrees * mu_mix
        target = int(w.sum() / 2)
        if target > 0:
            p = w / w.sum()
            u = rng.choice(n, size=2 * target, p=p).astype(VERTEX_DTYPE)
            v = rng.choice(n, size=2 * target, p=p).astype(VERTEX_DTYPE)
            keep = (u != v) & (labels[u] != labels[v])
            edges.append(np.column_stack([u[keep], v[keep]])[:target])

    all_edges = (
        np.concatenate(edges, axis=0)
        if edges
        else np.empty((0, 2), dtype=VERTEX_DTYPE)
    )
    return from_edge_array(all_edges, num_vertices=n), labels
