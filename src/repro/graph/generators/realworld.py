"""Scaled stand-ins for the paper's real-world evaluation graphs.

The paper evaluates on orkut, webbase, twitter and friendster (Table 1) and
uses livejournal in the Figure-1 breakdown.  Those graphs are 0.1–1.8
billion edges; the discriminating properties the evaluation depends on are
their *degree characters*, which we reproduce at laptop scale:

==========  =========================  ==================================
paper graph  character                  stand-in construction
==========  =========================  ==================================
orkut        dense social, d̄ = 76.3     Chung–Lu, γ = 2.5, high d̄
webbase      sparse web, d̄ = 8.9,       R-MAT with strongly skewed
             extreme hubs (max d 803k)   quadrants (0.70/0.15/0.10)
twitter      heavy-tailed social,        Chung–Lu, γ = 2.0 (heaviest
             d̄ = 32.9, max d 1.4M        tail of the four)
friendster   huge, homogeneous,          Chung–Lu, γ = 2.9 with a weight
             d̄ = 28.9, max d only 5214   cap (bounded hubs)
livejournal  mid-size social             Chung–Lu, γ = 2.4
==========  =========================  ==================================

``scale=1.0`` targets graphs that a pure-Python run finishes in seconds;
the relative |V| and d̄ proportions between the four graphs follow Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..csr import CSRGraph
from .powerlaw import chung_lu, powerlaw_weights
from .rmat import rmat

__all__ = ["REAL_WORLD_STANDINS", "real_world_standin"]


@dataclass(frozen=True)
class _StandinSpec:
    name: str
    build: Callable[[float, int], CSRGraph]
    description: str


def _chung_lu_standin(
    n_base: int, avg_degree: float, gamma: float, max_weight: float | None
) -> Callable[[float, int], CSRGraph]:
    def build(scale: float, seed: int) -> CSRGraph:
        n = max(64, int(n_base * scale))
        target_edges = int(n * avg_degree / 2)
        cap = max_weight * avg_degree if max_weight is not None else None
        weights = powerlaw_weights(n, gamma=gamma, max_weight=cap)
        return chung_lu(weights, target_edges=target_edges, seed=seed)

    return build


def _webbase_standin(scale: float, seed: int) -> CSRGraph:
    # Match webbase's d̄ ≈ 8.9 with extreme hub skew: highly skewed R-MAT.
    import math

    target_n = max(256, int(12000 * scale))
    log_scale = max(8, int(math.ceil(math.log2(target_n))))
    return rmat(
        scale=log_scale, edge_factor=4.5, a=0.70, b=0.15, c=0.10, seed=seed
    )


REAL_WORLD_STANDINS: dict[str, _StandinSpec] = {
    "orkut": _StandinSpec(
        "orkut",
        _chung_lu_standin(n_base=2500, avg_degree=76.0, gamma=2.5, max_weight=None),
        "dense social network (highest average degree)",
    ),
    "webbase": _StandinSpec(
        "webbase",
        _webbase_standin,
        "sparse web crawl with extreme hub skew",
    ),
    "twitter": _StandinSpec(
        "twitter",
        _chung_lu_standin(n_base=6000, avg_degree=33.0, gamma=2.0, max_weight=None),
        "heavy-tailed follower network",
    ),
    "friendster": _StandinSpec(
        "friendster",
        _chung_lu_standin(n_base=14000, avg_degree=29.0, gamma=2.9, max_weight=6.0),
        "largest graph, homogeneous degrees (bounded hubs)",
    ),
    "livejournal": _StandinSpec(
        "livejournal",
        _chung_lu_standin(n_base=5000, avg_degree=17.0, gamma=2.4, max_weight=None),
        "mid-size social network (Figure 1 breakdown)",
    ),
}


def real_world_standin(name: str, scale: float = 1.0, seed: int = 42) -> CSRGraph:
    """Build the stand-in for one of the paper's graphs.

    ``name`` is one of ``orkut``, ``webbase``, ``twitter``, ``friendster``,
    ``livejournal``.  ``scale`` multiplies the vertex count (1.0 ≈ seconds
    of pure-Python runtime per clustering).
    """
    try:
        spec = REAL_WORLD_STANDINS[name]
    except KeyError:
        known = ", ".join(sorted(REAL_WORLD_STANDINS))
        raise KeyError(f"unknown stand-in {name!r}; known: {known}") from None
    return spec.build(scale, seed)
