"""Planted-partition graphs with ground-truth communities.

Used by the community-detection example and the clustering-quality tests:
SCAN-family algorithms should recover planted blocks as clusters (cores in
the dense blocks, sparse inter-block vertices as hubs/outliers).
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph, VERTEX_DTYPE
from ..builders import from_edge_array

__all__ = ["planted_partition"]


def planted_partition(
    num_blocks: int,
    block_size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """Sample a planted-partition graph.

    Vertices ``[b * block_size, (b + 1) * block_size)`` form block ``b``;
    intra-block pairs connect with probability ``p_in``, inter-block pairs
    with ``p_out``.  Returns ``(graph, labels)`` where ``labels[v]`` is the
    planted block of ``v``.
    """
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise ValueError("need 0 <= p_out <= p_in <= 1")
    n = num_blocks * block_size
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(num_blocks, dtype=VERTEX_DTYPE), block_size)

    edges: list[np.ndarray] = []

    # Intra-block edges: dense Bernoulli sampling per block (blocks are
    # small by construction).
    iu, iv = np.triu_indices(block_size, k=1)
    for b in range(num_blocks):
        mask = rng.random(iu.size) < p_in
        base = b * block_size
        if mask.any():
            edges.append(
                np.column_stack([iu[mask] + base, iv[mask] + base]).astype(
                    VERTEX_DTYPE
                )
            )

    # Inter-block edges: sample the expected count uniformly over
    # cross-block pairs (sparse regime).
    cross_pairs = n * (n - 1) // 2 - num_blocks * iu.size
    expect = rng.binomial(cross_pairs, p_out) if p_out > 0 else 0
    drawn = 0
    while drawn < expect:
        batch = max(1024, (expect - drawn) * 2)
        u = rng.integers(0, n, size=batch, dtype=VERTEX_DTYPE)
        v = rng.integers(0, n, size=batch, dtype=VERTEX_DTYPE)
        keep = (labels[u] != labels[v]) & (u != v)
        u, v = u[keep], v[keep]
        take = min(u.size, expect - drawn)
        if take:
            edges.append(np.column_stack([u[:take], v[:take]]))
            drawn += take

    if edges:
        all_edges = np.concatenate(edges, axis=0)
    else:
        all_edges = np.empty((0, 2), dtype=VERTEX_DTYPE)
    graph = from_edge_array(all_edges, num_vertices=n)
    return graph, labels
